"""The overhead reproduction report — paper claims, verified per backend.

Section 5.4 makes two concrete overhead claims for the baseline cache
(64 KB / 4-way / 32 B, 48-bit addresses): the Set-Buffer is one set
(< 0.2 % of the cache's data bits) and the Tag-Buffer needs fewer than
150 bits.  Section 5.5 claims the buffers *pay for themselves* by
replacing row activations with cheap latch activity.  This report
reproduces all of it from **every** estimator backend independently —
a claim that only holds under one model is not reproduced — and prices
each technique (RMW vs WG vs WG+RB) as energy per architectural
access.

``check_overhead_claims`` is the gate the CLI (``repro-8t power``) and
the CI power-smoke job apply: any backend violating a claim fails the
run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.analysis.estimators import resolve_estimator
from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.errors import ValidationError
from repro.power.estimator import EstimationQuery, EstimatorRegistry
from repro.sim.comparison import compare_techniques
from repro.sram.events import SRAMEventLog
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

__all__ = [
    "overhead_report",
    "check_overhead_claims",
    "SET_BUFFER_OVERHEAD_LIMIT_PCT",
    "TAG_BUFFER_BITS_LIMIT",
]

#: The paper's Section 5.4 bounds.
SET_BUFFER_OVERHEAD_LIMIT_PCT = 0.2
TAG_BUFFER_BITS_LIMIT = 150.0

_TECHNIQUES = ("rmw", "wg", "wg_rb")

#: Small representative workload mix (write-heavy, irregular, and
#: read-heavy) so the report stays fast enough for a CI smoke job.
_DEFAULT_BENCHMARKS = ("bwaves", "mcf", "gamess", "soplex")


def overhead_report(
    accesses: int = 4_000,
    seed: int = 2012,
    geometry: CacheGeometry = BASELINE_GEOMETRY,
    node_nm: int = 45,
    cell_kind: str = "8T",
    benchmarks: Optional[Sequence[str]] = None,
    estimator: Optional[Union[str, EstimatorRegistry]] = None,
) -> FigureResult:
    """Area claims + energy per access, one row per estimator backend."""
    registry = resolve_estimator(estimator)
    names = list(benchmarks) if benchmarks else list(_DEFAULT_BENCHMARKS)

    # One simulation sweep, shared by every backend: merge per-technique
    # event logs over the workload mix.
    merged = {technique: SRAMEventLog() for technique in _TECHNIQUES}
    for name in names:
        trace = materialize(
            generate_trace(get_profile(name), accesses, seed=seed)
        )
        comparison = compare_techniques(
            trace, geometry, techniques=_TECHNIQUES
        )
        for technique in _TECHNIQUES:
            merged[technique] += comparison.result(technique).events
    total_accesses = accesses * len(names)

    area_query = EstimationQuery.area(
        geometry, cell_kind=cell_kind, node_nm=node_nm
    )
    rows = []
    worst_set_buffer_pct = 0.0
    worst_tag_bits = 0.0
    worst_wgrb_saving_pct: Optional[float] = None
    backend_ids = (
        (registry.forced_backend,)
        if registry.forced_backend is not None
        else registry.backend_ids
    )
    for backend_id in backend_ids:
        try:
            area = registry.estimate(area_query, backend_id=backend_id)
        except ValidationError:
            # This backend does not cover the requested (cell, node);
            # the report covers every backend that *can* answer.
            continue
        per_access = {}
        for technique in _TECHNIQUES:
            estimation = registry.estimate(
                EstimationQuery.dynamic_energy(
                    merged[technique],
                    geometry,
                    cell_kind=cell_kind,
                    node_nm=node_nm,
                ),
                backend_id=backend_id,
            )
            per_access[technique] = estimation["total_fj"] / total_accesses
        set_buffer_pct = 100.0 * area["set_buffer_overhead"]
        tag_bits = area["tag_buffer_bits"]
        wgrb_saving_pct = 100.0 * (
            1.0 - per_access["wg_rb"] / per_access["rmw"]
        )
        worst_set_buffer_pct = max(worst_set_buffer_pct, set_buffer_pct)
        worst_tag_bits = max(worst_tag_bits, tag_bits)
        worst_wgrb_saving_pct = (
            wgrb_saving_pct
            if worst_wgrb_saving_pct is None
            else min(worst_wgrb_saving_pct, wgrb_saving_pct)
        )
        rows.append(
            (
                backend_id,
                set_buffer_pct,
                tag_bits,
                per_access["rmw"],
                per_access["wg"],
                per_access["wg_rb"],
                wgrb_saving_pct,
            )
        )
    return FigureResult(
        figure_id="overheads",
        title=(
            f"Overhead reproduction ({geometry.describe()}, {node_nm} nm "
            f"{cell_kind}): Section 5.4 claims and energy per access, "
            "per estimator backend"
        ),
        headers=(
            "backend",
            "Set-Buffer %",
            "Tag-Buffer bits",
            "RMW fJ/access",
            "WG fJ/access",
            "WG+RB fJ/access",
            "WG+RB saving %",
        ),
        rows=rows,
        summary={
            # Worst case across backends: every backend must sit under
            # the paper's bound for the claim to count as reproduced.
            "set_buffer_overhead_pct": worst_set_buffer_pct,
            "tag_buffer_bits": worst_tag_bits,
            "wgrb_vs_rmw_saving_pct": (
                worst_wgrb_saving_pct
                if worst_wgrb_saving_pct is not None
                else 0.0
            ),
        },
        paper_values={
            "set_buffer_overhead_pct": SET_BUFFER_OVERHEAD_LIMIT_PCT,
            "tag_buffer_bits": TAG_BUFFER_BITS_LIMIT,
        },
    )


def check_overhead_claims(result: FigureResult) -> List[str]:
    """Violations of the paper's overhead claims (empty = all verified).

    Applied to an ``overhead_report`` result by ``repro-8t power`` and
    the CI power-smoke job; each string names one failed claim.
    """
    violations: List[str] = []
    set_buffer_pct = result.summary.get("set_buffer_overhead_pct")
    if set_buffer_pct is None or not result.rows:
        violations.append("report contains no backend rows")
        return violations
    if set_buffer_pct >= SET_BUFFER_OVERHEAD_LIMIT_PCT:
        violations.append(
            f"Set-Buffer overhead {set_buffer_pct:.3f}% breaches the "
            f"paper's <{SET_BUFFER_OVERHEAD_LIMIT_PCT}% claim"
        )
    tag_bits = result.summary.get("tag_buffer_bits", float("inf"))
    if tag_bits >= TAG_BUFFER_BITS_LIMIT:
        violations.append(
            f"Tag-Buffer needs {tag_bits:.0f} bits, breaching the "
            f"paper's <{TAG_BUFFER_BITS_LIMIT:.0f}-bit claim"
        )
    if result.summary.get("wgrb_vs_rmw_saving_pct", 0.0) <= 0.0:
        violations.append(
            "WG+RB does not save dynamic energy vs RMW under at least "
            "one backend"
        )
    return violations
