"""Traffic anatomy: where WG/WG+RB's accesses come from and go.

A drill-down table the paper's aggregate bars cannot show: for each
benchmark, the fate of every write (grouped / silent / buffer fill) and
every Set-Buffer write-back by cause (premature / eviction / fill-flush
/ final), plus the read-bypass rate.  Useful for diagnosing *why* a
workload groups well or badly before touching the knobs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.sim.simulator import run_simulation
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import benchmark_names, get_profile

__all__ = ["traffic_anatomy"]


def traffic_anatomy(
    accesses: int = 15_000,
    seed: int = 2012,
    geometry: CacheGeometry = BASELINE_GEOMETRY,
    benchmarks: Optional[Sequence[str]] = None,
    technique: str = "wg_rb",
) -> FigureResult:
    """Per-benchmark breakdown of the controller's activity."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    rows = []
    grouped_sum = 0.0
    silent_sum = 0.0
    bypass_sum = 0.0
    for name in names:
        trace = materialize(generate_trace(get_profile(name), accesses, seed=seed))
        counts = run_simulation(trace, technique, geometry).counts
        grouped_sum += counts.grouped_write_fraction
        silent_sum += counts.silent_write_fraction
        bypass_sum += counts.bypassed_read_fraction
        rows.append(
            (
                name,
                100 * counts.grouped_write_fraction,
                100 * counts.silent_write_fraction,
                100 * counts.bypassed_read_fraction,
                counts.premature_writebacks,
                counts.eviction_writebacks,
                counts.fill_flush_writebacks,
                counts.set_buffer_fills,
            )
        )
    count = len(names)
    return FigureResult(
        figure_id="traffic",
        title=(
            f"Traffic anatomy under {technique} at {geometry.describe()}: "
            "write fate (%) and write-back causes (counts)"
        ),
        headers=(
            "benchmark",
            "grouped %",
            "silent %",
            "bypassed %",
            "premature",
            "eviction",
            "fill-flush",
            "fills",
        ),
        rows=rows,
        summary={
            "mean_grouped_pct": 100 * grouped_sum / count,
            "mean_silent_pct": 100 * silent_sum / count,
            "mean_bypassed_pct": 100 * bypass_sum / count,
        },
    )
