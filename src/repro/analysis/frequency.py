"""Figure 3 — read and write access frequency per benchmark.

The paper: "on average 40 % of executed instructions are memory
requests (26 % reads and 14 % writes).  Write frequency increases to
more than 22 % for write-intensive applications (e.g., bwaves)."
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.result import FigureResult
from repro.trace.stats import collect_statistics
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import benchmark_names, get_profile

__all__ = ["figure3_access_frequency"]


def figure3_access_frequency(
    accesses: int = 30_000,
    seed: int = 2012,
    benchmarks: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Reproduce Figure 3 from synthesised traces."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    rows = []
    read_sum = 0.0
    write_sum = 0.0
    for name in names:
        trace = generate_trace(get_profile(name), accesses, seed=seed)
        stats = collect_statistics(trace)
        read_pct = 100.0 * stats.read_frequency
        write_pct = 100.0 * stats.write_frequency
        read_sum += read_pct
        write_sum += write_pct
        rows.append((name, read_pct, write_pct))
    mean_read = read_sum / len(names)
    mean_write = write_sum / len(names)
    rows.append(("AVG", mean_read, mean_write))
    return FigureResult(
        figure_id="fig3",
        title="Figure 3: read/write access frequency (% of instructions)",
        headers=("benchmark", "read %", "write %"),
        rows=rows,
        summary={
            "mean_read_pct": mean_read,
            "mean_write_pct": mean_write,
        },
        paper_values={"mean_read_pct": 26.0, "mean_write_pct": 14.0},
    )
