"""How analysis producers obtain an estimator registry.

Every estimator-aware producer accepts ``estimator=None`` and resolves
it here: an :class:`EstimatorRegistry` passes through untouched (the
report generator builds one and shares it across figures so they share
one record cache), a string is a CLI-style backend spec, and ``None``
falls back to the ambient :class:`repro.sim.resilience.ExecutionPolicy`
— the same mechanism campaign code uses for retry/caching defaults, so
``--estimator``/``--estimator-cache`` set once on the command line
reach every figure.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.telemetry import Telemetry
from repro.power.estimator import EstimatorRegistry, default_registry
from repro.sim.resilience import active_policy

__all__ = ["resolve_estimator"]


def resolve_estimator(
    estimator: Optional[Union[str, EstimatorRegistry]] = None,
    telemetry: Optional[Telemetry] = None,
) -> EstimatorRegistry:
    """An :class:`EstimatorRegistry` for one analysis run."""
    if isinstance(estimator, EstimatorRegistry):
        return estimator
    policy = active_policy()
    spec = estimator if estimator is not None else policy.estimator
    return default_registry(
        spec,
        cache_path=policy.estimator_cache,
        telemetry=telemetry,
    )
