"""Figure 5 — silent write frequency per benchmark.

The paper: "on average more than 42 % of writes are silent", with
bwaves at 77 %.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.result import FigureResult
from repro.trace.stats import collect_statistics
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import benchmark_names, get_profile

__all__ = ["figure5_silent_writes"]


def figure5_silent_writes(
    accesses: int = 30_000,
    seed: int = 2012,
    benchmarks: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Reproduce Figure 5 from synthesised traces."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    rows = []
    total = 0.0
    per_benchmark = {}
    for name in names:
        trace = generate_trace(get_profile(name), accesses, seed=seed)
        stats = collect_statistics(trace)
        silent_pct = 100.0 * stats.silent_write_fraction
        per_benchmark[name] = silent_pct
        total += silent_pct
        rows.append((name, silent_pct))
    mean_silent = total / len(names)
    rows.append(("AVG", mean_silent))
    summary = {"mean_silent_pct": mean_silent}
    paper = {"mean_silent_pct": 42.0}
    if "bwaves" in per_benchmark:
        summary["bwaves_silent_pct"] = per_benchmark["bwaves"]
        paper["bwaves_silent_pct"] = 77.0
    return FigureResult(
        figure_id="fig5",
        title="Figure 5: silent write frequency (% of writes)",
        headers=("benchmark", "silent %"),
        rows=rows,
        summary=summary,
        paper_values=paper,
    )
