"""Figure 4 — breakdown of consecutive same-set access scenarios.

The paper: "a considerable share of cache accesses (on average 27 %)
are made to the same cache set", split into RR / RW / WW / WR, with
"RR and WW account for the largest share ... in almost all benchmarks"
and WW peaking at 24 % for bwaves.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.result import FigureResult
from repro.cache.address import AddressMapper
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.trace.stats import collect_statistics
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import benchmark_names, get_profile

__all__ = ["figure4_scenarios"]

_SCENARIOS = ("RR", "RW", "WW", "WR")


def figure4_scenarios(
    accesses: int = 30_000,
    seed: int = 2012,
    geometry: CacheGeometry = BASELINE_GEOMETRY,
    benchmarks: Optional[Sequence[str]] = None,
) -> FigureResult:
    """Reproduce Figure 4 from synthesised traces."""
    names = list(benchmarks) if benchmarks else benchmark_names()
    mapper = AddressMapper(geometry)
    rows = []
    scenario_sums = {scenario: 0.0 for scenario in _SCENARIOS}
    same_set_sum = 0.0
    for name in names:
        trace = generate_trace(get_profile(name), accesses, seed=seed)
        stats = collect_statistics(trace, mapper.set_index)
        shares = {
            scenario: 100.0 * stats.scenarios.share(scenario)
            for scenario in _SCENARIOS
        }
        for scenario in _SCENARIOS:
            scenario_sums[scenario] += shares[scenario]
        same_set = 100.0 * stats.scenarios.same_set_share
        same_set_sum += same_set
        rows.append(
            (name,) + tuple(shares[s] for s in _SCENARIOS) + (same_set,)
        )
    count = len(names)
    mean_row = tuple(scenario_sums[s] / count for s in _SCENARIOS)
    mean_same_set = same_set_sum / count
    rows.append(("AVG",) + mean_row + (mean_same_set,))
    return FigureResult(
        figure_id="fig4",
        title="Figure 4: consecutive same-set scenarios (% of access pairs)",
        headers=("benchmark", "RR", "RW", "WW", "WR", "same-set"),
        rows=rows,
        summary={
            "mean_same_set_pct": mean_same_set,
            "mean_ww_pct": mean_row[2],
            "mean_rr_pct": mean_row[0],
        },
        paper_values={"mean_same_set_pct": 27.0},
    )
