"""Front door: reproduce any paper figure by id."""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.area import section54_area
from repro.analysis.frequency import figure3_access_frequency
from repro.analysis.power_perf import section55_power_performance
from repro.analysis.reductions import (
    figure10_block_size,
    figure11_cache_size,
    figure9_access_reduction,
)
from repro.analysis.dvfs_energy import dvfs_energy_endgame
from repro.analysis.overheads import overhead_report
from repro.analysis.reliability import reliability_vs_voltage
from repro.analysis.result import FigureResult
from repro.analysis.rmw_overhead import claim_rmw_overhead
from repro.analysis.scenarios import figure4_scenarios
from repro.analysis.silent import figure5_silent_writes
from repro.analysis.traffic import traffic_anatomy
from repro.errors import ValidationError

__all__ = ["ESTIMATOR_AWARE_IDS", "FIGURE_IDS", "reproduce_figure"]

_PRODUCERS: Dict[str, Callable[..., FigureResult]] = {
    "fig3": figure3_access_frequency,
    "fig4": figure4_scenarios,
    "fig5": figure5_silent_writes,
    "fig9": figure9_access_reduction,
    "fig10": figure10_block_size,
    "fig11": figure11_cache_size,
    "claim_rmw": claim_rmw_overhead,
    "sec5.4": section54_area,
    "sec5.5": section55_power_performance,
    "reliability": reliability_vs_voltage,
    "dvfs_energy": dvfs_energy_endgame,
    "traffic": traffic_anatomy,
    "overheads": overhead_report,
}

#: Figures whose producers accept an ``estimator=`` registry (the
#: report generator threads one shared registry through these so they
#: share a single estimation-record cache).
ESTIMATOR_AWARE_IDS = ("sec5.4", "sec5.5", "dvfs_energy", "overheads")

FIGURE_IDS = tuple(sorted(_PRODUCERS))
"""Every reproducible figure/table/claim id."""


def reproduce_figure(figure_id: str, **kwargs) -> FigureResult:
    """Reproduce one figure; kwargs forwarded to the producer
    (typically ``accesses=``, ``seed=``, ``benchmarks=``)."""
    try:
        producer = _PRODUCERS[figure_id]
    except KeyError:
        raise ValidationError(
            f"unknown figure {figure_id!r}; known: {list(FIGURE_IDS)}"
        ) from None
    return producer(**kwargs)
