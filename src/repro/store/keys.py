"""Content-addressed keys: ``(config, workload, code) -> key``.

A store key is the sha256 of an entry's *meta* header — the complete
identity of the unit of work it caches:

* ``config`` — everything a row's value depends on from the
  :class:`repro.sim.experiment.ExperimentConfig` **except** the
  benchmark list (geometry, techniques, trace length, warm-up, seed).
  Keying rows individually rather than per-campaign means adding a
  26th benchmark reuses the 25 already cached.
* ``workload`` — the benchmark's :class:`WorkloadProfile` knobs.  The
  config only names the benchmark; the profile's calibrated numbers
  live in code, and retuning ``bwaves`` must invalidate cached
  ``bwaves`` rows without touching the rest.
* ``code`` — :func:`repro.store.version.code_version`.  Same config +
  same workload + different simulator is a different result.

Because the key *is* the digest of the meta, the store can (and does)
cross-check a loaded entry's stored meta against the expectation: any
divergence — a renamed file, a hand-edited header, version skew — is
quarantined, never served.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Dict, Optional, Tuple

from repro.store.version import code_version

__all__ = [
    "canonical_json",
    "digest",
    "row_key",
    "row_config_fingerprint",
    "workload_fingerprint",
    "verdict_key",
]

#: Hex digits kept for the intermediate fingerprints inside a meta
#: header (the full entry key stays a whole sha256).
FINGERPRINT_LENGTH = 16


def canonical_json(payload: Dict) -> str:
    """The byte-stable JSON form everything here digests."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest(payload: Dict) -> str:
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def row_config_fingerprint(config) -> str:
    """Identity of one row's config inputs, benchmark-list independent.

    Unlike :func:`repro.sim.checkpoint.config_fingerprint` (which scopes
    a *journal* to a whole campaign), this excludes ``benchmarks``: each
    row is keyed by its own benchmark name, so campaigns that share
    geometry/techniques/seed share cached rows.
    """
    geometry = config.geometry
    return digest(
        {
            "geometry": {
                "size_bytes": geometry.size_bytes,
                "associativity": geometry.associativity,
                "block_bytes": geometry.block_bytes,
                "address_bits": geometry.address_bits,
            },
            "techniques": sorted(config.techniques),
            "accesses_per_benchmark": config.accesses_per_benchmark,
            "warmup_fraction": config.warmup_fraction,
            "seed": config.seed,
        }
    )[:FINGERPRINT_LENGTH]


def workload_fingerprint(benchmark: str) -> str:
    """Digest of the benchmark's calibrated profile knobs."""
    from repro.workload.spec2006 import get_profile

    return digest(asdict(get_profile(benchmark)))[:FINGERPRINT_LENGTH]


def row_key(
    config, benchmark: str, code: Optional[str] = None
) -> Tuple[str, Dict[str, object]]:
    """(key, meta) for one cached campaign row."""
    meta: Dict[str, object] = {
        "kind": "campaign-row",
        "benchmark": benchmark,
        "config": row_config_fingerprint(config),
        "workload": workload_fingerprint(benchmark),
        "code": code if code is not None else code_version(),
    }
    return digest(meta), meta


def verdict_key(
    entry_document: Dict, invariants: bool, code: Optional[str] = None
) -> Tuple[str, Dict[str, object]]:
    """(key, meta) for one cached ``check`` corpus-replay verdict.

    The case fingerprint hashes the saved repro document *minus* its
    recorded divergences — those are the verdict being cached, not an
    input to it.  ``code`` is part of the meta, so a replay after any
    result-bearing code change misses and genuinely re-runs instead of
    parroting a stale verdict.
    """
    case = {
        key: value
        for key, value in entry_document.items()
        if key != "divergences"
    }
    meta: Dict[str, object] = {
        "kind": "check-verdict",
        "case": digest(case)[:FINGERPRINT_LENGTH],
        "technique": entry_document.get("technique", ""),
        "invariants": bool(invariants),
        "code": code if code is not None else code_version(),
    }
    return digest(meta), meta
