"""Code-version fingerprint for result-store keys.

A memoized ``CampaignResult`` is only valid while the code that
produced it is the code that would reproduce it.  ``code_version()``
digests the source bytes of every package whose behaviour a simulation
result depends on — controllers, engine, cache model, SRAM model,
trace/workload synthesis, and the sim layer itself — so any edit to
result-bearing code changes the version, changes every store key, and
turns the whole cache into misses.  Stale entries are never *served*;
they are garbage-collected by ``repro-8t cache gc`` (or evicted by the
LRU bound).

The observability, analysis and lint layers are deliberately excluded:
they read results, they do not make them, and invalidating a
multi-hour campaign cache because a docstring moved in ``repro.obs``
would be pure waste.  ``repro.store`` itself is *included* — a bug fix
in entry validation should not keep trusting entries written by the
buggy build.

``REPRO_CODE_VERSION`` overrides the computed version (tests use it to
simulate code drift without editing files).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = [
    "ENV_CODE_VERSION",
    "RESULT_CODE_PATHS",
    "ESTIMATOR_CODE_PATHS",
    "code_version",
]

#: Environment override: when set and non-empty, its value *is* the
#: code version (truncated to 16 chars for uniform key material).
ENV_CODE_VERSION = "REPRO_CODE_VERSION"

#: Paths (relative to the ``repro`` package root) whose source bytes
#: define the result-bearing code surface.
RESULT_CODE_PATHS = (
    "errors.py",
    "cache",
    "core",
    "engine",
    "sram",
    "store",
    "trace",
    "utils",
    "workload",
    "sim",
)

#: The estimator-result code surface: an estimation record is valid
#: only while the power models (and the geometry code they derive
#: from) are unchanged.  Deliberately *narrower* than
#: :data:`RESULT_CODE_PATHS` — an edit to a controller invalidates
#: simulated campaign rows but not cached energy/area estimates, and
#: vice versa.
ESTIMATOR_CODE_PATHS = (
    "errors.py",
    "cache/config.py",
    "power",
    "sram/geometry.py",
    "sram/events.py",
)

#: Hex digits kept from the sha256 digest — plenty against accidental
#: collision, short enough to read in ``cache stats`` output.
VERSION_LENGTH = 16

_cache: Dict[str, str] = {}


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _iter_source_files(root: Path, paths):
    for rel in paths:
        target = root / rel
        if target.is_file():
            yield rel, target
        elif target.is_dir():
            for path in sorted(target.rglob("*.py")):
                yield str(path.relative_to(root)), path


def code_version(
    root: Optional[Union[str, Path]] = None,
    paths=RESULT_CODE_PATHS,
) -> str:
    """Digest of the result-bearing source tree (16 hex chars).

    Deterministic in the file *contents* only — paths are hashed
    relative to the package root, so two checkouts of the same tree
    agree regardless of where they live.  The result is cached per
    (root, paths); a long-running process keeps one stable version for
    its lifetime (it runs one code build anyway).  ``paths`` selects
    the code surface: campaign results use :data:`RESULT_CODE_PATHS`,
    estimation records the narrower :data:`ESTIMATOR_CODE_PATHS`.
    """
    override = os.environ.get(ENV_CODE_VERSION)
    if override:
        return override[:VERSION_LENGTH]
    root = Path(root).resolve() if root is not None else _package_root()
    memo_key = f"{root}|{'|'.join(paths)}"
    cached = _cache.get(memo_key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    for rel, path in _iter_source_files(root, paths):
        # Portable separators so the digest agrees across platforms.
        hasher.update(rel.replace(os.sep, "/").encode())
        hasher.update(b"\x00")
        hasher.update(path.read_bytes())
        hasher.update(b"\x00")
    version = hasher.hexdigest()[:VERSION_LENGTH]
    _cache[memo_key] = version
    return version
