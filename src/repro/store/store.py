"""Durable content-addressed result store with self-healing reads.

Layout under the store root::

    objects/<key[:2]>/<key>.json    committed entries
    quarantine/<key>.<reason>.json  entries that failed validation
    index.jsonl                     fsync'd LRU journal (StoreIndex)

Guarantees:

* **Atomic commits.**  ``put`` writes a tempfile *in the objects
  directory*, flushes, fsyncs, then ``os.replace``-renames it over the
  final name.  A crash at any point leaves either the old state or the
  new state, never a half-written entry; stray ``*.tmp`` files from
  interrupted commits are deleted on open.
* **Validated reads.**  Every ``get`` re-checks format, schema version,
  key/meta identity (including the recorded code version) and payload
  CRC.  An entry that fails any check is *quarantined* — moved into
  ``quarantine/`` with its failure reason in the filename — and the
  read reports a miss, so the caller recomputes and re-stores.  Corrupt
  data is therefore self-healing and is never returned.
* **Bounded size.**  With ``max_bytes`` set, committing a new entry
  evicts least-recently-used entries until the store fits.  Recency is
  journal order (see :class:`repro.store.index.StoreIndex`), not wall
  clock, so eviction decisions are deterministic.  The newest entry is
  never evicted by its own commit.

Telemetry: the ``on_event`` callback receives ``store.hit`` /
``store.miss`` / ``store.corrupt`` / ``store.evict`` (all registered in
:mod:`repro.obs.names`); the same counts accumulate in
:attr:`ResultStore.counters` for ``cache stats``.

Thread-safety: one internal lock serialises all operations; the
campaign runners additionally confine store access to the coordinating
thread (lookups before dispatch, commits after fold).
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.errors import StoreError, StoreIntegrityError
from repro.faultinject.plan import maybe_inject
from repro.store.entry import decode_entry, encode_entry, entry_header
from repro.store.index import StoreIndex
from repro.store.keys import row_key, verdict_key
from repro.store.version import code_version

__all__ = ["ResultStore"]

EventCallback = Callable[..., None]

_COUNTERS = (
    "hits",
    "misses",
    "corrupt",
    "evictions",
    "puts",
    "invalidated",
)


class ResultStore:
    """Content-addressed ``(config, workload, code) -> payload`` store."""

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = None,
        on_event: Optional[EventCallback] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise StoreError(f"max_bytes must be positive, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.on_event = on_event
        self.counters: Dict[str, int] = {name: 0 for name in _COUNTERS}
        self._lock = threading.Lock()
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(
                f"store root {self.root} exists and is not a directory"
            )
        self.objects_dir = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self._sweep_stray_tmp()
        self.index = StoreIndex(self.root / "index.jsonl")
        self.index.reconcile(self._scan_objects())

    # -- filesystem layout ---------------------------------------------

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    def _sweep_stray_tmp(self) -> None:
        """Delete tempfiles left by commits that never renamed."""
        for stray in self.objects_dir.rglob("*.tmp"):
            try:
                stray.unlink()
            except OSError:
                pass

    def _scan_objects(self) -> Dict[str, int]:
        found: Dict[str, int] = {}
        for path in self.objects_dir.rglob("*.json"):
            found[path.stem] = path.stat().st_size
        return found

    # -- core get/put ---------------------------------------------------

    def get(
        self,
        key: str,
        meta: Optional[Dict[str, object]] = None,
        benchmark: Optional[str] = None,
    ) -> Optional[Dict]:
        """Validated lookup; quarantines damage and reports a miss."""
        with self._lock:
            path = self._object_path(key)
            try:
                text = path.read_text()
            except FileNotFoundError:
                self.counters["misses"] += 1
                if self.on_event is not None:
                    self.on_event("store.miss", key=key, benchmark=benchmark)
                return None
            except OSError as exc:
                # Unreadable entry (permissions, I/O error): treat as
                # damage — quarantine may fail too, but the read must
                # still degrade to a miss rather than explode.
                self._quarantine(key, path, "unreadable")
                self.counters["misses"] += 1
                if self.on_event is not None:
                    self.on_event(
                        "store.corrupt",
                        key=key,
                        benchmark=benchmark,
                        reason="unreadable",
                        error=str(exc),
                    )
                return None
            try:
                payload = decode_entry(text, str(path), key=key, meta=meta)
            except StoreIntegrityError as exc:
                self._quarantine(key, path, exc.reason)
                self.counters["corrupt"] += 1
                self.counters["misses"] += 1
                if self.on_event is not None:
                    self.on_event(
                        "store.corrupt",
                        key=key,
                        benchmark=benchmark,
                        reason=exc.reason,
                    )
                    self.on_event("store.miss", key=key, benchmark=benchmark)
                return None
            self.index.touch(key)
            self.counters["hits"] += 1
            if self.on_event is not None:
                self.on_event("store.hit", key=key, benchmark=benchmark)
            return payload

    def put(
        self,
        key: str,
        meta: Dict[str, object],
        payload: Dict,
        benchmark: Optional[str] = None,
    ) -> None:
        """Atomically commit one entry, then enforce the size bound."""
        with self._lock:
            text = encode_entry(key, meta, payload)
            path = self._object_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f"{key}.{os.getpid()}.tmp"
            try:
                with open(tmp, "w") as handle:
                    handle.write(text)
                    handle.flush()
                    os.fsync(handle.fileno())
                # Crash-during-commit injection point: after the bytes
                # are durable in the tempfile, before the rename makes
                # them visible.  A crash here must leave no entry.
                maybe_inject("store.commit", benchmark=benchmark)
                os.replace(tmp, path)
            finally:
                if tmp.exists():
                    try:
                        tmp.unlink()
                    except OSError:
                        pass
            self.index.put(key, len(text.encode()))
            self.counters["puts"] += 1
            self._enforce_bound(protect=key, benchmark=benchmark)

    def _enforce_bound(
        self, protect: str, benchmark: Optional[str] = None
    ) -> None:
        if self.max_bytes is None:
            return
        while self.index.total_bytes() > self.max_bytes:
            victim = None
            for key in self.index.lru_order():
                if key != protect:
                    victim = key
                    break
            if victim is None:
                # Only the just-committed entry remains; a store that
                # evicts its sole entry caches nothing, so the bound
                # yields to it.
                return
            self._delete_object(victim)
            self.index.evict(victim)
            self.counters["evictions"] += 1
            if self.on_event is not None:
                self.on_event("store.evict", key=victim, benchmark=benchmark)

    def _delete_object(self, key: str) -> None:
        try:
            self._object_path(key).unlink()
        except OSError:
            pass

    def _quarantine(self, key: str, path: Path, reason: str) -> Path:
        """Move a bad entry aside; it is kept for post-mortems, not reads."""
        target = self.quarantine_dir / f"{key}.{reason}.json"
        serial = 0
        while target.exists():
            serial += 1
            target = self.quarantine_dir / f"{key}.{reason}.{serial}.json"
        try:
            os.replace(path, target)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.index.remove(key)
        return target

    # -- typed convenience keys ----------------------------------------

    def get_row(
        self, config, benchmark: str, code: Optional[str] = None
    ) -> Optional[Dict]:
        key, meta = row_key(config, benchmark, code=code)
        return self.get(key, meta, benchmark=benchmark)

    def put_row(
        self,
        config,
        benchmark: str,
        payload: Dict,
        code: Optional[str] = None,
    ) -> str:
        key, meta = row_key(config, benchmark, code=code)
        self.put(key, meta, payload, benchmark=benchmark)
        return key

    def get_verdict(
        self,
        entry_document: Dict,
        invariants: bool,
        code: Optional[str] = None,
    ) -> Optional[Dict]:
        key, meta = verdict_key(entry_document, invariants, code=code)
        return self.get(
            key, meta, benchmark=str(entry_document.get("benchmark") or "")
        )

    def put_verdict(
        self,
        entry_document: Dict,
        invariants: bool,
        payload: Dict,
        code: Optional[str] = None,
    ) -> str:
        key, meta = verdict_key(entry_document, invariants, code=code)
        self.put(
            key,
            meta,
            payload,
            benchmark=str(entry_document.get("benchmark") or ""),
        )
        return key

    # -- maintenance (cache stats|verify|gc|invalidate) ----------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "root": str(self.root),
                "entries": len(self.index),
                "total_bytes": self.index.total_bytes(),
                "max_bytes": self.max_bytes,
                "quarantined": sum(
                    1 for _ in self.quarantine_dir.glob("*.json")
                ),
                "code_version": code_version(),
                "index_skipped_lines": self.index.skipped_lines,
                "counters": dict(self.counters),
            }

    def verify(self) -> Dict[str, object]:
        """Validate every entry; quarantine the ones that fail.

        Returns ``{"checked": n, "ok": n, "corrupt": [{"key", "reason"},
        ...]}``.  Verification is itself a self-healing pass: anything
        it flags has already been moved aside, so a subsequent read
        misses cleanly instead of tripping over known damage.
        """
        with self._lock:
            corrupt: List[Dict[str, str]] = []
            checked = 0
            for path in sorted(self.objects_dir.rglob("*.json")):
                checked += 1
                key = path.stem
                try:
                    header = entry_header(path.read_text(), str(path))
                    if header["key"] != key:
                        raise StoreIntegrityError(
                            f"{path}: entry key does not match filename",
                            reason="skew",
                        )
                except StoreIntegrityError as exc:
                    self._quarantine(key, path, exc.reason)
                    self.counters["corrupt"] += 1
                    if self.on_event is not None:
                        self.on_event(
                            "store.corrupt", key=key, reason=exc.reason
                        )
                    corrupt.append({"key": key, "reason": exc.reason})
                except OSError:
                    self._quarantine(key, path, "unreadable")
                    corrupt.append({"key": key, "reason": "unreadable"})
            return {
                "checked": checked,
                "ok": checked - len(corrupt),
                "corrupt": corrupt,
            }

    def gc(self, prune_quarantine: bool = False) -> Dict[str, object]:
        """Drop entries written by a different code version.

        Stale entries can never be served (the meta cross-check rejects
        them as skew), so they are pure dead weight; ``gc`` reclaims
        them eagerly instead of waiting for LRU pressure.  With
        ``prune_quarantine`` the quarantine directory is emptied too.
        """
        with self._lock:
            current = code_version()
            removed = 0
            freed = 0
            for path in sorted(self.objects_dir.rglob("*.json")):
                key = path.stem
                try:
                    header = entry_header(path.read_text(), str(path))
                    stale = header["meta"].get("code") != current
                except (StoreIntegrityError, OSError):  # repro-lint: disable=RPR205
                    # Damaged entries are gc'd outright — verify would
                    # quarantine them, but a gc pass is an explicit
                    # request to reclaim space.  Not silent: the removal
                    # is counted in the returned gc report.
                    stale = True
                if stale:
                    freed += self.index.size_of(key) or path.stat().st_size
                    self._delete_object(key)
                    self.index.remove(key)
                    removed += 1
            pruned = 0
            if prune_quarantine:
                for path in self.quarantine_dir.glob("*.json"):
                    try:
                        path.unlink()
                        pruned += 1
                    except OSError:
                        pass
            return {
                "removed": removed,
                "freed_bytes": freed,
                "quarantine_pruned": pruned,
                "code_version": current,
            }

    def invalidate(
        self,
        benchmark: Optional[str] = None,
        kind: Optional[str] = None,
        everything: bool = False,
    ) -> Dict[str, object]:
        """Remove entries by selector (benchmark and/or kind, or all)."""
        if not everything and benchmark is None and kind is None:
            raise StoreError(
                "invalidate needs a selector: benchmark=, kind=, or "
                "everything=True"
            )
        with self._lock:
            removed = 0
            for path in sorted(self.objects_dir.rglob("*.json")):
                key = path.stem
                if not everything:
                    try:
                        meta = entry_header(path.read_text(), str(path))[
                            "meta"
                        ]
                    except (StoreIntegrityError, OSError):  # repro-lint: disable=RPR205
                        # An unreadable header matches no filter, so the
                        # damaged entry is removed — exactly what an
                        # invalidate pass wants, and the removal shows
                        # up in the returned count.
                        meta = {}
                    if benchmark is not None and meta.get(
                        "benchmark"
                    ) != benchmark:
                        continue
                    if kind is not None and meta.get("kind") != kind:
                        continue
                self._delete_object(key)
                self.index.remove(key)
                removed += 1
            self.counters["invalidated"] += removed
            return {"removed": removed}
