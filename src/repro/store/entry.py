"""Result-store entry format: one validated JSON document per key.

Layout of an entry file::

    {"format": "repro8t-result", "schema": 1,
     "key": "<sha256 hex>",
     "meta": {"kind": ..., "benchmark": ..., "config": ...,
              "workload": ..., "code": ...},
     "crc": "<crc32 hex of canonical payload JSON>",
     "payload": {...}}

Reads are paranoid by construction — every failure mode maps to a
:class:`repro.errors.StoreIntegrityError` with a classifying
``reason``:

``torn``
    The file is not valid JSON or not an object: a torn write, a
    truncation, bit rot inside the structure.
``schema``
    Wrong format name or schema version: written by an incompatible
    build.
``skew``
    The stored ``key``/``meta`` do not match what the caller asked
    for — a renamed file, a hand-edited header, or version skew
    between the entry's recorded code version and the expectation.
``crc``
    The payload checksum does not match: the payload was damaged while
    the header survived.

The store turns any of these into quarantine + miss; nothing invalid
is ever returned.
"""

from __future__ import annotations

import json
import zlib
from typing import Dict, Optional

from repro.errors import StoreIntegrityError
from repro.store.keys import canonical_json

__all__ = [
    "FORMAT_NAME",
    "SCHEMA_VERSION",
    "payload_crc",
    "encode_entry",
    "decode_entry",
    "entry_header",
]

FORMAT_NAME = "repro8t-result"
SCHEMA_VERSION = 1


def payload_crc(payload: Dict) -> str:
    return format(
        zlib.crc32(canonical_json(payload).encode()) & 0xFFFFFFFF, "08x"
    )


def encode_entry(key: str, meta: Dict[str, object], payload: Dict) -> str:
    """Serialise one entry (canonical JSON + trailing newline)."""
    return (
        canonical_json(
            {
                "format": FORMAT_NAME,
                "schema": SCHEMA_VERSION,
                "key": key,
                "meta": meta,
                "crc": payload_crc(payload),
                "payload": payload,
            }
        )
        + "\n"
    )


def _parse(text: str, where: str) -> Dict:
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StoreIntegrityError(
            f"{where}: entry is not valid JSON ({exc}); torn or truncated "
            "write",
            reason="torn",
        ) from exc
    if not isinstance(document, dict):
        raise StoreIntegrityError(
            f"{where}: entry is not a JSON object", reason="torn"
        )
    return document


def _check_schema(document: Dict, where: str) -> None:
    if document.get("format") != FORMAT_NAME:
        raise StoreIntegrityError(
            f"{where}: not a {FORMAT_NAME} entry "
            f"(format={document.get('format')!r})",
            reason="schema",
        )
    if document.get("schema") != SCHEMA_VERSION:
        raise StoreIntegrityError(
            f"{where}: unsupported schema version "
            f"{document.get('schema')!r} (this build reads "
            f"{SCHEMA_VERSION})",
            reason="schema",
        )


def decode_entry(
    text: str,
    where: str,
    key: Optional[str] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Dict:
    """Parse + validate one entry; returns the payload.

    With ``key``/``meta`` given, the stored header must match them
    exactly — in particular the recorded ``code`` version — otherwise
    the entry is *skewed* and must not be served.
    """
    document = _parse(text, where)
    _check_schema(document, where)
    stored_meta = document.get("meta")
    payload = document.get("payload")
    if not isinstance(stored_meta, dict) or not isinstance(payload, dict):
        raise StoreIntegrityError(
            f"{where}: entry is missing its meta/payload sections",
            reason="torn",
        )
    if key is not None and document.get("key") != key:
        raise StoreIntegrityError(
            f"{where}: entry key {str(document.get('key'))[:16]}... does "
            f"not match the requested key {key[:16]}...",
            reason="skew",
        )
    if meta is not None and stored_meta != meta:
        drift = sorted(
            name
            for name in set(stored_meta) | set(meta)
            if stored_meta.get(name) != meta.get(name)
        )
        raise StoreIntegrityError(
            f"{where}: entry meta diverges on {drift} (version skew); "
            "refusing to serve it",
            reason="skew",
        )
    if document.get("crc") != payload_crc(payload):
        raise StoreIntegrityError(
            f"{where}: payload CRC mismatch (stored "
            f"{document.get('crc')!r}); entry is corrupt",
            reason="crc",
        )
    return payload


def entry_header(text: str, where: str) -> Dict:
    """Parse an entry far enough to read its header (no key check).

    Used by ``verify``/``gc``/``invalidate`` scans, which walk entries
    without a specific expectation.  Schema and CRC are still enforced;
    only the key/meta cross-check is skipped.  Returns
    ``{"key": ..., "meta": {...}}``.
    """
    document = _parse(text, where)
    _check_schema(document, where)
    stored_meta = document.get("meta")
    payload = document.get("payload")
    if not isinstance(stored_meta, dict) or not isinstance(payload, dict):
        raise StoreIntegrityError(
            f"{where}: entry is missing its meta/payload sections",
            reason="torn",
        )
    if not isinstance(document.get("key"), str):
        raise StoreIntegrityError(
            f"{where}: entry has no key", reason="torn"
        )
    if document.get("crc") != payload_crc(payload):
        raise StoreIntegrityError(
            f"{where}: payload CRC mismatch", reason="crc"
        )
    return {"key": document["key"], "meta": stored_meta}
