"""Durable content-addressed result store.

Caches campaign rows and check-replay verdicts keyed on
``(config fingerprint, workload fingerprint, code version)`` with
atomic commits, validated self-healing reads (corrupt or version-
skewed entries are quarantined and recomputed, never served), and
size-bounded LRU eviction driven by an fsync'd index journal.

Modules:

``version``
    :func:`code_version` — digest of the result-bearing source tree;
    part of every key, so code changes invalidate the cache.
``keys``
    :func:`row_key` / :func:`verdict_key` — meta headers and their
    sha256 keys.
``entry``
    On-disk entry format with CRC + schema validation
    (:func:`encode_entry` / :func:`decode_entry`).
``index``
    :class:`StoreIndex` — the replayable LRU journal.
``store``
    :class:`ResultStore` — the store itself.
"""

from repro.store.entry import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    decode_entry,
    encode_entry,
    entry_header,
    payload_crc,
)
from repro.store.index import StoreIndex
from repro.store.keys import (
    canonical_json,
    digest,
    row_config_fingerprint,
    row_key,
    verdict_key,
    workload_fingerprint,
)
from repro.store.store import ResultStore
from repro.store.version import ENV_CODE_VERSION, code_version

__all__ = [
    "FORMAT_NAME",
    "SCHEMA_VERSION",
    "ENV_CODE_VERSION",
    "ResultStore",
    "StoreIndex",
    "canonical_json",
    "code_version",
    "decode_entry",
    "digest",
    "encode_entry",
    "entry_header",
    "payload_crc",
    "row_config_fingerprint",
    "row_key",
    "verdict_key",
    "workload_fingerprint",
]
