"""Fsync'd LRU index journal for the result store.

The index is an append-only JSONL journal (header line + one op per
line) replayed into an ``OrderedDict`` on open.  Recency is *journal
order* — ``put``/``touch`` move a key to the back, eviction pops from
the front — so LRU decisions are a pure function of operation history
and never consult the wall clock (determinism rule RPR101 applies to
the sim layer that drives this).

Ops::

    {"op": "put", "key": "<hex>", "size": 1234}
    {"op": "touch", "key": "<hex>"}
    {"op": "evict", "key": "<hex>"}
    {"op": "remove", "key": "<hex>"}

Every append is flushed and fsync'd before the caller proceeds, same
discipline as :class:`repro.sim.checkpoint.CheckpointJournal`: a crash
leaves at most one torn trailing line, and replay simply skips lines
that do not parse (counted in :attr:`StoreIndex.skipped_lines`).  The
index is a *cache of the object tree*, not the source of truth —
:meth:`reconcile` repairs it against the objects actually on disk, so
even deleting ``index.jsonl`` outright loses nothing but LRU order.

When the journal grows past ~4x the live entry count it is compacted:
rewritten as header + one ``put`` per live entry via the same
tempfile-then-rename commit the store uses for entries.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

__all__ = ["INDEX_FORMAT", "INDEX_VERSION", "StoreIndex"]

INDEX_FORMAT = "repro8t-store-index"
INDEX_VERSION = 1

#: Compact once the journal holds more than ``live * _COMPACT_FACTOR +
#: _COMPACT_SLACK`` op lines; the slack keeps tiny stores from
#: compacting on every other write.
_COMPACT_FACTOR = 4
_COMPACT_SLACK = 16


class StoreIndex:
    """Replayable LRU journal over ``{key: size_bytes}``."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self._op_lines = 0
        self.skipped_lines = 0
        self._replay()

    # -- replay / persistence -------------------------------------------

    def _replay(self) -> None:
        if not self.path.exists():
            self._rewrite()
            return
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            lines = []
        body = lines
        if lines:
            header = self._parse_line(lines[0])
            if (
                header is not None
                and header.get("format") == INDEX_FORMAT
                and header.get("version") == INDEX_VERSION
            ):
                body = lines[1:]
            else:
                # Foreign or damaged header: treat the whole file as
                # untrusted and rebuild from ops that still parse.
                self.skipped_lines += 1
        for line in body:
            record = self._parse_line(line)
            if record is None:
                self.skipped_lines += 1
                continue
            self._apply(record)
            self._op_lines += 1
        if self.skipped_lines:
            self._rewrite()

    @staticmethod
    def _parse_line(line: str) -> Optional[Dict]:
        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        return record if isinstance(record, dict) else None

    def _apply(self, record: Dict) -> None:
        op = record.get("op")
        key = record.get("key")
        if not isinstance(key, str):
            self.skipped_lines += 1
            return
        if op == "put":
            size = record.get("size")
            self._entries[key] = int(size) if isinstance(size, int) else 0
            self._entries.move_to_end(key)
        elif op == "touch":
            if key in self._entries:
                self._entries.move_to_end(key)
        elif op in ("evict", "remove"):
            self._entries.pop(key, None)
        else:
            self.skipped_lines += 1

    def _append(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, "a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._op_lines += 1
        if self._op_lines > len(self._entries) * _COMPACT_FACTOR + _COMPACT_SLACK:
            self._rewrite()

    def _rewrite(self) -> None:
        """Compact: header + one ``put`` per live entry, atomically."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w") as handle:
            handle.write(
                json.dumps(
                    {"format": INDEX_FORMAT, "version": INDEX_VERSION},
                    sort_keys=True,
                )
                + "\n"
            )
            for key, size in self._entries.items():
                handle.write(
                    json.dumps(
                        {"op": "put", "key": key, "size": size},
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._op_lines = len(self._entries)

    # -- mutation -------------------------------------------------------

    def put(self, key: str, size: int) -> None:
        self._entries[key] = size
        self._entries.move_to_end(key)
        self._append({"op": "put", "key": key, "size": size})

    def touch(self, key: str) -> None:
        if key not in self._entries:
            return
        self._entries.move_to_end(key)
        self._append({"op": "touch", "key": key})

    def evict(self, key: str) -> None:
        if self._entries.pop(key, None) is not None:
            self._append({"op": "evict", "key": key})

    def remove(self, key: str) -> None:
        if self._entries.pop(key, None) is not None:
            self._append({"op": "remove", "key": key})

    def reconcile(self, on_disk: Dict[str, int]) -> Tuple[int, int]:
        """Repair the index against the objects actually present.

        Index entries whose object vanished are dropped; objects the
        index never heard of are appended (at the LRU-oldest end is
        impossible in an append journal, so they land as most-recent —
        a safe bias: unknown provenance is not a reason to evict
        first).  Returns ``(dropped, adopted)``.
        """
        dropped = [key for key in self._entries if key not in on_disk]
        adopted = [key for key in on_disk if key not in self._entries]
        for key in dropped:
            del self._entries[key]
        for key in adopted:
            self._entries[key] = on_disk[key]
        if dropped or adopted:
            self._rewrite()
        return len(dropped), len(adopted)

    # -- queries --------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def size_of(self, key: str) -> int:
        return self._entries.get(key, 0)

    def total_bytes(self) -> int:
        return sum(self._entries.values())

    def lru_order(self) -> Iterator[str]:
        """Keys oldest-first (the eviction scan order)."""
        return iter(list(self._entries))
