"""The reliability substrate: SEC-DED, interleaving, strikes, scrubbing.

Demonstrates the full chain behind the paper's premise:

1. encode/decode a word through the Hamming(72,64) codec;
2. show why interleaving matters: the same burst of adjacent upsets is
   survivable on an interleaved row and fatal on a flat one;
3. run a Monte-Carlo strike campaign across voltage (the
   ``reliability`` figure);
4. operate an ECC-protected array with scrubbing and watch it absorb
   faults that would otherwise accumulate into data loss.

Run:  python examples/ecc_reliability.py
"""

from repro.analysis.reliability import reliability_vs_voltage
from repro.sram.ecc import InterleavedRowLayout, decode, encode
from repro.sram.geometry import ArrayGeometry
from repro.sram.protected import ECCProtectedArray


def act_codec() -> None:
    print("=== SEC-DED codec ===")
    word = 0xDEAD_BEEF_CAFE_F00D
    codeword = encode(word)
    print(f"data      : {word:#018x}")
    print(f"codeword  : {codeword:#020x} (72 bits)")
    flipped = codeword ^ (1 << 37)
    result = decode(flipped)
    print(f"1 flip    : {result.status}, data recovered = "
          f"{result.data == word}")
    result = decode(flipped ^ (1 << 5))
    print(f"2 flips   : {result.status} (data loss signalled)\n")


def act_interleave() -> None:
    print("=== Interleaving vs an adjacent 4-cell upset ===")
    interleaved = InterleavedRowLayout(words=16)
    flat = InterleavedRowLayout(words=1, bits_per_word=16 * 72)
    burst = 4
    print(f"interleaved (16-way): correctable = "
          f"{interleaved.burst_correctable(100, burst)} "
          f"({interleaved.errors_per_word(100, burst)} flips per word)")
    print(f"flat layout         : correctable = "
          f"{flat.burst_correctable(100, burst)} "
          f"(all {burst} flips land in one word)\n")


def act_voltage() -> None:
    print(reliability_vs_voltage(strikes=10_000).render())
    print()


def act_scrubbing() -> None:
    print("=== Scrubbing an ECC-protected array ===")
    array = ECCProtectedArray(ArrayGeometry(rows=8, words_per_row=16))
    array.write_word(3, 5, 123456789)
    # Strike one: a single flip in the stored codeword.
    array.inject_bit_flips(3, [(5, 17)])
    report = array.scrub()
    print(f"after strike 1 + scrub: corrected={report.corrected_words}, "
          f"clean={report.clean}")
    # Strike two, later: also survivable because the scrub repaired.
    array.inject_bit_flips(3, [(5, 44)])
    value = array.read_word(3, 5)
    print(f"after strike 2: read returns {value} "
          f"(correct: {value == 123456789})")
    print(
        "Without the intervening scrub both flips would coexist — an "
        "uncorrectable double error.  This is why WG's Set-Buffer "
        "residency (see bench_vulnerability) must stay short."
    )


def main() -> None:
    act_codec()
    act_interleave()
    act_voltage()
    act_scrubbing()


if __name__ == "__main__":
    main()
