"""Narrated replay of the paper's Figure 8 example.

Walks the request stream R_a W_b W_b R_b R_b W_b W_a R_b R_a through
WG and WG+RB, printing what the controller does at every step — the
same story the paper tells in Section 4.3.

Run:  python examples/fig8_walkthrough.py
"""

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.core.registry import make_controller
from repro.trace.record import AccessType, MemoryAccess

SET_A = 0x00  # maps to set 0
SET_B = 0x20  # maps to set 1


def build_stream():
    def R(i, address, label):
        return MemoryAccess(icount=i, kind=AccessType.READ, address=address), label

    def W(i, address, value, label):
        return (
            MemoryAccess(
                icount=i, kind=AccessType.WRITE, address=address, value=value
            ),
            label,
        )

    return [
        R(0, SET_A, "R_a"),
        W(1, SET_B, 11, "W_b (first)"),
        W(2, SET_B, 22, "W_b (second)"),
        R(3, SET_B, "R_b"),
        R(4, SET_B, "R_b"),
        W(5, SET_B, 33, "W_b (third)"),
        W(6, SET_A, 0, "W_a (silent)"),
        R(7, SET_B, "R_b"),
        R(8, SET_A, "R_a (last)"),
    ]


def narrate(outcome) -> str:
    notes = []
    if outcome.bypassed:
        notes.append("served from Set-Buffer (bypassed)")
    if outcome.grouped:
        notes.append("grouped into Set-Buffer")
    if outcome.silent:
        notes.append("silent write detected")
    if outcome.forced_writeback:
        notes.append("forced a Set-Buffer write-back")
    if outcome.array_reads:
        notes.append(f"{outcome.array_reads} array read(s)")
    if outcome.array_writes:
        notes.append(f"{outcome.array_writes} array write(s)")
    if not notes:
        notes.append("no array activity")
    return ", ".join(notes)


def run(technique: str) -> None:
    print(f"\n=== {technique.upper()} ===")
    geometry = CacheGeometry(512, 2, 32)
    controller = make_controller(technique, SetAssociativeCache(geometry))
    for access, label in build_stream():
        outcome = controller.process(access)
        print(f"{label:<14} -> {narrate(outcome)}")
    controller.finalize()
    print(f"total array accesses: {controller.array_accesses}")


def main() -> None:
    print("Paper Figure 8 request stream (program order):")
    print("  R_a  W_b  W_b  R_b  R_b  W_b  W_a(silent)  R_b  R_a")
    print("\nRMW would spend 13 array accesses (5 reads + 2x4 writes).")
    for technique in ("rmw", "wg", "wg_rb"):
        run(technique)
    print(
        "\nMatches the paper: WG groups the consecutive W_b pair and "
        "skips the silent W_a's write-back (9 accesses); WG+RB also "
        "bypasses the three buffered reads (5 accesses)."
    )


if __name__ == "__main__":
    main()
