"""The adopter's menu: every implemented technique on one workload.

Runs all seven controllers — the paper's four (conventional, RMW, WG,
WG+RB), the two related-work comparators (Chang's word-granular writes,
Park's banked local RMW) and the equal-storage coalescing write buffer
— over the same trace, and prints the quantities an adopter would
weigh: array accesses, dynamic energy, mean read latency, and each
design's structural cost.

Run:  python examples/design_space_tour.py [benchmark]
"""

import sys

from repro.cache.config import BASELINE_GEOMETRY
from repro.core.registry import ALL_CONTROLLER_NAMES
from repro.perf.timing import TimingSimulator
from repro.power.area import AreaModel
from repro.power.energy import EnergyModel
from repro.power.params import TECH_45NM
from repro.sim.simulator import run_simulation
from repro.sram.geometry import ArrayGeometry
from repro.trace.stream import materialize
from repro.utils.tables import format_table
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

STRUCTURAL_COST = {
    "conventional": "6T cells: high Vmin, no low-voltage DVFS",
    "rmw": "baseline 8T cost structure",
    "rmw_local": "hierarchical RBLs, per-bank isolation logic",
    "word_write": "no interleaving: needs multi-bit ECC (+9.4% bits)",
    "pulse_assist": "adaptive WWL pulse/voltage: ~2x write energy+pulse",
    "wg": "128B Set-Buffer + <150b Tag-Buffer + comparators",
    "wg_rb": "WG + output bypass mux",
    "write_buffer": "4x32B coalescing entries + forwarding CAM",
}


def main() -> None:
    benchmark_name = sys.argv[1] if len(sys.argv) > 1 else "bwaves"
    profile = get_profile(benchmark_name)
    trace = materialize(generate_trace(profile, 25_000))
    geometry = BASELINE_GEOMETRY
    energy_model = EnergyModel(TECH_45NM, ArrayGeometry.for_cache(geometry))
    area_model = AreaModel(node_nm=45)

    rmw_accesses = run_simulation(trace, "rmw", geometry).array_accesses
    rows = []
    for technique in ALL_CONTROLLER_NAMES:
        result = run_simulation(trace, technique, geometry)
        perf = TimingSimulator(technique, geometry).run(trace)
        energy_nj = energy_model.energy_of(result.events).total_nj
        reduction = 100 * (1 - result.array_accesses / rmw_accesses)
        rows.append(
            (
                technique,
                result.array_accesses,
                reduction,
                energy_nj,
                perf.mean_read_latency,
            )
        )
    rows.sort(key=lambda row: row[1])
    print(
        format_table(
            (
                "technique",
                "array accesses",
                "vs RMW %",
                "dyn energy nJ",
                "read latency",
            ),
            rows,
            title=(
                f"{benchmark_name} ({profile.description}) on "
                f"{geometry.describe()}"
            ),
        )
    )
    print("\nStructural costs:")
    for technique in ALL_CONTROLLER_NAMES:
        print(f"  {technique:<13} {STRUCTURAL_COST[technique]}")
    secded = 100 * area_model.ecc_overhead(geometry, "secded")
    multibit = 100 * area_model.ecc_overhead(geometry, "multi_bit")
    print(
        f"\nECC storage: interleaved SEC-DED {secded:.1f}% vs "
        f"non-interleaved multi-bit {multibit:.1f}% of data bits."
    )


if __name__ == "__main__":
    main()
