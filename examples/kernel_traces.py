"""Drive the techniques with traces from *executed* kernels.

Instead of statistical synthesis, these traces come from real Python
kernels running against an instrumented memory (the repository's
stand-in for a Pin tool).  Each kernel archetype lands where you'd
expect: streaming groups beautifully, pointer chasing doesn't, and the
histogram's read-modify-write pairs feed the read bypass.

Run:  python examples/kernel_traces.py
"""

from repro.cache.config import CacheGeometry
from repro.sim.comparison import compare_techniques
from repro.trace.stats import collect_statistics
from repro.utils.tables import format_table
from repro.workload.kernels import KERNEL_NAMES, run_kernel

GEOMETRY = CacheGeometry(size_bytes=4 * 1024, associativity=4, block_bytes=32)


def main() -> None:
    rows = []
    for kernel in KERNEL_NAMES:
        trace = run_kernel(kernel, words=2048, seed=11)
        stats = collect_statistics(trace)
        comparison = compare_techniques(trace, GEOMETRY)
        wgrb = comparison.result("wg_rb")
        rows.append(
            (
                kernel,
                len(trace),
                100 * stats.write_share_of_accesses,
                100 * stats.silent_write_fraction,
                100 * comparison.access_reduction("wg"),
                100 * comparison.access_reduction("wg_rb"),
                wgrb.counts.bypassed_reads,
            )
        )
    print(
        format_table(
            (
                "kernel",
                "accesses",
                "write %",
                "silent %",
                "WG red. %",
                "WG+RB red. %",
                "bypassed",
            ),
            rows,
            title=f"Instrumented kernels on a {GEOMETRY.describe()} cache",
        )
    )
    print(
        "\nstream_triad/stencil: unit-stride writes -> strong grouping."
        "\nlinked_list: pointer chasing -> little same-set reuse, small wins."
        "\nhistogram: load-increment-store on hot bins -> read bypass shines."
        "\ninsertion_sort: duplicate-rich data -> silent stores do the work."
    )


if __name__ == "__main__":
    main()
