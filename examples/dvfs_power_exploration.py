"""The paper's introduction, quantified: why 8T cells + WG/WG+RB.

Three acts:
1. Vmin — 6T read stability caps voltage scaling; 8T scales far lower,
   unlocking more DVFS levels (paper Section 1).
2. The 8T tax — bit-interleaved 8T arrays need RMW, inflating array
   accesses and energy (Section 2/3).
3. The fix — WG/WG+RB claw the energy back (Sections 4/5.5).

Run:  python examples/dvfs_power_exploration.py
"""

from repro.cache.config import BASELINE_GEOMETRY
from repro.power.energy import EnergyModel
from repro.power.leakage import LeakageModel
from repro.power.params import TECH_45NM
from repro.power.voltage import DVFSController, vmin_mv
from repro.sim.comparison import compare_techniques
from repro.sram.geometry import ArrayGeometry
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile


def act_one_vmin() -> None:
    print("=== Act 1: Vmin and DVFS levels ===")
    for cell in ("6T", "8T"):
        controller = DVFSController(TECH_45NM, cell)
        levels = [f"{level.vdd_mv:.0f}" for level in controller.available_levels()]
        print(
            f"{cell}: Vmin = {controller.vmin_mv:.0f} mV, "
            f"legal DVFS levels (mV): {', '.join(levels)}"
        )
    array = ArrayGeometry.for_cache(BASELINE_GEOMETRY)
    leakage = LeakageModel(TECH_45NM, array)
    win = leakage.scaling_win_fraction(vmin_mv("6T"), vmin_mv("8T"))
    print(
        f"Leakage at each cell's floor voltage: the 8T array saves "
        f"{100 * win:.0f}% despite its extra transistors.\n"
    )


def act_two_and_three_energy() -> None:
    print("=== Act 2/3: the RMW tax and the WG/WG+RB rebate ===")
    array = ArrayGeometry.for_cache(BASELINE_GEOMETRY)
    trace = materialize(generate_trace(get_profile("bwaves"), 25_000))
    comparison = compare_techniques(trace, BASELINE_GEOMETRY)

    # Energy at the 8T floor voltage — the DVFS operating point the
    # 8T cell made reachable in the first place.
    model = EnergyModel(TECH_45NM, array, vdd_mv=max(vmin_mv("8T"), 400.0))
    baseline = model.energy_of(comparison.result("conventional").events)
    print(f"bwaves, {BASELINE_GEOMETRY.describe()}, Vdd = {model.vdd_mv:.0f} mV")
    print(f"conventional (no RMW) : {baseline.total_nj:10.1f} nJ")
    for technique in ("rmw", "wg", "wg_rb"):
        energy = model.energy_of(comparison.result(technique).events)
        delta = energy.total_nj / baseline.total_nj - 1.0
        print(
            f"{technique:<21} : {energy.total_nj:10.1f} nJ "
            f"({'+' if delta >= 0 else ''}{100 * delta:.1f}% vs conventional)"
        )
    saving = model.savings_vs(
        comparison.result("wg_rb").events, comparison.result("rmw").events
    )
    print(
        f"\nWG+RB recovers {100 * saving:.0f}% of the RMW array energy — "
        "the paper's Section 5.5 expectation, made concrete."
    )


def main() -> None:
    act_one_vmin()
    act_two_and_three_energy()


if __name__ == "__main__":
    main()
