"""Full SPEC 2006 campaign — regenerates Figures 9, 10 and 11.

Runs all 25 synthetic SPEC CPU2006 profiles through every technique at
the paper's three cache geometries and prints the reduction tables.
Takes a minute or two at the default trace length; pass a smaller
number of accesses as argv[1] for a quick look.

Run:  python examples/spec_campaign.py [accesses]
"""

import sys

from repro.analysis.reductions import (
    figure9_access_reduction,
    figure10_block_size,
    figure11_cache_size,
)


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000

    for producer in (
        figure9_access_reduction,
        figure10_block_size,
        figure11_cache_size,
    ):
        result = producer(accesses=accesses)
        print(result.render())
        print()

    print(
        "Shape checks vs the paper: WG mid-20s% avg (paper 27%), WG+RB "
        "~7 points higher (paper 33%), bwaves/lbm/wrf on top, larger "
        "blocks help, cache size is a wash."
    )


if __name__ == "__main__":
    main()
