"""Quickstart: reproduce the paper's headline result in ~20 lines.

Synthesises a bwaves-like trace, replays it through the RMW baseline
and the paper's two techniques on the baseline 64 KB / 4-way / 32 B
cache, and prints the access-frequency reductions (paper: WG cuts
bwaves' accesses 47 %).

Run:  python examples/quickstart.py
"""

from repro import (
    BASELINE_GEOMETRY,
    compare_techniques,
    generate_trace,
    get_profile,
)


def main() -> None:
    profile = get_profile("bwaves")
    print(f"benchmark : {profile.name} ({profile.description})")
    trace = generate_trace(profile, num_accesses=40_000, seed=2012)
    print(f"trace     : {len(trace):,} accesses\n")

    comparison = compare_techniques(trace, BASELINE_GEOMETRY)

    rmw = comparison.result("rmw")
    print(f"cache     : {BASELINE_GEOMETRY.describe()}")
    print(f"RMW array accesses      : {rmw.array_accesses:,}")
    for technique in ("wg", "wg_rb"):
        result = comparison.result(technique)
        reduction = comparison.access_reduction(technique)
        print(
            f"{technique.upper():<5} array accesses     : "
            f"{result.array_accesses:,}  "
            f"(reduction {100 * reduction:.1f}%)"
        )
    print(
        f"\nRMW inflates accesses by {100 * comparison.rmw_overhead:.1f}% "
        "over a conventional (6T) cache — the cost the paper attacks."
    )

    wg = comparison.result("wg")
    print(
        f"\nWhy WG wins here: {wg.counts.grouped_writes:,} of "
        f"{wg.counts.write_requests:,} writes were grouped and "
        f"{wg.counts.silent_writes_detected:,} were silent "
        "(no write-back needed at all)."
    )


if __name__ == "__main__":
    main()
