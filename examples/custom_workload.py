"""Build your own workload profile and evaluate the techniques on it.

Shows the full profile surface: stream mixes, burstiness, read/write
persistence and silent-store rate — then sweeps one knob (the silent
fraction) to show how it feeds Write Grouping, independent of
grouping itself.

Run:  python examples/custom_workload.py
"""

from repro import BASELINE_GEOMETRY, compare_techniques
from repro.utils.tables import format_table
from repro.workload.generator import generate_trace
from repro.workload.profile import StreamSpec, WorkloadProfile


def make_profile(silent_fraction: float) -> WorkloadProfile:
    return WorkloadProfile(
        name=f"custom-silent-{int(100 * silent_fraction)}",
        read_frequency=0.25,
        write_frequency=0.15,
        silent_fraction=silent_fraction,
        burst_mean=4.0,
        type_persistence=0.7,
        streams=(
            # A checkpointing loop: sweeps a buffer and rewrites most of
            # it unchanged (classic silent-store generator).
            StreamSpec("sequential", weight=4.0, region_kib=512, write_bias=1.6),
            # Hot counters in one cache block.
            StreamSpec(
                "hotspot",
                weight=2.0,
                region_kib=64,
                write_bias=1.2,
                hot_words=4,
                hot_probability=0.85,
            ),
            # Background pointer chasing.
            StreamSpec("pointer_chase", weight=1.0, region_kib=2048,
                       write_bias=0.5),
        ),
        description="synthetic checkpointing workload",
    )


def main() -> None:
    rows = []
    for silent in (0.0, 0.2, 0.4, 0.6, 0.8):
        profile = make_profile(silent)
        trace = generate_trace(profile, 20_000, seed=1)
        comparison = compare_techniques(trace, BASELINE_GEOMETRY)
        wg = comparison.result("wg")
        rows.append(
            (
                f"{silent:.0%}",
                100 * comparison.access_reduction("wg"),
                100 * comparison.access_reduction("wg_rb"),
                100 * wg.counts.silent_write_fraction,
            )
        )
    print(
        format_table(
            ("silent stores", "WG red. %", "WG+RB red. %", "detected %"),
            rows,
            title="Silent-store rate vs access reduction (custom workload)",
        )
    )
    print(
        "\nSilent writes never dirty the Set-Buffer, so their write-backs"
        "\nvanish: reduction climbs with the silent rate even though the"
        "\naddress stream (and thus grouping) is unchanged."
    )


if __name__ == "__main__":
    main()
