"""End-to-end fault-tolerance tests: crash, hang, transient and resume.

Every test asserts the *strong* property: a campaign that survived
injected faults (or was interrupted and resumed) produces results
bit-identical to an undisturbed run.  The serialisation layer is exact
(all-integer payloads), so equality of serialised rows is equality of
results.
"""

import signal
import sys

import pytest

from repro.errors import CampaignFailedError
from repro.faultinject import FaultSpec, inject
from repro.obs import Telemetry
from repro.sim.campaign import run_campaign
from repro.sim.checkpoint import serialize_row
from repro.sim.experiment import ExperimentConfig
from repro.sim.parallel import run_campaign_parallel
from repro.sim.resilience import RetryPolicy

BENCHMARKS = ("bwaves", "mcf", "gcc")

#: Retries with zero backoff so fault-healing tests stay fast.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)

@pytest.fixture(autouse=True)
def no_leftover_fault_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        benchmarks=BENCHMARKS,
        techniques=("conventional", "rmw", "wg"),
        accesses_per_benchmark=2000,
        seed=13,
    )


@pytest.fixture(scope="module")
def clean(config):
    """Reference result from an undisturbed sequential run."""
    return run_campaign(config)


def payloads(result):
    """Exact serialised form of every completed row, keyed by benchmark."""
    return {row.benchmark: serialize_row(row) for row in result.rows}


class TestTransientFaults:
    def test_sequential_retry_heals_and_is_bit_identical(self, config, clean):
        telemetry = Telemetry()
        with inject(FaultSpec(kind="transient", benchmark="mcf")):
            result = run_campaign(config, telemetry, retry=FAST_RETRY)
        assert result.complete
        assert payloads(result) == payloads(clean)
        assert telemetry.registry.value("retry.attempt") >= 1

    def test_parallel_retry_heals_and_is_bit_identical(self, config, clean):
        telemetry = Telemetry()
        with inject(FaultSpec(kind="transient", benchmark="mcf")):
            result = run_campaign_parallel(
                config, processes=2, telemetry=telemetry, retry=FAST_RETRY
            )
        assert result.complete
        assert payloads(result) == payloads(clean)
        assert telemetry.registry.value("retry.attempt") >= 1

    def test_exhausted_retries_quarantine_not_raise(self, config, clean):
        telemetry = Telemetry()
        permanent = FaultSpec(kind="transient", benchmark="gcc", until_attempt=99)
        with inject(permanent):
            result = run_campaign(
                config, telemetry, retry=RetryPolicy(max_attempts=2, base_delay_s=0.0)
            )
        assert not result.complete
        assert [f.benchmark for f in result.failed_rows] == ["gcc"]
        failure = result.failed_rows[0]
        assert failure.error_type == "InjectedFaultError"
        assert failure.attempts == 2
        # The healthy benchmarks still completed, bit-identical.
        reference = payloads(clean)
        assert payloads(result) == {
            name: reference[name] for name in ("bwaves", "mcf")
        }
        assert telemetry.registry.value("campaign.quarantined") == 1
        with pytest.raises(ValueError):
            result.row("gcc")

    def test_strict_mode_raises(self, config):
        permanent = FaultSpec(kind="transient", benchmark="gcc", until_attempt=99)
        with inject(permanent):
            with pytest.raises(CampaignFailedError) as excinfo:
                run_campaign(
                    config, retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
                    strict=True,
                )
        assert [f.benchmark for f in excinfo.value.failed_rows] == ["gcc"]


class TestProcessDeath:
    def test_crash_quarantined_and_counted(self, config, clean):
        telemetry = Telemetry()
        with inject(FaultSpec(kind="crash", benchmark="gcc", until_attempt=99)):
            result = run_campaign_parallel(
                config,
                processes=2,
                telemetry=telemetry,
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.0),
            )
        assert [f.benchmark for f in result.failed_rows] == ["gcc"]
        assert result.failed_rows[0].error_type == "WorkerCrashError"
        reference = payloads(clean)
        assert payloads(result) == {
            name: reference[name] for name in ("bwaves", "mcf")
        }
        assert telemetry.registry.value("worker.crash") == 2
        assert telemetry.registry.value("campaign.quarantined") == 1

    def test_crash_healed_by_retry(self, config, clean):
        with inject(FaultSpec(kind="crash", benchmark="mcf", until_attempt=1)):
            result = run_campaign_parallel(config, processes=2, retry=FAST_RETRY)
        assert result.complete
        assert payloads(result) == payloads(clean)

    @pytest.mark.skipif(
        not hasattr(signal, "SIGALRM") or sys.platform == "win32",
        reason="hang teardown relies on POSIX signal semantics",
    )
    def test_hang_terminated_by_worker_timeout(self, config, clean):
        telemetry = Telemetry()
        with inject(FaultSpec(kind="hang", benchmark="mcf", until_attempt=99)):
            result = run_campaign_parallel(
                config,
                processes=2,
                telemetry=telemetry,
                retry=RetryPolicy(
                    max_attempts=2, base_delay_s=0.0, worker_timeout_s=1.0
                ),
            )
        assert [f.benchmark for f in result.failed_rows] == ["mcf"]
        assert result.failed_rows[0].error_type == "WorkerTimeoutError"
        assert telemetry.registry.value("worker.timeout") == 2
        reference = payloads(clean)
        assert payloads(result) == {
            name: reference[name] for name in ("bwaves", "gcc")
        }


class TestCheckpointResume:
    def test_interrupted_then_resumed_is_bit_identical(
        self, config, clean, tmp_path
    ):
        checkpoint = tmp_path / "campaign.jsonl"
        # First run: gcc permanently failing stands in for an interrupt —
        # bwaves and mcf land in the journal, gcc does not.
        with inject(
            FaultSpec(kind="transient", benchmark="gcc", until_attempt=99)
        ):
            partial = run_campaign(
                config,
                retry=RetryPolicy.none(),
                checkpoint=checkpoint,
            )
        assert not partial.complete
        assert {row.benchmark for row in partial.rows} == {"bwaves", "mcf"}

        # Second run: fault gone.  Only gcc re-runs; the journalled rows
        # come back verbatim and the whole result matches a clean run.
        telemetry = Telemetry()
        resumed = run_campaign(config, telemetry, checkpoint=checkpoint)
        assert resumed.complete
        assert payloads(resumed) == payloads(clean)
        assert telemetry.registry.value("checkpoint.resumed_rows") == 2

    def test_parallel_resume_is_bit_identical(self, config, clean, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        with inject(
            FaultSpec(kind="transient", benchmark="mcf", until_attempt=99)
        ):
            run_campaign_parallel(
                config,
                processes=2,
                retry=RetryPolicy.none(),
                checkpoint=checkpoint,
            )
        telemetry = Telemetry()
        resumed = run_campaign_parallel(
            config, processes=2, telemetry=telemetry, checkpoint=checkpoint
        )
        assert resumed.complete
        assert payloads(resumed) == payloads(clean)
        assert telemetry.registry.value("checkpoint.resumed_rows") == 2

    def test_completed_checkpoint_reruns_nothing(self, config, clean, tmp_path):
        checkpoint = tmp_path / "campaign.jsonl"
        run_campaign(config, checkpoint=checkpoint)
        # A permanent wildcard fault proves no benchmark actually re-runs.
        with inject(FaultSpec(kind="transient", until_attempt=99)):
            resumed = run_campaign(
                config, retry=RetryPolicy.none(), checkpoint=checkpoint
            )
        assert resumed.complete
        assert payloads(resumed) == payloads(clean)


class TestDeterministicOrdering:
    def test_parallel_rows_follow_config_order(self, config, clean):
        # Delay the *first* benchmark so it finishes last; row order must
        # still follow the config, not completion time.
        with inject(
            FaultSpec(
                kind="delay", benchmark="bwaves", seconds=0.4, until_attempt=99
            )
        ):
            result = run_campaign_parallel(config, processes=3)
        assert [row.benchmark for row in result.rows] == list(BENCHMARKS)
        assert payloads(result) == payloads(clean)
