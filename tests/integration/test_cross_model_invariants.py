"""Cross-model invariants: counters, energy and timing must agree.

The access-count, energy and timing models are three views of the same
event stream; these tests pin the relationships between them so a
change to one model cannot silently diverge from the others.
"""

import pytest

from repro.cache.config import CacheGeometry
from repro.perf.timing import TimingSimulator
from repro.power.energy import EnergyModel
from repro.power.params import TECH_45NM
from repro.sim.comparison import compare_techniques
from repro.sram.geometry import ArrayGeometry

from tests.conftest import make_random_trace

GEOMETRY = CacheGeometry(4 * 1024, 4, 32)


@pytest.fixture(scope="module")
def comparison():
    trace = make_random_trace(
        900, seed=21, word_span=400, write_share=0.4, silent_share=0.4
    )
    return compare_techniques(
        trace, GEOMETRY, techniques=("conventional", "rmw", "wg", "wg_rb")
    )


@pytest.fixture(scope="module")
def energy_model():
    return EnergyModel(TECH_45NM, ArrayGeometry.for_cache(GEOMETRY))


class TestEnergyFollowsAccessCounts:
    def test_wg_family_cheaper_than_rmw(self, comparison, energy_model):
        """Fewer array accesses must mean less total energy — the buffer
        energy never swamps the saved row activations."""
        rmw_energy = energy_model.energy_of(
            comparison.result("rmw").events
        ).total_fj
        for technique in ("wg", "wg_rb"):
            energy = energy_model.energy_of(
                comparison.result(technique).events
            ).total_fj
            assert energy < rmw_energy

    def test_energy_ordering_tracks_access_ordering(
        self, comparison, energy_model
    ):
        accesses = {
            t: comparison.result(t).array_accesses for t in ("rmw", "wg", "wg_rb")
        }
        energies = {
            t: energy_model.energy_of(comparison.result(t).events).total_fj
            for t in ("rmw", "wg", "wg_rb")
        }
        assert (
            sorted(accesses, key=accesses.get)
            == sorted(energies, key=energies.get)
        )

    def test_row_events_consistent_with_counts(self, comparison):
        """RMW's event log decomposes exactly: reads = read requests +
        write requests (each write reads its row); writes = writes."""
        result = comparison.result("rmw")
        assert result.events.row_reads == (
            result.counts.read_requests + result.counts.write_requests
        )
        assert result.events.row_writes == result.counts.write_requests

    def test_wg_writebacks_match_row_writes(self, comparison):
        """Every WG row write is one of the accounted write-backs."""
        result = comparison.result("wg")
        assert result.events.row_writes == result.counts.writebacks

    def test_wg_fills_match_full_row_reads(self, comparison):
        """WG's row reads are either single-word request reads or
        full-row buffer fills; the words_routed total proves it."""
        result = comparison.result("wg")
        fills = result.counts.set_buffer_fills
        request_reads = result.events.row_reads - fills
        expected_words = (
            request_reads * 1 + fills * GEOMETRY.words_per_set
        )
        assert result.events.words_routed == expected_words


class TestTimingFollowsEvents:
    def test_port_busy_tracks_array_accesses(self):
        """More array operations cannot take less total port time."""
        trace = make_random_trace(600, seed=22, word_span=300)
        busy = {}
        for technique in ("rmw", "wg", "wg_rb"):
            perf = TimingSimulator(technique, GEOMETRY).run(trace)
            busy[technique] = perf.read_port_busy + perf.write_port_busy
        assert busy["wg_rb"] <= busy["wg"] <= busy["rmw"]
