"""End-to-end integration: kernels and benchmarks through the full stack."""

import pytest

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.perf.timing import evaluate_performance
from repro.power.energy import EnergyModel
from repro.power.params import TECH_45NM
from repro.sim.comparison import compare_techniques
from repro.sram.geometry import ArrayGeometry
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.kernels import KERNEL_NAMES, run_kernel
from repro.workload.spec2006 import get_profile

from tests.conftest import oracle_read_values


class TestKernelsThroughControllers:
    """Real executed kernels drive the full controller stack."""

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_kernel_traces_benefit_ordering(self, kernel):
        trace = run_kernel(kernel, words=768, seed=2)
        geometry = CacheGeometry(4 * 1024, 4, 32)
        comparison = compare_techniques(trace, geometry)
        assert comparison.access_reduction("wg") >= 0.0
        assert comparison.access_reduction("wg_rb") >= comparison.access_reduction(
            "wg"
        )

    def test_stream_triad_groups_well(self):
        """A pure streaming kernel is the WG best case: consecutive
        writes land in the same block."""
        trace = run_kernel("stream_triad", words=1536, seed=2)
        comparison = compare_techniques(trace, CacheGeometry(4 * 1024, 4, 32))
        assert comparison.access_reduction("wg") > 0.15

    def test_histogram_bypasses_reads(self):
        """Histogram's load-increment-store pairs hit the Set-Buffer."""
        trace = run_kernel("histogram", words=512, seed=2)
        comparison = compare_techniques(trace, CacheGeometry(4 * 1024, 4, 32))
        wg_rb = comparison.result("wg_rb")
        assert wg_rb.counts.bypassed_reads > 0

    @pytest.mark.parametrize("kernel", KERNEL_NAMES)
    def test_kernel_value_correctness_under_wg_rb(self, kernel):
        trace = run_kernel(kernel, words=512, seed=5)
        geometry = CacheGeometry(512, 2, 32)  # tiny: force evictions
        from repro.cache.cache import SetAssociativeCache
        from repro.core.registry import make_controller

        controller = make_controller("wg_rb", SetAssociativeCache(geometry))
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect


class TestSyntheticBenchmarkEndToEnd:
    @pytest.fixture(scope="class")
    def bwaves_comparison(self):
        trace = materialize(generate_trace(get_profile("bwaves"), 10_000))
        return compare_techniques(trace, BASELINE_GEOMETRY)

    def test_headline_reduction(self, bwaves_comparison):
        """bwaves is the paper's showcase: ~47 % WG reduction."""
        assert 0.40 <= bwaves_comparison.access_reduction("wg") <= 0.52

    def test_energy_follows_accesses(self, bwaves_comparison):
        model = EnergyModel(TECH_45NM, ArrayGeometry.for_cache(BASELINE_GEOMETRY))
        saving = model.savings_vs(
            bwaves_comparison.result("wg_rb").events,
            bwaves_comparison.result("rmw").events,
        )
        assert saving > 0.35

    def test_perf_model_agrees(self):
        trace = materialize(generate_trace(get_profile("bwaves"), 5_000))
        results = evaluate_performance(
            trace, BASELINE_GEOMETRY, techniques=("rmw", "wg_rb")
        )
        assert (
            results["wg_rb"].mean_read_latency
            < results["rmw"].mean_read_latency
        )

    def test_cache_hit_rates_identical_across_techniques(
        self, bwaves_comparison
    ):
        """The techniques change array traffic, never cache behaviour."""
        hit_rates = {
            name: result.cache_stats.hit_rate
            for name, result in bwaves_comparison.results.items()
        }
        values = list(hit_rates.values())
        assert all(v == pytest.approx(values[0]) for v in values)
