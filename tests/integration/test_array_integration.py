"""Circuit-level integration: drive the *real* SRAMArray with the same
request stream the controllers see and check the data planes agree.

The cache model and the behavioural array are independent
implementations of the same storage; this harness runs a trace through
both — the array strictly via legal operations (RMW for partial writes,
full-row writes for Set-Buffer write-backs, load_row mirrors for fills)
— and asserts word-for-word agreement at the end.  It is the test that
would catch an RMW sequencing bug that the architectural counters alone
would miss.
"""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.core.registry import make_controller
from repro.sram.array import SRAMArray
from repro.sram.geometry import ArrayGeometry

from tests.conftest import make_random_trace


class ArrayBackedRun:
    """Replays a trace into a controller while mirroring every fill into
    an SRAMArray row and every write through array RMW operations."""

    def __init__(self, geometry: CacheGeometry, technique: str) -> None:
        self.cache = SetAssociativeCache(geometry)
        self.controller = make_controller(technique, self.cache)
        self.array = SRAMArray(ArrayGeometry.for_cache(geometry))
        self.geometry = geometry

    def run(self, trace) -> None:
        mapper = self.cache.mapper
        words_per_block = self.geometry.words_per_block
        for access in trace:
            self.controller.process(access)
            if access.is_write:
                set_index = mapper.set_index(access.address)
                way = self.cache.lookup(access.address)
                word_in_row = way * words_per_block + mapper.word_offset(
                    access.address
                )
                # The only legal partial write on an interleaved array.
                self.array.read_modify_write(
                    set_index, {word_in_row: access.value}
                )


class TestArrayMirrorsWrites:
    """With a footprint that never misses (one set's worth of data
    resident from the start), every array word tracks the cache."""

    @pytest.mark.parametrize("technique", ["rmw", "wg", "wg_rb"])
    def test_resident_working_set(self, technique):
        geometry = CacheGeometry(512, 2, 32)
        run = ArrayBackedRun(geometry, technique)
        # Touch one block per set first so everything is resident and
        # no evictions ever occur (footprint == one way per set).
        from repro.trace.record import AccessType, MemoryAccess

        warm = [
            MemoryAccess(
                icount=i,
                kind=AccessType.READ,
                address=i * geometry.block_bytes,
            )
            for i in range(geometry.num_sets)
        ]
        body = make_random_trace(
            400,
            seed=3,
            word_span=geometry.num_sets * geometry.words_per_block,
            write_share=0.5,
        )
        body = [
            MemoryAccess(
                icount=geometry.num_sets + i,
                kind=a.kind,
                address=a.address,
                value=a.value,
            )
            for i, a in enumerate(body)
        ]
        run.run(warm + body)
        run.controller.finalize()
        # Compare every word of every row against the cache.
        for set_index in range(geometry.num_sets):
            cache_row = []
            for way_data in run.cache.read_set_data(set_index):
                cache_row.extend(way_data)
            assert run.array.peek_row(set_index) == cache_row, set_index

    def test_array_counted_rmws_match_write_count(self):
        geometry = CacheGeometry(512, 2, 32)
        run = ArrayBackedRun(geometry, "rmw")
        trace = make_random_trace(
            200, seed=4, word_span=geometry.num_sets * geometry.words_per_block
        )
        # Make everything resident first (reads to each block).
        from repro.trace.record import AccessType, MemoryAccess

        warm = [
            MemoryAccess(
                icount=i, kind=AccessType.READ, address=i * geometry.block_bytes
            )
            for i in range(geometry.num_sets)
        ]
        offset = geometry.num_sets
        trace = [
            MemoryAccess(
                icount=offset + i, kind=a.kind, address=a.address, value=a.value
            )
            for i, a in enumerate(trace)
        ]
        run.run(warm + trace)
        writes = sum(1 for a in trace if a.is_write)
        assert run.array.events.rmw_operations == writes
