"""Chaos end-to-end: crashes + store corruption, bit-identical results.

The strongest claim the robustness layer makes: you can kill workers
mid-campaign, tear/corrupt/skew the result store underneath the run,
and the campaign still produces rows bit-identical to a clean
sequential run — with `CampaignResult.health` accounting for every
row's provenance (`cached + recomputed + quarantined + breaker_skipped
== total`).
"""

import pytest

from repro.faultinject import (
    FaultSpec,
    corrupt_entry_crc,
    inject,
    skew_entry_code,
    tear_entry,
)
from repro.sim import campaign as campaign_mod
from repro.sim.campaign import run_campaign
from repro.sim.checkpoint import serialize_row
from repro.sim.experiment import ExperimentConfig
from repro.sim.parallel import run_campaign_parallel
from repro.sim.resilience import RetryPolicy
from repro.store import ResultStore

BENCHMARKS = ("bwaves", "gcc", "mcf", "milc", "lbm")

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def no_leftover_fault_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        benchmarks=BENCHMARKS,
        techniques=("conventional", "wg"),
        accesses_per_benchmark=1500,
        seed=2012,
    )


@pytest.fixture(scope="module")
def clean(config):
    return run_campaign(config, retry=RetryPolicy.none())


def payloads(result):
    return {row.benchmark: serialize_row(row) for row in result.rows}


def test_clean_run_health_is_all_recomputed(clean):
    health = clean.health
    assert health.total == len(BENCHMARKS)
    assert health.recomputed == len(BENCHMARKS)
    assert health.cached == 0
    assert health.consistent
    assert "recomputed" in health.describe()


def test_chaotic_parallel_run_with_store_matches_clean(
    config, clean, tmp_path
):
    """Workers killed mid-campaign; store written; rows bit-identical."""
    cache = tmp_path / "cache"
    with inject(
        FaultSpec(kind="crash", benchmark="gcc", until_attempt=1),
        FaultSpec(kind="transient", benchmark="mcf", until_attempt=1),
    ):
        chaotic = run_campaign_parallel(
            config, processes=2, retry=FAST_RETRY, result_cache=cache
        )
    assert payloads(chaotic) == payloads(clean)
    assert not chaotic.failed_rows
    health = chaotic.health
    assert health.consistent
    assert health.recomputed == len(BENCHMARKS)

    # The survived chaos left a complete, verifiable store behind.
    store = ResultStore(cache)
    assert store.stats()["entries"] == len(BENCHMARKS)
    assert store.verify()["corrupt"] == []


def test_corrupted_store_heals_and_still_matches(config, clean, tmp_path):
    """One corruptor per validation layer; the rerun heals them all."""
    cache = tmp_path / "cache"
    run_campaign(config, retry=FAST_RETRY, result_cache=cache)
    store = ResultStore(cache)
    entries = sorted(store.objects_dir.rglob("*.json"))
    assert len(entries) == len(BENCHMARKS)
    for corruptor, path in zip(
        (tear_entry, corrupt_entry_crc, skew_entry_code), entries
    ):
        corruptor(path)

    rerun = run_campaign(config, retry=FAST_RETRY, result_cache=cache)
    assert payloads(rerun) == payloads(clean)
    health = rerun.health
    assert health.consistent
    assert health.healed == 3
    assert health.cached == len(BENCHMARKS) - 3
    assert health.recomputed == 3
    # Quarantine holds the three damaged entries for post-mortems.
    reopened = ResultStore(cache)
    assert reopened.stats()["quarantined"] == 3
    # Healing re-stored the recomputed rows: the store is whole again.
    assert reopened.stats()["entries"] == len(BENCHMARKS)
    assert reopened.verify()["corrupt"] == []


def test_warm_rerun_serves_everything_with_zero_simulator_calls(
    config, clean, tmp_path, monkeypatch
):
    """Acceptance: >= 90% of rows from the store, zero execute_row calls."""
    cache = tmp_path / "cache"
    run_campaign(config, retry=FAST_RETRY, result_cache=cache)

    calls = []
    real = campaign_mod.execute_row

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(campaign_mod, "execute_row", counting)
    warm = run_campaign(config, retry=FAST_RETRY, result_cache=cache)
    assert payloads(warm) == payloads(clean)
    health = warm.health
    assert health.consistent
    assert health.cached == health.total == len(BENCHMARKS)
    assert health.cached / health.total >= 0.9
    assert calls == []  # no simulator invocation for any cached row


def test_parallel_warm_rerun_served_from_store(config, clean, tmp_path):
    """The parallel runner serves cached rows before dispatching jobs."""
    cache = tmp_path / "cache"
    run_campaign(config, retry=FAST_RETRY, result_cache=cache)
    warm = run_campaign_parallel(
        config, processes=2, retry=FAST_RETRY, result_cache=cache
    )
    assert payloads(warm) == payloads(clean)
    assert warm.health.cached == warm.health.total
    assert warm.health.consistent


def test_mid_campaign_death_leaves_partial_reusable_store(
    config, clean, tmp_path
):
    """A quarantined run's healthy rows are still served next time."""
    cache = tmp_path / "cache"
    with inject(
        FaultSpec(kind="transient", benchmark="mcf", until_attempt=99)
    ):
        broken = run_campaign(config, retry=FAST_RETRY, result_cache=cache)
    assert [f.benchmark for f in broken.failed_rows] == ["mcf"]
    health = broken.health
    assert health.consistent
    assert health.quarantined == 1
    assert health.recomputed == len(BENCHMARKS) - 1

    # Fault gone: the retry run computes only the missing benchmark.
    healed = run_campaign(config, retry=FAST_RETRY, result_cache=cache)
    assert payloads(healed) == payloads(clean)
    assert healed.health.cached == len(BENCHMARKS) - 1
    assert healed.health.recomputed == 1
    assert healed.health.consistent


def test_checkpoint_and_store_compose(config, clean, tmp_path):
    """Checkpoint resume + store cache account without double-counting."""
    cache = tmp_path / "cache"
    journal = tmp_path / "run.jsonl"
    first = run_campaign(
        config, retry=FAST_RETRY, checkpoint=journal, result_cache=cache
    )
    assert first.health.consistent
    resumed = run_campaign(
        config, retry=FAST_RETRY, checkpoint=journal, result_cache=cache
    )
    assert payloads(resumed) == payloads(clean)
    health = resumed.health
    assert health.consistent
    assert health.cached == health.total
    assert health.checkpoint_resumed == health.total
    assert health.recomputed == 0
