"""Unit tests for the conventional and RMW controllers."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.conventional import ConventionalController
from repro.core.outcomes import ServedFrom
from repro.core.rmw import RMWController
from repro.trace.record import AccessType, MemoryAccess


def R(address, icount=0):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


def W(address, value, icount=0):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


class TestConventional:
    def test_read_costs_one_access(self, tiny_geometry):
        controller = ConventionalController(SetAssociativeCache(tiny_geometry))
        outcome = controller.process(R(0))
        assert outcome.array_reads == 1
        assert outcome.array_writes == 0
        assert controller.array_accesses == 1

    def test_write_costs_one_access(self, tiny_geometry):
        controller = ConventionalController(SetAssociativeCache(tiny_geometry))
        outcome = controller.process(W(0, 7))
        assert outcome.array_writes == 1
        assert controller.array_accesses == 1
        assert controller.events.row_writes == 1
        # Only the selected columns' driver fires in a 6T write.
        assert controller.events.words_driven == 1

    def test_values_flow(self, tiny_geometry):
        controller = ConventionalController(SetAssociativeCache(tiny_geometry))
        controller.process(W(0x10, 55))
        assert controller.process(R(0x10)).value == 55

    def test_finalize_idempotent(self, tiny_geometry):
        controller = ConventionalController(SetAssociativeCache(tiny_geometry))
        controller.process(R(0))
        controller.finalize()
        controller.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            controller.process(R(0))


class TestRMW:
    def test_read_costs_one(self, tiny_geometry):
        controller = RMWController(SetAssociativeCache(tiny_geometry))
        controller.process(R(0))
        assert controller.array_accesses == 1

    def test_write_costs_two(self, tiny_geometry):
        """The paper's core complaint: every write is read-row + write."""
        controller = RMWController(SetAssociativeCache(tiny_geometry))
        outcome = controller.process(W(0, 1))
        assert outcome.array_reads == 1
        assert outcome.array_writes == 1
        assert controller.array_accesses == 2
        assert controller.counts.rmw_operations == 1

    def test_rmw_reads_full_row(self, tiny_geometry):
        controller = RMWController(SetAssociativeCache(tiny_geometry))
        controller.process(W(0, 1))
        assert controller.events.words_routed == tiny_geometry.words_per_set
        assert controller.events.words_driven == tiny_geometry.words_per_set

    def test_access_count_formula(self, tiny_geometry):
        """Total accesses == reads + 2 * writes."""
        controller = RMWController(SetAssociativeCache(tiny_geometry))
        trace = [R(0, 0), W(8, 1, 1), R(16, 2), W(0, 2, 3), W(8, 3, 4)]
        controller.run(trace)
        assert controller.array_accesses == 2 + 2 * 3

    def test_values_flow(self, tiny_geometry):
        controller = RMWController(SetAssociativeCache(tiny_geometry))
        controller.process(W(0x40, 99))
        assert controller.process(R(0x40)).value == 99

    def test_served_from_array(self, tiny_geometry):
        controller = RMWController(SetAssociativeCache(tiny_geometry))
        assert controller.process(R(0)).served_from is ServedFrom.ARRAY


class TestMissTraffic:
    def test_disabled_by_default(self, tiny_geometry):
        controller = RMWController(SetAssociativeCache(tiny_geometry))
        controller.process(R(0))  # a miss + fill
        assert controller.array_accesses == 1  # fill not charged

    def test_enabled_charges_fills(self, tiny_geometry):
        controller = RMWController(
            SetAssociativeCache(tiny_geometry), count_miss_traffic=True
        )
        controller.process(R(0))  # miss: fill = RMW (2) + request read (1)
        assert controller.array_accesses == 3

    def test_enabled_charges_dirty_evictions(self, tiny_geometry):
        controller = RMWController(
            SetAssociativeCache(tiny_geometry), count_miss_traffic=True
        )
        stride = tiny_geometry.num_sets * tiny_geometry.block_bytes
        controller.process(W(0, 5))
        before = controller.events.row_reads
        # Two more fills to the same set evict the dirty block.
        controller.process(R(stride))
        controller.process(R(2 * stride))
        # The second fill evicted the dirty block: one extra row read.
        assert controller.events.row_reads > before + 2
