"""Unit tests for the coalescing write-buffer comparator."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.write_buffer import WriteBufferController
from repro.core.write_grouping import WriteGroupingController
from repro.trace.record import AccessType, MemoryAccess

from tests.conftest import make_random_trace, oracle_read_values

SET0 = 0x00
SET0_W1 = 0x08
SET1 = 0x20
SET2 = 0x40
SET3 = 0x60
SET4 = 0x80


def R(address, icount=0):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


def W(address, value, icount=0):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


@pytest.fixture
def wb(tiny_geometry):
    return WriteBufferController(SetAssociativeCache(tiny_geometry), entries=2)


class TestCoalescing:
    def test_first_write_allocates_without_array_access(self, wb):
        outcome = wb.process(W(SET0, 1))
        assert outcome.array_accesses == 0
        assert not outcome.grouped

    def test_same_block_coalesces(self, wb):
        wb.process(W(SET0, 1))
        outcome = wb.process(W(SET0_W1, 2))
        assert outcome.grouped
        assert outcome.array_accesses == 0

    def test_full_buffer_drains_lru_as_rmw(self, wb):
        wb.process(W(SET0, 1))
        wb.process(W(SET1, 2))
        outcome = wb.process(W(SET2, 3))  # evicts the SET0 entry
        assert outcome.forced_writeback
        assert outcome.array_reads == 1   # drain = RMW read phase...
        assert outcome.array_writes == 1  # ...plus row write
        assert wb.counts.rmw_operations == 1

    def test_drain_has_no_silent_elision(self, wb):
        """Silent stores cost like any other: no pre-image to compare."""
        wb.process(W(SET0, 0))  # writes the value already there (zero)
        wb.process(W(SET1, 0))
        outcome = wb.process(W(SET2, 1))
        assert outcome.forced_writeback  # the drain still happened

    def test_final_drain(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry)
        wb = WriteBufferController(cache, entries=2)
        wb.process(W(SET0, 9))
        wb.finalize()
        assert wb.counts.final_writebacks == 1
        cache.flush_all_dirty()
        assert cache.memory.read_word(SET0) == 9


class TestForwarding:
    def test_buffered_word_forwarded(self, wb):
        wb.process(W(SET0, 42))
        outcome = wb.process(R(SET0))
        assert outcome.bypassed
        assert outcome.value == 42
        assert outcome.array_accesses == 0

    def test_unbuffered_word_of_buffered_block_reads_array(self, wb):
        wb.process(W(SET0, 42))
        outcome = wb.process(R(SET0_W1))  # word 1 never written
        assert not outcome.bypassed
        assert outcome.value == 0
        assert outcome.array_reads == 1


class TestCorrectness:
    def test_oracle_on_random_traces(self, tiny_geometry):
        for seed in range(4):
            trace = make_random_trace(500, seed=seed, word_span=120)
            controller = WriteBufferController(
                SetAssociativeCache(tiny_geometry), entries=4
            )
            outcomes = controller.run(trace)
            expected = oracle_read_values(trace)
            for access, outcome, expect in zip(trace, outcomes, expected):
                if access.is_read:
                    assert outcome.value == expect

    def test_fill_flush_keeps_values_right(self, wb, tiny_geometry):
        stride = tiny_geometry.num_sets * tiny_geometry.block_bytes
        wb.process(W(SET0, 7))
        wb.process(R(SET0 + stride))
        wb.process(R(SET0 + 2 * stride))  # fills evict the written block
        assert wb.counts.fill_flush_writebacks == 1
        assert wb.process(R(SET0)).value == 7


class TestVsWriteGrouping:
    def test_wg_beats_equal_storage_write_buffer(self, tiny_geometry):
        """The headline comparison: at equal storage (2-way tiny cache:
        Set-Buffer = 2 blocks = 2 write-buffer entries), WG's
        single-access write-backs and silent elision win on traces with
        silent stores."""
        trace = make_random_trace(
            800, seed=5, word_span=96, write_share=0.45, silent_share=0.45
        )
        wg = WriteGroupingController(SetAssociativeCache(tiny_geometry))
        wb = WriteBufferController(SetAssociativeCache(tiny_geometry), entries=2)
        wg.run(trace)
        wb.run(trace)
        assert wg.array_accesses < wb.array_accesses

    def test_entries_validated(self, tiny_geometry):
        with pytest.raises(ValueError):
            WriteBufferController(SetAssociativeCache(tiny_geometry), entries=0)
