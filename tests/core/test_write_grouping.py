"""Unit tests for the Write Grouping controller (Algorithm 1)."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.write_grouping import WriteGroupingController
from repro.trace.record import AccessType, MemoryAccess


def R(address, icount=0):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


def W(address, value, icount=0):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


@pytest.fixture
def wg(tiny_geometry):
    return WriteGroupingController(SetAssociativeCache(tiny_geometry))


# Addresses: tiny geometry has 32 B blocks, 8 sets.
SET0 = 0x00
SET0_W1 = 0x08  # word 1 of the same block
SET1 = 0x20
SET2 = 0x40


class TestWritePath:
    def test_first_write_fills_buffer(self, wg):
        outcome = wg.process(W(SET0, 1))
        assert outcome.array_reads == 1  # fill = read row
        assert outcome.array_writes == 0  # no immediate write-back
        assert not outcome.grouped
        assert wg.counts.set_buffer_fills == 1

    def test_second_write_same_set_groups(self, wg):
        wg.process(W(SET0, 1))
        outcome = wg.process(W(SET0_W1, 2))
        assert outcome.grouped
        assert outcome.array_accesses == 0
        assert wg.counts.grouped_writes == 1

    def test_write_to_other_set_evicts_buffer(self, wg):
        wg.process(W(SET0, 1))  # non-silent -> dirty
        outcome = wg.process(W(SET1, 2))
        assert outcome.forced_writeback
        assert outcome.array_writes == 1  # eviction write-back
        assert outcome.array_reads == 1  # refill with set 1
        assert wg.counts.eviction_writebacks == 1

    def test_clean_buffer_eviction_is_free(self, wg):
        wg.process(W(SET0, 0))  # silent (memory starts zero)
        outcome = wg.process(W(SET1, 2))
        assert not outcome.forced_writeback
        assert outcome.array_writes == 0
        assert outcome.array_reads == 1

    def test_grouping_survives_reads_to_other_sets(self, wg):
        """Reads elsewhere don't evict the buffer — grouping is not
        limited to strictly consecutive writes."""
        wg.process(W(SET0, 1))
        wg.process(R(SET1))
        wg.process(R(SET2))
        outcome = wg.process(W(SET0_W1, 2))
        assert outcome.grouped


class TestSilentWrites:
    def test_silent_write_detected(self, wg):
        wg.process(W(SET0, 5))
        outcome = wg.process(W(SET0, 5))  # same value again
        assert outcome.silent
        assert wg.counts.silent_writes_detected == 1

    def test_all_silent_group_never_writes_back(self, wg):
        wg.process(W(SET0, 0))  # zero into zeroed memory: silent
        wg.process(W(SET0_W1, 0))
        outcome = wg.process(W(SET1, 1))  # evict buffer
        assert not outcome.forced_writeback
        assert wg.events.row_writes == 0

    def test_detection_can_be_disabled(self, tiny_geometry):
        wg = WriteGroupingController(
            SetAssociativeCache(tiny_geometry), detect_silent_writes=False
        )
        wg.process(W(SET0, 0))  # would be silent
        outcome = wg.process(W(SET1, 1))
        assert outcome.forced_writeback  # dirty despite silence
        assert wg.counts.silent_writes_detected == 0


class TestReadPath:
    def test_read_miss_in_tag_buffer_is_plain_read(self, wg):
        wg.process(W(SET0, 1))
        outcome = wg.process(R(SET1))
        assert outcome.array_reads == 1
        assert not outcome.forced_writeback

    def test_read_hit_forces_premature_writeback(self, wg):
        wg.process(W(SET0, 1))  # dirty buffer
        outcome = wg.process(R(SET0_W1))
        assert outcome.forced_writeback
        assert outcome.array_writes == 1
        assert outcome.array_reads == 1
        assert wg.counts.premature_writebacks == 1

    def test_read_hit_on_clean_buffer_no_writeback(self, wg):
        wg.process(W(SET0, 1))
        wg.process(R(SET0))  # premature write-back, buffer now clean
        outcome = wg.process(R(SET0_W1))
        assert not outcome.forced_writeback
        assert outcome.array_accesses == 1

    def test_read_returns_newest_value(self, wg):
        wg.process(W(SET0, 42))
        assert wg.process(R(SET0)).value == 42

    def test_buffer_survives_premature_writeback(self, wg):
        """After a premature write-back the set stays buffered, so the
        next write to it still groups (Algorithm 1 keeps the data)."""
        wg.process(W(SET0, 1))
        wg.process(R(SET0))
        outcome = wg.process(W(SET0_W1, 2))
        assert outcome.grouped


class TestFillInteraction:
    def test_fill_to_buffered_set_flushes_first(self, wg, tiny_geometry):
        """A cache miss mapping to the buffered set must drain and drop
        the buffer before the fill replaces one of its blocks."""
        stride = tiny_geometry.num_sets * tiny_geometry.block_bytes
        wg.process(W(SET0, 7))  # buffer holds set 0, dirty
        # Two reads that alias to set 0 with different tags evict.
        wg.process(R(SET0 + stride))
        wg.process(R(SET0 + 2 * stride))
        assert wg.counts.fill_flush_writebacks == 1
        # And memory/cache still return the right value.
        assert wg.process(R(SET0)).value == 7

    def test_final_drain(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry)
        wg = WriteGroupingController(cache)
        wg.process(W(SET0, 9))
        wg.finalize()
        assert wg.counts.final_writebacks == 1
        cache.flush_all_dirty()
        assert cache.memory.read_word(SET0) == 9


class TestAccessCounting:
    def test_grouped_sequence_beats_rmw(self, wg):
        """Four writes to one set: 1 fill + 1 final write-back = 2
        accesses where RMW would spend 8."""
        for i, word in enumerate((0x00, 0x08, 0x10, 0x18)):
            wg.process(W(word, i + 1))
        wg.finalize()
        assert wg.array_accesses == 2

    def test_multi_entry_buffer_groups_across_two_sets(self, tiny_geometry):
        wg = WriteGroupingController(SetAssociativeCache(tiny_geometry), entries=2)
        wg.process(W(SET0, 1))
        wg.process(W(SET1, 2))
        # With two entries, returning to set 0 still groups.
        outcome = wg.process(W(SET0_W1, 3))
        assert outcome.grouped

    def test_single_entry_thrashes_across_two_sets(self, wg):
        wg.process(W(SET0, 1))
        wg.process(W(SET1, 2))
        outcome = wg.process(W(SET0_W1, 3))
        assert not outcome.grouped

    def test_entries_must_be_positive(self, tiny_geometry):
        with pytest.raises(ValueError):
            WriteGroupingController(SetAssociativeCache(tiny_geometry), entries=0)
