"""Unit tests for the WG+RB controller (read bypassing)."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.outcomes import ServedFrom
from repro.core.wg_rb import WGRBController
from repro.core.write_grouping import WriteGroupingController
from repro.trace.record import AccessType, MemoryAccess


def R(address, icount=0):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


def W(address, value, icount=0):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


SET0 = 0x00
SET0_W1 = 0x08
SET1 = 0x20


@pytest.fixture
def wgrb(tiny_geometry):
    return WGRBController(SetAssociativeCache(tiny_geometry))


class TestBypass:
    def test_read_hit_bypasses(self, wgrb):
        wgrb.process(W(SET0, 1))
        outcome = wgrb.process(R(SET0_W1))
        assert outcome.bypassed
        assert outcome.served_from is ServedFrom.SET_BUFFER
        assert outcome.array_accesses == 0
        assert wgrb.counts.bypassed_reads == 1

    def test_bypass_avoids_premature_writeback(self, wgrb):
        """Unlike WG, a read hit needs no write-back — the RB mux routes
        the buffer straight to the output (Figure 7)."""
        wgrb.process(W(SET0, 1))
        outcome = wgrb.process(R(SET0))
        assert not outcome.forced_writeback
        assert wgrb.counts.premature_writebacks == 0

    def test_bypassed_value_is_newest(self, wgrb):
        wgrb.process(W(SET0, 1))
        wgrb.process(W(SET0, 2))
        assert wgrb.process(R(SET0)).value == 2

    def test_bypassed_value_for_unmodified_word(self, wgrb):
        """Words the buffer holds but the program never wrote come from
        the fill (the row read) and must match the cache."""
        wgrb.process(W(SET0, 5))
        outcome = wgrb.process(R(SET0_W1))
        assert outcome.bypassed
        assert outcome.value == 0

    def test_read_miss_goes_to_array(self, wgrb):
        wgrb.process(W(SET0, 1))
        outcome = wgrb.process(R(SET1))
        assert not outcome.bypassed
        assert outcome.array_reads == 1

    def test_grouping_continues_after_bypass(self, wgrb):
        wgrb.process(W(SET0, 1))
        wgrb.process(R(SET0))  # bypassed, dirty preserved
        outcome = wgrb.process(W(SET0_W1, 2))
        assert outcome.grouped


class TestDominance:
    def test_never_more_accesses_than_wg(self, tiny_geometry):
        """On any trace WG+RB costs at most as many array accesses as WG."""
        from tests.conftest import make_random_trace

        for seed in range(5):
            trace = make_random_trace(300, seed=seed, word_span=96)
            wg = WriteGroupingController(SetAssociativeCache(tiny_geometry))
            wgrb = WGRBController(SetAssociativeCache(tiny_geometry))
            wg.run(trace)
            wgrb.run(trace)
            assert wgrb.array_accesses <= wg.array_accesses

    def test_inherits_wg_write_path(self, wgrb):
        wgrb.process(W(SET0, 1))
        outcome = wgrb.process(W(SET0_W1, 2))
        assert outcome.grouped
        assert wgrb.counts.grouped_writes == 1
