"""Unit tests for the controller registry."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.conventional import ConventionalController
from repro.core.registry import CONTROLLER_NAMES, make_controller
from repro.core.rmw import RMWController
from repro.core.wg_rb import WGRBController
from repro.core.write_grouping import WriteGroupingController


class TestRegistry:
    def test_names(self):
        assert set(CONTROLLER_NAMES) == {"conventional", "rmw", "wg", "wg_rb"}

    def test_builds_each(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry)
        assert isinstance(
            make_controller("conventional", cache), ConventionalController
        )
        assert isinstance(make_controller("rmw", cache), RMWController)
        assert isinstance(make_controller("wg", cache), WriteGroupingController)
        assert isinstance(make_controller("wg_rb", cache), WGRBController)

    def test_case_insensitive(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry)
        assert isinstance(make_controller("RMW", cache), RMWController)

    def test_unknown_rejected(self, tiny_geometry):
        with pytest.raises(ValueError, match="unknown controller"):
            make_controller("wg++", SetAssociativeCache(tiny_geometry))

    def test_kwargs_forwarded(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry)
        controller = make_controller(
            "wg", cache, detect_silent_writes=False, entries=2
        )
        assert controller.detect_silent_writes is False
        assert len(controller.buffer_entries) == 2

    def test_names_match_classes(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry)
        for name in CONTROLLER_NAMES:
            assert make_controller(name, cache).name == name
