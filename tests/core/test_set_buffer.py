"""Unit tests for the Set-Buffer."""

import pytest

from repro.core.set_buffer import SetBuffer


@pytest.fixture
def buffer():
    sb = SetBuffer()
    sb.fill(3, [[1, 2], [3, 4]])
    return sb


class TestLifecycle:
    def test_starts_invalid(self):
        sb = SetBuffer()
        assert not sb.valid
        assert not sb.holds(0)

    def test_fill(self, buffer):
        assert buffer.valid
        assert buffer.holds(3)
        assert not buffer.holds(4)
        assert buffer.ways == 2
        assert buffer.words_per_way == 2

    def test_fill_copies(self):
        data = [[1, 2]]
        sb = SetBuffer()
        sb.fill(0, data)
        data[0][0] = 99
        assert sb.read(0, 0) == 1

    def test_fill_rejects_ragged(self):
        with pytest.raises(ValueError, match="rectangular"):
            SetBuffer().fill(0, [[1, 2], [3]])

    def test_fill_rejects_empty(self):
        with pytest.raises(ValueError):
            SetBuffer().fill(0, [])

    def test_invalidate(self, buffer):
        buffer.invalidate()
        assert not buffer.valid
        with pytest.raises(ValueError, match="empty"):
            buffer.read(0, 0)


class TestSilentDetection:
    def test_silent_write_detected(self, buffer):
        assert buffer.write(0, 0, 1) is True  # same value
        assert not buffer.has_modifications

    def test_non_silent_write(self, buffer):
        assert buffer.write(0, 0, 42) is False
        assert buffer.has_modifications
        assert buffer.read(0, 0) == 42

    def test_write_then_silent_rewrite(self, buffer):
        buffer.write(1, 1, 9)
        assert buffer.write(1, 1, 9) is True

    def test_revert_is_not_silent(self, buffer):
        """Writing back the original value after a change is still a
        change relative to the buffer's current content."""
        buffer.write(0, 0, 42)
        assert buffer.write(0, 0, 1) is False


class TestWriteBackPayload:
    def test_take_modified(self, buffer):
        buffer.write(0, 1, 7)
        buffer.write(1, 0, 8)
        payload = buffer.take_modified()
        assert payload == {(0, 1): 7, (1, 0): 8}
        assert not buffer.has_modifications

    def test_take_modified_clears(self, buffer):
        buffer.write(0, 0, 5)
        buffer.take_modified()
        assert buffer.take_modified() == {}

    def test_silent_writes_not_in_payload(self, buffer):
        buffer.write(0, 0, 1)  # silent
        assert buffer.take_modified() == {}

    def test_last_value_wins(self, buffer):
        buffer.write(0, 0, 5)
        buffer.write(0, 0, 6)
        assert buffer.take_modified() == {(0, 0): 6}


class TestRowSnapshot:
    def test_way_major_order(self, buffer):
        assert buffer.row_snapshot() == [1, 2, 3, 4]

    def test_reflects_writes(self, buffer):
        buffer.write(1, 0, 99)
        assert buffer.row_snapshot() == [1, 2, 99, 4]
