"""The paper's Figure 8 worked example, end to end.

Request stream (program order):
    R_a, W_b, W_b, R_b, R_b, W_b, W_a(silent), R_b, R_a

The paper walks WG through this stream; the expected array access
counts fall straight out of Algorithm 1:

* RMW: 5 reads + 2x4 writes = 13 accesses
* WG:   9 accesses (grouping the W_b pair, eliding the silent W_a's
        write-back, one premature and one eviction write-back)
* WG+RB: 5 accesses (the three Tag-Buffer-hit reads are bypassed)
* conventional: 9 (one per request)
"""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.registry import make_controller
from repro.trace.record import AccessType, MemoryAccess

SET_A = 0x00  # set 0
SET_B = 0x20  # set 1


def _stream():
    def R(i, address):
        return MemoryAccess(icount=i, kind=AccessType.READ, address=address)

    def W(i, address, value):
        return MemoryAccess(
            icount=i, kind=AccessType.WRITE, address=address, value=value
        )

    return [
        R(0, SET_A),
        W(1, SET_B, 11),      # first W_b: fills the Set-Buffer
        W(2, SET_B, 22),      # second W_b: grouped, non-silent -> Dirty
        R(3, SET_B),          # forces premature write-back (WG)
        R(4, SET_B),
        W(5, SET_B, 33),      # third W_b: grouped again
        W(6, SET_A, 0),       # W_a: silent (memory starts zeroed)
        R(7, SET_B),
        R(8, SET_A),          # TB hit; Dirty clear -> no write-back
    ]


@pytest.fixture
def stream(tiny_geometry):
    # Sanity: a and b really are different sets of the tiny cache.
    from repro.cache.address import AddressMapper

    mapper = AddressMapper(tiny_geometry)
    assert mapper.set_index(SET_A) != mapper.set_index(SET_B)
    return _stream()


def _run(technique, geometry, stream):
    controller = make_controller(technique, SetAssociativeCache(geometry))
    outcomes = controller.run(stream)
    return controller, outcomes


class TestAccessCounts:
    def test_conventional(self, tiny_geometry, stream):
        controller, _ = _run("conventional", tiny_geometry, stream)
        assert controller.array_accesses == 9

    def test_rmw(self, tiny_geometry, stream):
        controller, _ = _run("rmw", tiny_geometry, stream)
        assert controller.array_accesses == 13

    def test_wg(self, tiny_geometry, stream):
        controller, _ = _run("wg", tiny_geometry, stream)
        assert controller.array_accesses == 9
        assert controller.counts.grouped_writes == 2
        assert controller.counts.silent_writes_detected == 1
        assert controller.counts.premature_writebacks == 1
        assert controller.counts.eviction_writebacks == 1
        assert controller.counts.final_writebacks == 0  # W_a was silent

    def test_wg_rb(self, tiny_geometry, stream):
        controller, _ = _run("wg_rb", tiny_geometry, stream)
        assert controller.array_accesses == 5
        assert controller.counts.bypassed_reads == 3

    def test_reduction_ordering(self, tiny_geometry, stream):
        accesses = {
            technique: _run(technique, tiny_geometry, stream)[0].array_accesses
            for technique in ("rmw", "wg", "wg_rb")
        }
        assert accesses["wg_rb"] < accesses["wg"] < accesses["rmw"]


class TestValueCorrectness:
    @pytest.mark.parametrize("technique", ["conventional", "rmw", "wg", "wg_rb"])
    def test_reads_see_program_order_values(self, tiny_geometry, stream, technique):
        _, outcomes = _run(technique, tiny_geometry, stream)
        read_values = [
            outcome.value
            for outcome, access in zip(outcomes, stream)
            if access.is_read
        ]
        # R_a, R_b, R_b, R_b, R_a: set b word 0 was last written 33.
        assert read_values == [0, 22, 22, 33, 0]

    def test_wg_detects_the_silent_wa(self, tiny_geometry, stream):
        _, outcomes = _run("wg", tiny_geometry, stream)
        silent_flags = [
            outcome.silent
            for outcome, access in zip(outcomes, stream)
            if access.is_write
        ]
        assert silent_flags == [False, False, False, True]
