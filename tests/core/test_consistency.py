"""Memory-consistency oracle: every controller is functionally
equivalent to a flat sequential memory.

This is the library's central correctness property.  WG and WG+RB defer
and elide array traffic, but the *architectural* contract is untouched:
every read returns the most recently written value and the final memory
state matches sequential semantics.  Hypothesis drives randomized
traces over a tiny cache so fills, evictions, buffer flushes, silent
writes and premature write-backs all interleave.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.core.registry import (
    ALL_CONTROLLER_NAMES,
    CONTROLLER_NAMES,
    make_controller,
)
from repro.trace.record import AccessType, MemoryAccess

from tests.conftest import make_random_trace, oracle_final_memory, oracle_read_values

TINY = CacheGeometry(512, 2, 32)

# (is_write, word, value) triples; small word span to force aliasing.
_operations = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=5),  # tiny value range => silent hits
    ),
    max_size=150,
)


def _to_trace(operations):
    trace = []
    for index, (is_write, word, value) in enumerate(operations):
        if is_write:
            trace.append(
                MemoryAccess(
                    icount=index,
                    kind=AccessType.WRITE,
                    address=word * 8,
                    value=value,
                )
            )
        else:
            trace.append(
                MemoryAccess(icount=index, kind=AccessType.READ, address=word * 8)
            )
    return trace


class TestReadValueOracle:
    @pytest.mark.parametrize("technique", ALL_CONTROLLER_NAMES)
    @settings(max_examples=25, deadline=None)
    @given(operations=_operations)
    def test_reads_match_sequential_memory(self, technique, operations):
        trace = _to_trace(operations)
        controller = make_controller(technique, SetAssociativeCache(TINY))
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect, access

    @pytest.mark.parametrize("technique", ALL_CONTROLLER_NAMES)
    @settings(max_examples=25, deadline=None)
    @given(operations=_operations)
    def test_final_memory_matches_oracle(self, technique, operations):
        trace = _to_trace(operations)
        cache = SetAssociativeCache(TINY)
        controller = make_controller(technique, cache)
        controller.run(trace)
        cache.flush_all_dirty()
        snapshot = {
            word: value
            for word, value in cache.memory.snapshot().items()
            if value != 0
        }
        assert snapshot == oracle_final_memory(trace)


class TestCrossTechniqueEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_techniques_agree_on_random_traces(self, seed):
        trace = make_random_trace(
            500, seed=seed, word_span=160, write_share=0.45, silent_share=0.35
        )
        reference = None
        for technique in ALL_CONTROLLER_NAMES:
            controller = make_controller(technique, SetAssociativeCache(TINY))
            outcomes = controller.run(trace)
            values = [
                outcome.value
                for outcome, access in zip(outcomes, trace)
                if access.is_read
            ]
            if reference is None:
                reference = values
            else:
                assert values == reference, technique

    @pytest.mark.parametrize("entries", [1, 2, 4])
    def test_multi_entry_wg_remains_correct(self, entries):
        trace = make_random_trace(400, seed=99, word_span=120)
        cache = SetAssociativeCache(TINY)
        controller = make_controller("wg", cache, entries=entries)
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect

    def test_wg_rb_multi_entry_correct(self):
        trace = make_random_trace(400, seed=7, word_span=120)
        controller = make_controller(
            "wg_rb", SetAssociativeCache(TINY), entries=3
        )
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect


class TestAccessCountInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_orderings_hold_on_random_traces(self, seed):
        """conventional <= wg_rb <= wg <= rmw on array accesses."""
        trace = make_random_trace(600, seed=seed, word_span=128)
        accesses = {}
        for technique in CONTROLLER_NAMES:
            controller = make_controller(technique, SetAssociativeCache(TINY))
            controller.run(trace)
            accesses[technique] = controller.array_accesses
        assert accesses["wg_rb"] <= accesses["wg"]
        assert accesses["wg"] <= accesses["rmw"]
        assert accesses["conventional"] <= accesses["rmw"]

    def test_rmw_equals_reads_plus_twice_writes(self):
        trace = make_random_trace(500, seed=1)
        controller = make_controller("rmw", SetAssociativeCache(TINY))
        controller.run(trace)
        reads = sum(1 for a in trace if a.is_read)
        writes = len(trace) - reads
        assert controller.array_accesses == reads + 2 * writes
