"""Unit tests for AccessOutcome and OperationCounts."""

import pytest

from repro.core.outcomes import AccessOutcome, OperationCounts, ServedFrom


class TestAccessOutcome:
    def test_array_accesses_sum(self):
        outcome = AccessOutcome(
            value=1,
            cache_hit=True,
            served_from=ServedFrom.ARRAY,
            array_reads=2,
            array_writes=1,
        )
        assert outcome.array_accesses == 3

    def test_defaults(self):
        outcome = AccessOutcome(
            value=0, cache_hit=False, served_from=ServedFrom.SET_BUFFER
        )
        assert outcome.array_accesses == 0
        assert not outcome.grouped
        assert not outcome.silent
        assert not outcome.bypassed
        assert not outcome.forced_writeback

    def test_frozen(self):
        outcome = AccessOutcome(
            value=0, cache_hit=False, served_from=ServedFrom.ARRAY
        )
        with pytest.raises(AttributeError):
            outcome.value = 5


class TestOperationCounts:
    def test_requests(self):
        counts = OperationCounts(read_requests=3, write_requests=2)
        assert counts.requests == 5

    def test_writebacks_sum_all_reasons(self):
        counts = OperationCounts(
            premature_writebacks=1,
            eviction_writebacks=2,
            fill_flush_writebacks=3,
            final_writebacks=4,
        )
        assert counts.writebacks == 10

    def test_fractions_guard_division_by_zero(self):
        counts = OperationCounts()
        assert counts.grouped_write_fraction == 0.0
        assert counts.silent_write_fraction == 0.0
        assert counts.bypassed_read_fraction == 0.0
        assert counts.mean_dirty_residency == 0.0

    def test_fractions(self):
        counts = OperationCounts(
            read_requests=10,
            write_requests=8,
            grouped_writes=4,
            silent_writes_detected=2,
            bypassed_reads=5,
        )
        assert counts.grouped_write_fraction == pytest.approx(0.5)
        assert counts.silent_write_fraction == pytest.approx(0.25)
        assert counts.bypassed_read_fraction == pytest.approx(0.5)

    def test_mean_dirty_residency(self):
        counts = OperationCounts(dirty_residency_total=60, dirty_windows=3)
        assert counts.mean_dirty_residency == pytest.approx(20.0)


class TestServedFrom:
    def test_values(self):
        assert ServedFrom.ARRAY.value == "array"
        assert ServedFrom.SET_BUFFER.value == "set_buffer"
