"""Unit tests for the Kim et al. pulse-assist comparator."""


from repro.cache.cache import SetAssociativeCache
from repro.core.pulse_assist import (
    WRITE_CYCLE_FACTOR,
    PulseAssistController,
)
from repro.core.registry import ALL_CONTROLLER_NAMES, make_controller
from repro.trace.record import AccessType, MemoryAccess

from tests.conftest import make_random_trace, oracle_read_values


def W(address, value, icount=0):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


def R(address, icount=0):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


class TestAccessCounts:
    def test_registered(self):
        assert "pulse_assist" in ALL_CONTROLLER_NAMES

    def test_write_costs_one_access(self, tiny_geometry):
        controller = PulseAssistController(SetAssociativeCache(tiny_geometry))
        outcome = controller.process(W(0, 1))
        assert outcome.array_accesses == 1
        assert controller.assisted_writes == 1

    def test_matches_conventional_access_counts(self, tiny_geometry):
        trace = make_random_trace(300, seed=1)
        assisted = make_controller(
            "pulse_assist", SetAssociativeCache(tiny_geometry)
        )
        conventional = make_controller(
            "conventional", SetAssociativeCache(tiny_geometry)
        )
        assisted.run(trace)
        conventional.run(trace)
        assert assisted.array_accesses == conventional.array_accesses

    def test_energy_premium_recorded(self, tiny_geometry):
        """The stretched pulse drives more per write than conventional."""
        assisted = PulseAssistController(SetAssociativeCache(tiny_geometry))
        conventional = make_controller(
            "conventional", SetAssociativeCache(tiny_geometry)
        )
        assisted.process(W(0, 1))
        conventional.process(W(0, 1))
        assert assisted.events.words_driven > conventional.events.words_driven

    def test_value_correctness(self, tiny_geometry):
        trace = make_random_trace(300, seed=2)
        controller = PulseAssistController(SetAssociativeCache(tiny_geometry))
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect


class TestTimingPremium:
    def test_stretched_write_occupies_port_longer(self, tiny_geometry):
        from repro.perf.timing import TimingSimulator

        trace = [W(0x00, 1, 0), W(0x20, 2, 1), W(0x40, 3, 2)]
        assisted = TimingSimulator("pulse_assist", tiny_geometry).run(trace)
        conventional = TimingSimulator("conventional", tiny_geometry).run(trace)
        assert assisted.write_port_busy == (
            WRITE_CYCLE_FACTOR * conventional.write_port_busy
        )

    def test_reads_unaffected(self, tiny_geometry):
        from repro.perf.timing import TimingSimulator

        trace = [R(0x00, 0), R(0x20, 5)]
        assisted = TimingSimulator("pulse_assist", tiny_geometry).run(trace)
        conventional = TimingSimulator("conventional", tiny_geometry).run(trace)
        assert assisted.mean_read_latency == conventional.mean_read_latency
