"""Unit tests for the related-work comparators (Chang / Park)."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.core.registry import ALL_CONTROLLER_NAMES, make_controller
from repro.core.related_work import LocalRMWController, WordWriteController
from repro.trace.record import AccessType, MemoryAccess

from tests.conftest import make_random_trace, oracle_read_values


def R(address, icount=0):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


def W(address, value, icount=0):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


class TestRegistryExtension:
    def test_all_names_include_comparators(self):
        assert "word_write" in ALL_CONTROLLER_NAMES
        assert "rmw_local" in ALL_CONTROLLER_NAMES
        assert "write_buffer" in ALL_CONTROLLER_NAMES
        assert "pulse_assist" in ALL_CONTROLLER_NAMES
        assert len(ALL_CONTROLLER_NAMES) == 8

    def test_buildable(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry)
        assert isinstance(
            make_controller("word_write", cache), WordWriteController
        )
        assert isinstance(
            make_controller("rmw_local", SetAssociativeCache(tiny_geometry)),
            LocalRMWController,
        )


class TestWordWrite:
    def test_write_costs_one_access(self, tiny_geometry):
        """Chang's whole point: no RMW, writes are single activations."""
        controller = WordWriteController(SetAssociativeCache(tiny_geometry))
        outcome = controller.process(W(0, 5))
        assert outcome.array_writes == 1
        assert outcome.array_reads == 0
        assert controller.events.words_driven == 1

    def test_matches_conventional_access_counts(self, tiny_geometry):
        trace = make_random_trace(300, seed=1)
        chang = make_controller(
            "word_write", SetAssociativeCache(tiny_geometry)
        )
        conventional = make_controller(
            "conventional", SetAssociativeCache(tiny_geometry)
        )
        chang.run(trace)
        conventional.run(trace)
        assert chang.array_accesses == conventional.array_accesses

    def test_declares_multi_bit_ecc_requirement(self):
        assert WordWriteController.ecc_scheme == "multi_bit"

    def test_value_correctness(self, tiny_geometry):
        trace = make_random_trace(300, seed=2)
        controller = WordWriteController(SetAssociativeCache(tiny_geometry))
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect


class TestLocalRMW:
    def test_same_access_counts_as_rmw(self, tiny_geometry):
        trace = make_random_trace(300, seed=3)
        local = make_controller(
            "rmw_local", SetAssociativeCache(tiny_geometry), subarrays=4
        )
        plain = make_controller("rmw", SetAssociativeCache(tiny_geometry))
        local.run(trace)
        plain.run(trace)
        assert local.array_accesses == plain.array_accesses

    def test_subarray_mapping(self, tiny_geometry):
        controller = LocalRMWController(
            SetAssociativeCache(tiny_geometry), subarrays=4
        )
        assert controller.subarray_of(0) == 0
        assert controller.subarray_of(5) == 1
        assert controller.subarray_of(7) == 3

    def test_subarrays_validated(self, tiny_geometry):
        with pytest.raises(ValueError):
            LocalRMWController(SetAssociativeCache(tiny_geometry), subarrays=3)
        with pytest.raises(ValueError):
            # tiny geometry has 8 sets.
            LocalRMWController(SetAssociativeCache(tiny_geometry), subarrays=16)

    def test_value_correctness(self, tiny_geometry):
        trace = make_random_trace(300, seed=4)
        controller = LocalRMWController(
            SetAssociativeCache(tiny_geometry), subarrays=2
        )
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect


class TestLocalRMWTiming:
    def test_banking_reduces_conflicts(self, small_geometry):
        """Park's benefit: requests to other sub-arrays don't stall on
        a busy RMW — conflicts drop vs monolithic RMW."""
        from repro.perf.timing import TimingSimulator

        trace = make_random_trace(
            800, seed=5, word_span=400, write_share=0.45, icount_gap=2
        )
        plain = TimingSimulator("rmw", small_geometry).run(trace)
        banked = TimingSimulator(
            "rmw_local", small_geometry, subarrays=8
        ).run(trace)
        assert banked.read_port_conflicts < plain.read_port_conflicts
        assert banked.mean_read_latency <= plain.mean_read_latency

    def test_wg_rb_still_beats_local_rmw_on_energy_counts(self, small_geometry):
        """Banking fixes concurrency, not the access count: WG+RB still
        does strictly fewer array accesses (the paper's criticism that
        the busy sub-array remains unavailable is a separate cost)."""
        from repro.sim.comparison import compare_techniques

        trace = make_random_trace(600, seed=6, word_span=300)
        comparison = compare_techniques(
            trace, small_geometry, techniques=("rmw_local", "wg_rb")
        )
        assert (
            comparison.result("wg_rb").array_accesses
            < comparison.result("rmw_local").array_accesses
        )
