"""Controller behaviour at geometry extremes.

Degenerate shapes shake out hidden assumptions: one-word blocks (no
same-block second word to group), a single-set cache (every access is
'same set'), direct-mapped, and fully-associative.
"""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.core.registry import ALL_CONTROLLER_NAMES, make_controller
from repro.trace.record import AccessType, MemoryAccess

from tests.conftest import make_random_trace, oracle_read_values

ONE_WORD_BLOCKS = CacheGeometry(256, 2, 8)       # 8 B blocks: 1 word each
SINGLE_SET = CacheGeometry(128, 4, 32)           # 1 set, 4 ways
DIRECT_MAPPED = CacheGeometry(256, 1, 32)        # 8 sets, 1 way
FULLY_ASSOC = CacheGeometry(256, 8, 32)          # 1 set, 8 ways

EDGE_GEOMETRIES = (ONE_WORD_BLOCKS, SINGLE_SET, DIRECT_MAPPED, FULLY_ASSOC)


def W(icount, address, value):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


def R(icount, address):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


class TestOracleAtExtremes:
    @pytest.mark.parametrize("technique", ALL_CONTROLLER_NAMES)
    @pytest.mark.parametrize(
        "geometry", EDGE_GEOMETRIES, ids=lambda g: g.describe()
    )
    def test_values_correct(self, technique, geometry):
        span = 4 * geometry.num_blocks * geometry.words_per_block
        trace = make_random_trace(400, seed=3, word_span=span)
        controller = make_controller(technique, SetAssociativeCache(geometry))
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect


class TestSingleSetCache:
    def test_every_access_same_set_tag_buffer_rarely_misses(self):
        """With one set, the Tag-Buffer covers the whole cache: every
        resident write after the first groups."""
        controller = make_controller("wg", SetAssociativeCache(SINGLE_SET))
        # Four distinct blocks fill the 4 ways; then writes group.
        for i in range(4):
            controller.process(W(i, i * 32, i + 1))
        outcome = controller.process(W(10, 0, 99))
        assert outcome.grouped

    def test_wg_reduction_near_maximum(self):
        """Once the set is resident, N writes cost WG exactly 1 fill
        read + 1 final write-back."""
        controller = make_controller("wg", SetAssociativeCache(SINGLE_SET))
        for block in range(4):  # warm all four blocks of the lone set
            controller.process(R(block, block * 32))
        accesses_before = controller.array_accesses
        for i in range(50):
            controller.process(W(10 + i, (i % 16) * 8, i))
        controller.finalize()
        assert controller.array_accesses - accesses_before == 2


class TestOneWordBlocks:
    def test_wg_still_groups_repeat_writes(self):
        """No spatial grouping possible — but temporal reuse of one
        word still hits the Tag-Buffer."""
        controller = make_controller(
            "wg", SetAssociativeCache(ONE_WORD_BLOCKS)
        )
        controller.process(W(0, 0x40, 1))
        outcome = controller.process(W(1, 0x40, 2))
        assert outcome.grouped

    def test_row_width_is_associativity_words(self):
        assert ONE_WORD_BLOCKS.words_per_set == 2


class TestDirectMapped:
    def test_tag_buffer_holds_one_tag(self):
        controller = make_controller(
            "wg", SetAssociativeCache(DIRECT_MAPPED)
        )
        controller.process(W(0, 0x00, 1))
        entry = controller.buffer_entries[-1]
        assert len(entry.tag_buffer.tags) == 1

    def test_conflict_alias_flushes_buffer(self):
        """Two blocks aliasing to set 0 in a direct-mapped cache: the
        second's fill must flush the buffered first."""
        stride = DIRECT_MAPPED.num_sets * DIRECT_MAPPED.block_bytes
        controller = make_controller(
            "wg", SetAssociativeCache(DIRECT_MAPPED)
        )
        controller.process(W(0, 0x00, 7))
        controller.process(W(1, stride, 8))  # aliases, evicts, refills
        assert controller.counts.fill_flush_writebacks == 1
        assert controller.process(R(2, 0x00)).value == 7


class TestMoreBufferEntriesThanSets:
    def test_wg_with_excess_entries(self):
        """More buffer entries than cache sets is wasteful but legal."""
        controller = make_controller(
            "wg", SetAssociativeCache(SINGLE_SET), entries=4
        )
        trace = make_random_trace(200, seed=9, word_span=48)
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect


class TestStreamingFeed:
    def test_simulator_accepts_generator_input(self):
        """feed() must not require a materialised list."""
        from repro.sim.simulator import Simulator

        def stream():
            for i in range(100):
                yield R(i, (i % 16) * 8)

        simulator = Simulator("rmw", DIRECT_MAPPED)
        simulator.feed(stream())
        result = simulator.finish()
        assert result.requests == 100
