"""Unit tests for the Tag-Buffer."""

import pytest

from repro.core.tag_buffer import TagBuffer


@pytest.fixture
def loaded():
    tb = TagBuffer()
    tb.load(5, [0x10, 0x20, None, 0x30])
    return tb


class TestLifecycle:
    def test_starts_invalid(self):
        tb = TagBuffer()
        assert not tb.valid
        assert not tb.dirty
        assert not tb.probe(0, 0)

    def test_load_clears_dirty(self, loaded):
        loaded.set_dirty()
        loaded.load(6, [1])
        assert not loaded.dirty
        assert loaded.set_index == 6

    def test_invalidate(self, loaded):
        loaded.invalidate()
        assert not loaded.valid
        assert loaded.tags == ()


class TestProbe:
    def test_hit(self, loaded):
        assert loaded.probe(5, 0x20)

    def test_wrong_set_misses(self, loaded):
        assert not loaded.probe(4, 0x20)

    def test_wrong_tag_misses(self, loaded):
        assert not loaded.probe(5, 0x99)

    def test_tags_expose_invalid_ways_as_none(self, loaded):
        assert loaded.tags == (0x10, 0x20, None, 0x30)

    def test_matches_set(self, loaded):
        assert loaded.matches_set(5)
        assert not loaded.matches_set(0)


class TestWayOf:
    def test_finds_way(self, loaded):
        assert loaded.way_of(0x10) == 0
        assert loaded.way_of(0x30) == 3

    def test_missing_tag(self, loaded):
        with pytest.raises(ValueError, match="not in Tag-Buffer"):
            loaded.way_of(0x99)

    def test_empty_buffer(self):
        with pytest.raises(ValueError, match="empty"):
            TagBuffer().way_of(1)


class TestDirtyBit:
    def test_set_and_clear(self, loaded):
        loaded.set_dirty()
        assert loaded.dirty
        loaded.clear_dirty()
        assert not loaded.dirty

    def test_cannot_dirty_empty(self):
        with pytest.raises(ValueError):
            TagBuffer().set_dirty()


class TestStorageBits:
    def test_baseline_budget(self, loaded):
        # 9 index bits, 34-bit tags, 4 ways: 9 + 4*(34+1) + 2 = 151.
        assert loaded.storage_bits(index_bits=9, tag_bits=34) == 151
