"""Unit tests for Vmin derivation and DVFS levels."""


from repro.power.params import TECH_45NM
from repro.power.voltage import DVFSController, DVFSLevel, vmin_mv


class TestVmin:
    def test_8t_scales_far_below_6t(self):
        """The paper's motivation: 8T cells push Vmin down."""
        assert vmin_mv("8T") < vmin_mv("6T") - 150.0

    def test_6t_vmin_is_mid_range(self):
        assert 450.0 <= vmin_mv("6T") <= 700.0

    def test_8t_vmin_near_subthreshold(self):
        """Verma & Chandrakasan run 8T arrays sub-threshold."""
        assert vmin_mv("8T") <= 400.0


class TestDVFSLevel:
    def test_relative_power_monotonic_in_vdd(self):
        low = DVFSLevel(vdd_mv=600.0, frequency_ghz=1.0)
        high = DVFSLevel(vdd_mv=1000.0, frequency_ghz=1.0)
        assert high.relative_dynamic_power > low.relative_dynamic_power


class TestDVFSController:
    def test_6t_loses_low_levels(self):
        """A 6T cache forbids the deepest DVFS levels; 8T keeps them —
        'the more the number of voltage levels the higher the chances
        of operating at the optimal point'."""
        six_t = DVFSController(TECH_45NM, "6T")
        eight_t = DVFSController(TECH_45NM, "8T")
        assert len(eight_t.available_levels()) > len(six_t.available_levels())

    def test_levels_sorted_high_to_low(self):
        controller = DVFSController(TECH_45NM, "8T")
        voltages = [level.vdd_mv for level in controller.available_levels()]
        assert voltages == sorted(voltages, reverse=True)

    def test_all_levels_respect_vmin(self):
        controller = DVFSController(TECH_45NM, "6T")
        for level in controller.available_levels():
            assert level.vdd_mv >= controller.vmin_mv

    def test_lowest_level_power_win(self):
        """At its floor level the 8T cache burns less dynamic power."""
        six_t = DVFSController(TECH_45NM, "6T")
        eight_t = DVFSController(TECH_45NM, "8T")
        power_8t, power_6t = eight_t.power_at_lowest_vs(six_t)
        assert power_8t < power_6t

    def test_frequency_drops_with_voltage(self):
        controller = DVFSController(TECH_45NM, "8T")
        levels = controller.available_levels()
        frequencies = [level.frequency_ghz for level in levels]
        assert frequencies == sorted(frequencies, reverse=True)
