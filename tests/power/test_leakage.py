"""Unit tests for the leakage model."""

import pytest

from repro.errors import ValidationError
from repro.power.leakage import LeakageModel
from repro.power.params import TECH_45NM
from repro.power.voltage import vmin_mv
from repro.sram.geometry import ArrayGeometry


@pytest.fixture
def model():
    return LeakageModel(TECH_45NM, ArrayGeometry(rows=512, words_per_row=16))


class TestPerCell:
    def test_8t_leaks_more_at_same_voltage(self, model):
        assert model.per_cell_pw("8T", 1000.0) > model.per_cell_pw("6T", 1000.0)

    def test_leakage_falls_with_voltage(self, model):
        assert model.per_cell_pw("6T", 600.0) < model.per_cell_pw("6T", 1000.0)

    def test_nominal_matches_preset(self, model):
        assert model.per_cell_pw("6T", TECH_45NM.vdd_nominal_mv) == pytest.approx(
            TECH_45NM.leak_per_cell_6t_pw
        )

    def test_unknown_cell(self, model):
        with pytest.raises(ValueError):
            model.per_cell_pw("10T", 1000.0)

    def test_non_positive_vdd(self, model):
        with pytest.raises(ValueError):
            model.per_cell_pw("6T", 0.0)


class TestArrayPower:
    def test_scales_with_cells(self):
        small = LeakageModel(TECH_45NM, ArrayGeometry(rows=4, words_per_row=4))
        large = LeakageModel(TECH_45NM, ArrayGeometry(rows=8, words_per_row=4))
        ratio = large.array_power_uw("6T", 1000.0) / small.array_power_uw(
            "6T", 1000.0
        )
        assert ratio == pytest.approx(2.0)


class TestScalingWin:
    def test_8t_wins_at_its_vmin(self, model):
        """The paper's premise: the 8T array, run at its (much lower)
        Vmin, leaks less overall than the 6T array stuck at its Vmin —
        despite 33 % more transistors."""
        win = model.scaling_win_fraction(
            vdd_6t_min_mv=vmin_mv("6T"), vdd_8t_min_mv=vmin_mv("8T")
        )
        assert win > 0.3

    def test_no_win_at_equal_voltage(self, model):
        win = model.scaling_win_fraction(1000.0, 1000.0)
        assert win < 0.0  # 8T strictly worse at the same Vdd

    def test_zero_power_baseline_raises(self):
        """A degenerate 6T preset (zero leakage) makes the win fraction
        undefined; it must raise, not report 'no win'."""
        from repro.power.params import TechnologyParams
        from dataclasses import replace

        zero_leak = replace(TECH_45NM, leak_per_cell_6t_pw=0.0)
        model = LeakageModel(
            zero_leak, ArrayGeometry(rows=4, words_per_row=4)
        )
        with pytest.raises(ValidationError):
            model.scaling_win_fraction(1000.0, 1000.0)
