"""Backend agreement and coverage (ISSUE 8 satellite 3).

Two independent models of the same silicon must agree to within the
band their declared accuracies imply: a backend claiming N % accuracy
may be off by up to (100 - N) %, so any pair of backends answering the
same query must sit within the *looser* backend's band of each other.
"""

import pytest

from repro.cache.config import BASELINE_GEOMETRY
from repro.power.estimator import (
    AnalyticalEstimator,
    EstimationQuery,
    LibraryEstimator,
    default_registry,
)
from repro.power.estimator.analytical import ANALYTICAL_ACCURACY_PCT
from repro.power.estimator.library import (
    CELL_LIBRARY,
    LIBRARY_ACCURACY_PCT,
    derive_macro_entry,
)
from repro.sim.comparison import DEFAULT_TECHNIQUES, compare_techniques
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

#: The worst declared accuracy bounds the tolerated disagreement.
AGREEMENT_BAND = (100.0 - min(
    ANALYTICAL_ACCURACY_PCT, LIBRARY_ACCURACY_PCT
)) / 100.0


def _technique_events():
    trace = materialize(
        generate_trace(get_profile("mcf"), 3000, seed=2012)
    )
    comparison = compare_techniques(
        trace, BASELINE_GEOMETRY, techniques=DEFAULT_TECHNIQUES
    )
    return {
        technique: comparison.result(technique).events
        for technique in DEFAULT_TECHNIQUES
    }


def _rel_diff(a, b):
    return abs(a - b) / max(abs(a), abs(b))


class TestAgreement:
    @pytest.fixture(scope="class")
    def events(self):
        return _technique_events()

    def test_dynamic_energy_within_band_on_all_techniques(self, events):
        analytical = AnalyticalEstimator()
        library = LibraryEstimator()
        for technique in DEFAULT_TECHNIQUES:
            query = EstimationQuery.dynamic_energy(
                events[technique], BASELINE_GEOMETRY
            )
            a = analytical.estimate_energy(query)["total_fj"]
            b = library.estimate_energy(query)["total_fj"]
            assert a > 0.0 and b > 0.0
            assert _rel_diff(a, b) <= AGREEMENT_BAND, technique

    def test_leakage_within_band(self):
        query = EstimationQuery.leakage_power(BASELINE_GEOMETRY, vdd_mv=1000.0)
        a = AnalyticalEstimator().estimate_energy(query)["power_uw"]
        b = LibraryEstimator().estimate_energy(query)["power_uw"]
        assert _rel_diff(a, b) <= AGREEMENT_BAND

    def test_structural_area_values_are_identical(self):
        """Bit counts are architecture, not modelling: both backends
        must report the paper's exact Section 5.4 numbers."""
        query = EstimationQuery.area(BASELINE_GEOMETRY)
        a = AnalyticalEstimator().estimate_area(query)
        b = LibraryEstimator().estimate_area(query)
        for key in (
            "cache_data_bits",
            "set_buffer_bits",
            "tag_buffer_bits",
            "tag_buffer_bits_with_state",
            "set_buffer_overhead",
        ):
            assert a[key] == b[key], key
        assert a["set_buffer_bits"] == 1024.0
        assert a["tag_buffer_bits"] == 145.0
        assert 100.0 * a["set_buffer_overhead"] < 0.2


class TestCoverage:
    def test_declared_accuracies_order_the_backends(self):
        query = EstimationQuery.area(BASELINE_GEOMETRY)
        assert (
            LibraryEstimator().supports(query).percent
            > AnalyticalEstimator().supports(query).percent
        )

    def test_library_characterises_the_9t_cell(self):
        assert ("9T", 45) in CELL_LIBRARY
        nine_t = CELL_LIBRARY[("9T", 45)]
        # Near-threshold operating point from the related 9T work.
        assert nine_t.vdd_nominal_mv == 600.0
        assert nine_t.vmin_mv < CELL_LIBRARY[("8T", 45)].vmin_mv
        query = EstimationQuery.area(BASELINE_GEOMETRY, cell_kind="9T")
        assert LibraryEstimator().supports(query)
        assert not AnalyticalEstimator().supports(query)

    def test_library_has_no_6t_32nm_entry(self):
        assert ("6T", 32) not in CELL_LIBRARY
        query = EstimationQuery.area(
            BASELINE_GEOMETRY, cell_kind="6T", node_nm=32
        )
        assert not LibraryEstimator().supports(query)
        assert AnalyticalEstimator().supports(query)
        # And auto dispatch covers the hole.
        estimation = default_registry().estimate(query)
        assert estimation.backend == "analytical"

    def test_derive_macro_entry_rejects_uncharacterised(self):
        from repro.errors import ValidationError
        from repro.sram.geometry import ArrayGeometry

        with pytest.raises(ValidationError, match="no library"):
            derive_macro_entry(
                "6T", 32, ArrayGeometry.for_cache(BASELINE_GEOMETRY)
            )

    def test_9t_leakage_is_the_low_power_story(self):
        """The near-threshold 9T cell leaks far less than 8T — the
        reason a second technology family is worth estimating.  Each
        cell is priced at its own nominal supply (1000 mV vs 600 mV):
        running near-threshold *is* the 9T design point."""
        q8 = EstimationQuery.leakage_power(BASELINE_GEOMETRY, vdd_mv=1000.0)
        q9 = EstimationQuery.leakage_power(
            BASELINE_GEOMETRY, vdd_mv=600.0, cell_kind="9T"
        )
        library = LibraryEstimator()
        assert (
            library.estimate_energy(q9)["power_uw"]
            < library.estimate_energy(q8)["power_uw"] / 2.0
        )
