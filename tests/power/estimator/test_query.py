"""EstimationQuery: validation, canonical payloads, fingerprints."""

import pytest

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.errors import ValidationError
from repro.power.estimator import EstimationQuery
from repro.sram.events import SRAMEventLog


def _events(reads=5, writes=2):
    log = SRAMEventLog()
    for _ in range(reads):
        log.record_row_read(words_routed=1)
    for _ in range(writes):
        log.record_row_write(words_driven=16)
    return log


class TestValidation:
    def test_unknown_action(self):
        with pytest.raises(ValidationError, match="unknown estimation action"):
            EstimationQuery(
                action="phase_noise",
                cell_kind="8T",
                node_nm=45,
                geometry=BASELINE_GEOMETRY,
            )

    def test_unknown_cell(self):
        with pytest.raises(ValidationError, match="unknown cell kind"):
            EstimationQuery.area(BASELINE_GEOMETRY, cell_kind="12T")

    def test_dynamic_energy_requires_events(self):
        with pytest.raises(ValidationError, match="event counts"):
            EstimationQuery(
                action="dynamic_energy",
                cell_kind="8T",
                node_nm=45,
                geometry=BASELINE_GEOMETRY,
            )

    def test_leakage_requires_vdd(self):
        with pytest.raises(ValidationError, match="vdd_mv"):
            EstimationQuery(
                action="leakage_power",
                cell_kind="8T",
                node_nm=45,
                geometry=BASELINE_GEOMETRY,
            )

    def test_non_positive_vdd(self):
        with pytest.raises(ValidationError):
            EstimationQuery.leakage_power(BASELINE_GEOMETRY, vdd_mv=0.0)


class TestEventRoundtrip:
    def test_event_log_rebuilds_exactly(self):
        events = _events()
        query = EstimationQuery.dynamic_energy(events, BASELINE_GEOMETRY)
        assert query.event_log().to_dict() == events.to_dict()

    def test_area_query_carries_no_events(self):
        query = EstimationQuery.area(BASELINE_GEOMETRY)
        with pytest.raises(ValidationError, match="no event counts"):
            query.event_log()


class TestFingerprint:
    def test_same_question_same_fingerprint(self):
        first = EstimationQuery.dynamic_energy(_events(), BASELINE_GEOMETRY)
        second = EstimationQuery.dynamic_energy(_events(), BASELINE_GEOMETRY)
        assert first.fingerprint() == second.fingerprint()

    def test_any_axis_changes_fingerprint(self):
        base = EstimationQuery.area(BASELINE_GEOMETRY)
        variants = (
            EstimationQuery.area(BASELINE_GEOMETRY, cell_kind="6T"),
            EstimationQuery.area(BASELINE_GEOMETRY, node_nm=32),
            EstimationQuery.area(
                CacheGeometry(
                    size_bytes=32 * 1024, associativity=4, block_bytes=32
                )
            ),
            EstimationQuery.leakage_power(BASELINE_GEOMETRY, vdd_mv=800.0),
        )
        fingerprints = {q.fingerprint() for q in variants}
        assert base.fingerprint() not in fingerprints
        assert len(fingerprints) == len(variants)

    def test_event_counts_feed_the_fingerprint(self):
        light = EstimationQuery.dynamic_energy(
            _events(reads=1), BASELINE_GEOMETRY
        )
        heavy = EstimationQuery.dynamic_energy(
            _events(reads=100), BASELINE_GEOMETRY
        )
        assert light.fingerprint() != heavy.fingerprint()

    def test_describe_names_the_question(self):
        query = EstimationQuery.leakage_power(BASELINE_GEOMETRY, vdd_mv=700.0)
        text = query.describe()
        assert "leakage_power" in text
        assert "8T@45nm" in text
        assert "64KB/4-way/32B" in text
