"""Registry dispatch, forcing, caching, and telemetry."""

import pytest

from repro.cache.config import BASELINE_GEOMETRY
from repro.errors import ValidationError
from repro.obs.telemetry import Telemetry
from repro.power.estimator import (
    AnalyticalEstimator,
    EstimationQuery,
    EstimationRecordCache,
    EstimatorRegistry,
    LibraryEstimator,
    default_registry,
)
from repro.store.version import ENV_CODE_VERSION


def _area(cell_kind="8T", node_nm=45):
    return EstimationQuery.area(
        BASELINE_GEOMETRY, cell_kind=cell_kind, node_nm=node_nm
    )


class TestDispatch:
    def test_auto_prefers_the_more_accurate_library(self):
        registry = default_registry()
        backend, accuracy = registry.select(_area())
        assert backend.backend_id == "library"
        assert accuracy.percent == 85.0

    def test_uncharacterised_macro_falls_back_to_analytical(self):
        # 6T at 32 nm is deliberately absent from the library.
        registry = default_registry()
        backend, _ = registry.select(_area(cell_kind="6T", node_nm=32))
        assert backend.backend_id == "analytical"

    def test_9t_is_library_only(self):
        registry = default_registry()
        backend, _ = registry.select(_area(cell_kind="9T"))
        assert backend.backend_id == "library"
        with pytest.raises(ValidationError, match="does not support"):
            registry.select(_area(cell_kind="9T"), backend_id="analytical")

    def test_no_capable_backend_is_loud(self):
        registry = EstimatorRegistry(backends=(AnalyticalEstimator(),))
        with pytest.raises(ValidationError, match="no registered backend"):
            registry.select(_area(cell_kind="9T"))

    def test_forced_backend_is_honoured(self):
        registry = default_registry("analytical")
        estimation = registry.estimate(_area())
        assert estimation.backend == "analytical"

    def test_unknown_forced_backend(self):
        with pytest.raises(ValidationError, match="not registered"):
            default_registry().select(_area(), backend_id="spice")
        with pytest.raises(ValidationError, match="not registered"):
            EstimatorRegistry(
                backends=(LibraryEstimator(),), forced_backend="spice"
            )

    def test_unknown_spec(self):
        with pytest.raises(ValidationError, match="unknown estimator spec"):
            default_registry("vibes")

    def test_duplicate_registration(self):
        with pytest.raises(ValidationError, match="already registered"):
            EstimatorRegistry(
                backends=(LibraryEstimator(), LibraryEstimator())
            )


class TestCaching:
    def test_cache_first_with_telemetry(self, tmp_path):
        telemetry = Telemetry(enabled=True)
        registry = default_registry(
            cache_path=str(tmp_path), telemetry=telemetry
        )
        cold = registry.estimate(_area())
        warm = registry.estimate(_area())
        assert cold.cached is False
        assert warm.cached is True
        assert warm.values == cold.values
        assert registry.backend_calls["library"] == 1
        assert telemetry.registry.value("estimator.dispatch") == 2
        assert telemetry.registry.value("estimator.cache.miss") == 1
        assert telemetry.registry.value("estimator.cache.hit") == 1

    def test_warm_cache_means_zero_backend_calls(self, tmp_path):
        default_registry(cache_path=str(tmp_path)).estimate(_area())
        rebuilt = default_registry(cache_path=str(tmp_path))
        rebuilt.estimate(_area())
        assert rebuilt.backend_calls == {"analytical": 0, "library": 0}

    def test_code_version_rotation_invalidates(self, tmp_path, monkeypatch):
        cache = EstimationRecordCache(tmp_path)
        first = EstimatorRegistry(
            backends=(LibraryEstimator(),), cache=cache
        )
        first.estimate(_area())
        monkeypatch.setenv(ENV_CODE_VERSION, "feedface00000000")
        second = EstimatorRegistry(
            backends=(LibraryEstimator(),),
            cache=EstimationRecordCache(tmp_path),
        )
        second.estimate(_area())
        # The persisted record is structurally unreachable under the
        # new code version: the backend had to be called again.
        assert second.backend_calls["library"] == 1

    def test_per_backend_records_are_distinct(self, tmp_path):
        registry = default_registry(cache_path=str(tmp_path))
        library = registry.estimate(_area(), backend_id="library")
        analytical = registry.estimate(_area(), backend_id="analytical")
        assert library.backend == "library"
        assert analytical.backend == "analytical"
        assert registry.cache is not None and len(registry.cache) == 2

    def test_stats_shape(self, tmp_path):
        registry = default_registry("library", cache_path=str(tmp_path))
        registry.estimate(_area())
        stats = registry.stats()
        assert stats["forced_backend"] == "library"
        assert stats["backend_calls"]["library"] == 1
        assert stats["cache"]["puts"] == 1
