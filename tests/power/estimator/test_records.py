"""Estimation-record cache: keys, persistence, damage tolerance."""

import json

import pytest

from repro.cache.config import BASELINE_GEOMETRY
from repro.obs.telemetry import Telemetry
from repro.power.estimator import (
    Estimation,
    EstimationQuery,
    EstimationRecordCache,
)
from repro.power.estimator.records import (
    RECORDS_FILENAME,
    estimator_code_version,
    record_key,
)
from repro.store.keys import digest
from repro.store.version import ENV_CODE_VERSION


def _query():
    return EstimationQuery.area(BASELINE_GEOMETRY)


def _estimation(total=123.0):
    return Estimation(
        values={"total_fj": total},
        accuracy_pct=85.0,
        backend="library",
    )


class TestRecordKey:
    def test_deterministic(self):
        assert record_key("library", _query()) == record_key(
            "library", _query()
        )

    def test_backend_is_part_of_identity(self):
        assert (
            record_key("library", _query())[0]
            != record_key("analytical", _query())[0]
        )

    def test_key_is_digest_of_meta(self):
        key, meta = record_key("library", _query())
        assert key == digest(meta)
        assert meta["kind"] == "estimation"
        assert meta["code"] == estimator_code_version()

    def test_code_version_rotates_the_key(self, monkeypatch):
        before = record_key("library", _query())[0]
        monkeypatch.setenv(ENV_CODE_VERSION, "deadbeefcafe0000")
        after = record_key("library", _query())[0]
        assert before != after


class TestRoundtrip:
    def test_put_then_get_marks_cached(self, tmp_path):
        cache = EstimationRecordCache(tmp_path)
        key, meta = record_key("library", _query())
        assert cache.get(key) is None
        cache.put(key, meta, _estimation())
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.cached is True
        assert loaded["total_fj"] == 123.0
        assert cache.counters["hits"] == 1
        assert cache.counters["misses"] == 1
        assert cache.counters["puts"] == 1

    def test_directory_path_gets_the_standard_filename(self, tmp_path):
        cache = EstimationRecordCache(tmp_path)
        assert cache.path == tmp_path / RECORDS_FILENAME

    def test_persists_across_instances(self, tmp_path):
        key, meta = record_key("library", _query())
        EstimationRecordCache(tmp_path).put(key, meta, _estimation(7.0))
        reloaded = EstimationRecordCache(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get(key)["total_fj"] == 7.0

    def test_last_writer_wins(self, tmp_path):
        key, meta = record_key("library", _query())
        first = EstimationRecordCache(tmp_path)
        first.put(key, meta, _estimation(1.0))
        first.put(key, meta, _estimation(2.0))
        assert EstimationRecordCache(tmp_path).get(key)["total_fj"] == 2.0


class TestDamage:
    def test_torn_final_line_is_skipped(self, tmp_path):
        key, meta = record_key("library", _query())
        cache = EstimationRecordCache(tmp_path)
        cache.put(key, meta, _estimation())
        with open(cache.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "abc", "meta": {"tr')  # torn mid-write
        reloaded = EstimationRecordCache(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.counters["skipped_lines"] == 1
        assert reloaded.get(key) is not None

    def test_tampered_meta_fails_digest_check(self, tmp_path):
        key, meta = record_key("library", _query())
        cache = EstimationRecordCache(tmp_path)
        cache.put(key, meta, _estimation())
        document = json.loads(cache.path.read_text().splitlines()[0])
        document["meta"]["backend"] = "somebody-else"
        cache.path.write_text(json.dumps(document) + "\n")
        reloaded = EstimationRecordCache(tmp_path)
        assert len(reloaded) == 0
        assert reloaded.counters["skipped_lines"] == 1

    def test_unwritable_cache_degrades_to_warning(self, tmp_path):
        target = tmp_path / "records.jsonl"
        target.mkdir()  # a directory where the file should be -> OSError
        telemetry = Telemetry(enabled=True)
        cache = EstimationRecordCache(target / "nope.jsonl", telemetry)
        cache.path = target  # open() on a directory raises OSError
        key, meta = record_key("library", _query())
        persisted = cache.put(key, meta, _estimation())
        assert persisted is False
        assert cache.counters["write_failures"] == 1
        # The record is still served from memory for this process.
        assert cache.get(key) is not None
        assert (
            telemetry.registry.value("warning.estimator.cache_unwritable")
            == 1
        )


class TestStats:
    def test_stats_shape(self, tmp_path):
        cache = EstimationRecordCache(tmp_path)
        stats = cache.stats()
        assert stats["records"] == 0
        assert stats["code_version"] == estimator_code_version()
        assert set(cache.counters) <= set(stats)
