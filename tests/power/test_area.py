"""Unit tests for the area model — Section 5.4's exact numbers."""

import pytest

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.power.area import AreaModel


@pytest.fixture
def model():
    return AreaModel(node_nm=45)


class TestSection54:
    def test_set_buffer_is_one_set(self, model):
        """Paper: baseline set = 128 B, so the Set-Buffer is 1024 bits."""
        assert BASELINE_GEOMETRY.set_bytes == 128
        assert model.set_buffer_bits(BASELINE_GEOMETRY) == 1024

    def test_set_buffer_under_0_2_percent(self, model):
        report = model.report(BASELINE_GEOMETRY)
        assert report.set_buffer_overhead < 0.002

    def test_tag_buffer_under_150_bits(self, model):
        """Paper: 'less than 150 bits assuming 48 bits physical address'
        (9 index bits + 4 x 34-bit tags = 145)."""
        bits = model.tag_buffer_bits(BASELINE_GEOMETRY)
        assert bits == 145
        assert bits < 150

    def test_tag_buffer_with_state_bits(self, model):
        # + 4 valid bits + buffer-valid + Dirty.
        assert model.tag_buffer_bits_with_state(BASELINE_GEOMETRY) == 151

    def test_total_overhead_small(self, model):
        report = model.report(BASELINE_GEOMETRY)
        assert report.total_overhead < 0.0025

    def test_overhead_shrinks_with_cache_size(self, model):
        small = model.report(CacheGeometry(32 * 1024, 4, 32))
        large = model.report(CacheGeometry(128 * 1024, 4, 32))
        assert large.set_buffer_overhead < small.set_buffer_overhead


class TestECCOverhead:
    def test_secded_is_hamming_72_64(self, model):
        """Interleaving enables SEC-DED: 8 check bits per 64-bit word."""
        assert model.ecc_overhead(BASELINE_GEOMETRY, "secded") == pytest.approx(
            8 / 64
        )

    def test_multibit_costs_nearly_double(self, model):
        """Chang's non-interleaved layout forces multi-bit correction."""
        secded = model.ecc_bits(BASELINE_GEOMETRY, "secded")
        multibit = model.ecc_bits(BASELINE_GEOMETRY, "multi_bit")
        assert multibit == pytest.approx(secded * 14 / 8)

    def test_bits_scale_with_capacity(self, model):
        small = model.ecc_bits(CacheGeometry(32 * 1024, 4, 32), "secded")
        large = model.ecc_bits(CacheGeometry(128 * 1024, 4, 32), "secded")
        assert large == 4 * small

    def test_unknown_scheme(self, model):
        with pytest.raises(ValueError, match="unknown ECC scheme"):
            model.ecc_bits(BASELINE_GEOMETRY, "raid5")


class TestCellAreas:
    def test_8t_denser_at_45nm_and_below(self):
        """Morita et al.: 8T cells are more compact beyond 45 nm."""
        assert AreaModel(node_nm=45).eight_t_denser()
        assert AreaModel(node_nm=32).eight_t_denser()

    def test_6t_denser_at_legacy_nodes(self):
        assert not AreaModel(node_nm=65).eight_t_denser()

    def test_area_um2_scales_with_node(self):
        a45 = AreaModel(45).cell_area_um2("8T")
        a32 = AreaModel(32).cell_area_um2("8T")
        assert a32 < a45

    def test_unknown_cell(self):
        with pytest.raises(ValueError):
            AreaModel(45).cell_area_f2("12T")

    def test_node_validated(self):
        with pytest.raises(ValueError):
            AreaModel(0)
