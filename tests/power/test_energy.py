"""Unit tests for the dynamic energy model."""

import pytest

from repro.errors import ValidationError
from repro.power.energy import EnergyModel
from repro.power.params import TECH_45NM
from repro.sram.events import SRAMEventLog
from repro.sram.geometry import ArrayGeometry


@pytest.fixture
def model():
    return EnergyModel(TECH_45NM, ArrayGeometry(rows=512, words_per_row=16))


class TestPerOperationEnergies:
    def test_row_write_dwarfs_buffer_word(self, model):
        assert model.row_write_energy_fj() > 50 * model.buffer_word_energy_fj()

    def test_full_row_read_costs_more_than_single_word(self, model):
        assert model.row_read_energy_fj(16) > model.row_read_energy_fj(1)

    def test_voltage_scaling_quadratic(self):
        geometry = ArrayGeometry(rows=512, words_per_row=16)
        nominal = EnergyModel(TECH_45NM, geometry)
        scaled = EnergyModel(TECH_45NM, geometry, vdd_mv=500.0)
        assert scaled.row_write_energy_fj() == pytest.approx(
            0.25 * nominal.row_write_energy_fj()
        )


class TestEnergyOfRun:
    def test_empty_log_is_zero(self, model):
        breakdown = model.energy_of(SRAMEventLog())
        assert breakdown.total_fj == 0.0

    def test_rmw_write_doubles_cost(self, model):
        """An RMW costs read + write; a grouped write costs one buffer word."""
        rmw_log = SRAMEventLog()
        rmw_log.record_rmw(row_words=16)
        grouped_log = SRAMEventLog()
        grouped_log.record_set_buffer_write(1)
        rmw_energy = model.energy_of(rmw_log).total_fj
        grouped_energy = model.energy_of(grouped_log).total_fj
        assert rmw_energy > 100 * grouped_energy

    def test_breakdown_components(self, model):
        log = SRAMEventLog()
        log.record_row_read(1)
        log.record_row_write(16)
        log.record_set_buffer_read(2)
        breakdown = model.energy_of(log)
        assert breakdown.read_fj > 0
        assert breakdown.write_fj > 0
        assert breakdown.buffer_fj > 0
        assert breakdown.total_fj == pytest.approx(
            breakdown.read_fj + breakdown.write_fj + breakdown.buffer_fj
        )
        assert breakdown.total_nj == pytest.approx(breakdown.total_fj * 1e-6)

    def test_word_routing_charged_exactly(self, model):
        one = SRAMEventLog()
        one.record_row_read(1)
        sixteen = SRAMEventLog()
        sixteen.record_row_read(16)
        delta = (
            model.energy_of(sixteen).read_fj - model.energy_of(one).read_fj
        )
        assert delta == pytest.approx(15 * TECH_45NM.e_sense_per_word_fj)


class TestSavings:
    def test_fewer_accesses_save_energy(self, model):
        baseline = SRAMEventLog()
        for _ in range(10):
            baseline.record_rmw(row_words=16)
        improved = SRAMEventLog()
        improved.record_rmw(row_words=16)
        improved.record_set_buffer_write(9)
        saving = model.savings_vs(improved, baseline)
        assert 0.85 < saving < 1.0

    def test_zero_baseline_raises(self, model):
        """An empty baseline log has zero energy; a savings fraction
        against it is undefined and must fail loudly, not read as
        'no savings'."""
        with pytest.raises(ValidationError):
            model.savings_vs(SRAMEventLog(), SRAMEventLog())

    def test_zero_baseline_raises_even_with_real_events(self, model):
        improved = SRAMEventLog()
        improved.record_row_read(1)
        with pytest.raises(ValidationError):
            model.savings_vs(improved, SRAMEventLog())

    def test_identical_logs_save_nothing(self, model):
        log = SRAMEventLog()
        log.record_row_read(1)
        assert model.savings_vs(log, log.copy()) == pytest.approx(0.0)
