"""Unit tests for technology parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.power.params import TECH_32NM, TECH_45NM, TechnologyParams


class TestPresets:
    def test_nodes(self):
        assert TECH_45NM.node_nm == 45
        assert TECH_32NM.node_nm == 32

    def test_32nm_cheaper_per_event(self):
        assert TECH_32NM.e_wordline_fj < TECH_45NM.e_wordline_fj

    def test_32nm_leaks_more(self):
        assert TECH_32NM.leak_per_cell_6t_pw > TECH_45NM.leak_per_cell_6t_pw

    def test_8t_leaks_more_than_6t(self):
        for tech in (TECH_45NM, TECH_32NM):
            assert tech.leak_per_cell_8t_pw > tech.leak_per_cell_6t_pw


class TestVoltageScale:
    def test_nominal_is_unity(self):
        assert TECH_45NM.voltage_scale(TECH_45NM.vdd_nominal_mv) == pytest.approx(1.0)

    def test_quadratic(self):
        assert TECH_45NM.voltage_scale(500.0) == pytest.approx(0.25)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TECH_45NM.voltage_scale(0.0)


class TestValidation:
    def test_bad_node(self):
        with pytest.raises(ConfigurationError):
            TechnologyParams(node_nm=0, vdd_nominal_mv=1000, vdd_levels_mv=(1000,))

    def test_no_levels(self):
        with pytest.raises(ConfigurationError):
            TechnologyParams(node_nm=45, vdd_nominal_mv=1000, vdd_levels_mv=())

    def test_bad_level(self):
        with pytest.raises(ConfigurationError):
            TechnologyParams(
                node_nm=45, vdd_nominal_mv=1000, vdd_levels_mv=(1000, -5)
            )
