"""Integration-level tests for every figure producer.

Each producer runs on a small benchmark subset so the whole file stays
fast; the full-suite numbers are exercised by the benchmark harness.
"""

import pytest

from repro.analysis.figures import FIGURE_IDS, reproduce_figure

SUBSET = ("bwaves", "mcf", "gamess")
FAST = dict(accesses=4000, benchmarks=SUBSET)


class TestFrontDoor:
    def test_figure_ids(self):
        assert set(FIGURE_IDS) == {
            "fig3",
            "fig4",
            "fig5",
            "fig9",
            "fig10",
            "fig11",
            "claim_rmw",
            "sec5.4",
            "sec5.5",
            "reliability",
            "dvfs_energy",
            "traffic",
            "overheads",
        }

    def test_unknown_figure(self):
        with pytest.raises(ValueError, match="unknown figure"):
            reproduce_figure("fig99")


class TestFig3:
    def test_rows_and_summary(self):
        result = reproduce_figure("fig3", **FAST)
        assert len(result.rows) == len(SUBSET) + 1  # + AVG
        assert result.rows[-1][0] == "AVG"
        assert "mean_read_pct" in result.summary
        assert result.paper_values["mean_read_pct"] == 26.0

    def test_bwaves_write_heavy(self):
        result = reproduce_figure("fig3", **FAST)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["bwaves"][2] > by_name["gamess"][2]


class TestFig4:
    def test_shares_sum_to_same_set(self):
        result = reproduce_figure("fig4", **FAST)
        for row in result.rows:
            _, rr, rw, ww, wr, same = row
            assert rr + rw + ww + wr == pytest.approx(same, abs=0.01)

    def test_bwaves_ww_dominates_subset(self):
        result = reproduce_figure("fig4", **FAST)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["bwaves"][3] > by_name["gamess"][3]


class TestFig5:
    def test_summary_keys(self):
        result = reproduce_figure("fig5", **FAST)
        assert result.summary["bwaves_silent_pct"] == pytest.approx(77, abs=5)


class TestFig9Family:
    def test_fig9(self):
        result = reproduce_figure("fig9", **FAST)
        by_name = {row[0]: row for row in result.rows}
        wg, wgrb = by_name["bwaves"][1], by_name["bwaves"][2]
        assert wgrb >= wg > 35.0

    def test_fig10_block_effect(self):
        fig9 = reproduce_figure("fig9", **FAST)
        fig10 = reproduce_figure("fig10", **FAST)
        assert (
            fig10.summary["mean_wgrb_pct"] > fig9.summary["mean_wgrb_pct"]
        )

    def test_fig11_size_insensitive(self):
        result = reproduce_figure("fig11", **FAST)
        assert result.summary["wg_32k_pct"] == pytest.approx(
            result.summary["wg_128k_pct"], abs=3.0
        )


class TestClaimAndSections:
    def test_claim_rmw(self):
        result = reproduce_figure("claim_rmw", **FAST)
        assert 20.0 < result.summary["mean_overhead_pct"] < 60.0

    def test_sec54_needs_no_simulation(self):
        result = reproduce_figure("sec5.4")
        assert result.summary["tag_buffer_bits"] == 145.0
        assert result.summary["set_buffer_overhead_pct"] < 0.2

    def test_sec55_directions(self):
        result = reproduce_figure("sec5.5", accesses=3000, benchmarks=SUBSET)
        assert result.summary["mean_wg_energy_saving_pct"] > 0.0
        assert (
            result.summary["mean_wgrb_read_latency"]
            < result.summary["mean_rmw_read_latency"]
        )

    def test_traffic_anatomy(self):
        result = reproduce_figure("traffic", accesses=3000, benchmarks=SUBSET)
        assert len(result.rows) == len(SUBSET)
        by_name = {row[0]: row for row in result.rows}
        # bwaves groups far more of its writes than mcf does.
        assert by_name["bwaves"][1] > by_name["mcf"][1] + 15.0
        assert result.summary["mean_grouped_pct"] > 0.0

    def test_dvfs_energy_endgame_ordering(self):
        """The paper's pitch: 8T+WG+RB at its Vmin beats both the 6T
        cache at its Vmin and the 8T+RMW configuration."""
        result = reproduce_figure(
            "dvfs_energy", accesses=3000, benchmarks=SUBSET
        )
        assert (
            result.summary["mean_8t_wgrb_nj"]
            < result.summary["mean_8t_rmw_nj"]
            < result.summary["mean_6t_nj"]
        )
        assert result.summary["wgrb_vs_6t_saving_pct"] > 30.0


class TestDeterminism:
    def test_same_seed_same_figure(self):
        first = reproduce_figure("fig9", accesses=3000, benchmarks=("mcf",))
        second = reproduce_figure("fig9", accesses=3000, benchmarks=("mcf",))
        assert first.rows == second.rows
