"""Unit tests for ASCII bar rendering."""

import pytest

from repro.analysis.bars import render_bars
from repro.analysis.result import FigureResult


def _figure():
    return FigureResult(
        figure_id="figX",
        title="Bars",
        headers=("benchmark", "WG", "WG+RB"),
        rows=[("alpha", 20.0, 40.0), ("beta", 10.0, 10.0)],
    )


class TestRenderBars:
    def test_contains_labels_and_values(self):
        text = render_bars(_figure())
        assert "alpha" in text
        assert "WG+RB" in text
        assert "40.00" in text

    def test_bar_lengths_proportional(self):
        text = render_bars(_figure(), width=40)
        lines = text.splitlines()
        alpha_wg = next(l for l in lines if "20.00" in l)
        alpha_wgrb = next(l for l in lines if "40.00" in l)
        assert alpha_wgrb.count("█") == 40
        assert alpha_wg.count("█") == 20

    def test_max_value_fills_width(self):
        text = render_bars(_figure(), width=10)
        top = next(l for l in text.splitlines() if "40.00" in l)
        assert top.count("█") == 10

    def test_non_numeric_cells_skipped(self):
        figure = FigureResult(
            figure_id="f",
            title="t",
            headers=("name", "value"),
            rows=[("x", "n/a"), ("y", 5.0)],
        )
        text = render_bars(figure)
        assert "n/a" not in text
        assert "5.00" in text

    def test_zero_maximum(self):
        figure = FigureResult(
            figure_id="f",
            title="t",
            headers=("name", "value"),
            rows=[("x", 0.0)],
        )
        text = render_bars(figure)
        assert "0.00" in text

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_bars(_figure(), width=2)

    def test_real_figure(self):
        from repro.analysis.figures import reproduce_figure

        result = reproduce_figure("sec5.4")
        text = render_bars(result)
        assert "64KB/4-way/32B" in text
