"""Unit tests for FigureResult rendering and CSV export."""

from repro.analysis.export import figure_to_csv
from repro.analysis.result import FigureResult


def _result():
    return FigureResult(
        figure_id="figX",
        title="Test figure",
        headers=("benchmark", "value"),
        rows=[("alpha", 1.234), ("beta", 5.0)],
        summary={"mean": 3.117},
        paper_values={"mean": 3.0},
    )


class TestRender:
    def test_contains_title_and_rows(self):
        text = _result().render()
        assert "Test figure" in text
        assert "alpha" in text
        assert "1.23" in text

    def test_summary_with_paper_value(self):
        text = _result().render()
        assert "measured 3.117 | paper 3.000" in text

    def test_summary_without_paper_value(self):
        result = _result()
        result.summary["extra"] = 9.0
        assert "extra: measured 9.000" in result.render()

    def test_no_summary(self):
        result = FigureResult(
            figure_id="f", title="t", headers=("a",), rows=[("x",)]
        )
        # title + underline + header + separator + one row = 5 lines.
        assert result.render().count("\n") == 4


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "fig.csv"
        count = figure_to_csv(_result(), path)
        assert count == 2
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "benchmark,value"
        assert lines[1].startswith("alpha")
