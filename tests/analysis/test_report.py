"""Unit tests for the one-shot reproduction report."""

import pytest

from repro.analysis.report import generate_report, write_report


@pytest.fixture(scope="module")
def small_report():
    return generate_report(
        accesses=2000, figure_ids=("fig5", "sec5.4", "reliability")
    )


class TestGenerateReport:
    def test_contains_header_and_settings(self, small_report):
        assert small_report.startswith("# Reproduction report")
        assert "2000 accesses/benchmark" in small_report

    def test_summary_table(self, small_report):
        assert "| figure | metric | measured | paper |" in small_report
        assert "| fig5 | mean_silent_pct |" in small_report
        # Paper value present for fig5, dash for reliability metrics.
        assert "| sec5.4 | tag_buffer_bits | 145.00 | 150.00 |" in small_report

    def test_figure_sections(self, small_report):
        assert "### fig5" in small_report
        assert "### sec5.4" in small_report
        assert "### reliability" in small_report

    def test_subset_respected(self, small_report):
        assert "### fig9" not in small_report


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(
            tmp_path / "report.md", accesses=1500, figure_ids=("sec5.4",)
        )
        assert path.exists()
        assert "Reproduction report" in path.read_text()

    def test_cli_integration(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        code = main(
            [
                "report",
                str(out),
                "--accesses",
                "1500",
                "--figures",
                "sec5.4",
            ]
        )
        assert code == 0
        assert out.exists()
        assert "wrote reproduction report" in capsys.readouterr().out
