"""The overhead reproduction report and its claim gate."""

import pytest

from repro.analysis.overheads import (
    SET_BUFFER_OVERHEAD_LIMIT_PCT,
    TAG_BUFFER_BITS_LIMIT,
    check_overhead_claims,
    overhead_report,
)
from repro.analysis.result import FigureResult
from repro.power.estimator import default_registry

FAST = dict(accesses=2000, benchmarks=("bwaves", "mcf"))


class TestClaims:
    def test_both_backends_reproduce_the_paper(self):
        result = overhead_report(**FAST)
        backends = {row[0] for row in result.rows}
        assert backends == {"analytical", "library"}
        for row in result.rows:
            backend, set_buffer_pct, tag_bits = row[0], row[1], row[2]
            assert set_buffer_pct < SET_BUFFER_OVERHEAD_LIMIT_PCT, backend
            assert tag_bits < TAG_BUFFER_BITS_LIMIT, backend
        assert check_overhead_claims(result) == []

    def test_buffers_pay_for_themselves(self):
        result = overhead_report(**FAST)
        for row in result.rows:
            rmw_fj, wg_fj, wgrb_fj = row[3], row[4], row[5]
            assert wgrb_fj < wg_fj < rmw_fj
        assert result.summary["wgrb_vs_rmw_saving_pct"] > 0.0

    def test_forced_backend_restricts_the_rows(self):
        result = overhead_report(estimator="library", **FAST)
        assert [row[0] for row in result.rows] == ["library"]

    def test_summary_is_the_worst_case(self):
        result = overhead_report(**FAST)
        assert result.summary["set_buffer_overhead_pct"] == pytest.approx(
            max(row[1] for row in result.rows)
        )
        assert result.summary["tag_buffer_bits"] == pytest.approx(
            max(row[2] for row in result.rows)
        )


class TestGate:
    def _result(self, **summary):
        defaults = {
            "set_buffer_overhead_pct": 0.19,
            "tag_buffer_bits": 145.0,
            "wgrb_vs_rmw_saving_pct": 10.0,
        }
        defaults.update(summary)
        return FigureResult(
            figure_id="overheads",
            title="t",
            headers=("backend",),
            rows=[("library",)],
            summary=defaults,
            paper_values={},
        )

    def test_passes_when_under_the_bounds(self):
        assert check_overhead_claims(self._result()) == []

    def test_each_breach_is_named(self):
        violations = check_overhead_claims(
            self._result(
                set_buffer_overhead_pct=0.3,
                tag_buffer_bits=160.0,
                wgrb_vs_rmw_saving_pct=-1.0,
            )
        )
        assert len(violations) == 3
        assert any("Set-Buffer" in v for v in violations)
        assert any("Tag-Buffer" in v for v in violations)

    def test_empty_report_is_a_violation(self):
        empty = FigureResult(
            figure_id="overheads",
            title="t",
            headers=(),
            rows=[],
            summary={},
            paper_values={},
        )
        assert check_overhead_claims(empty) == ["report contains no backend rows"]


class TestWarmCache:
    def test_second_run_is_served_entirely_from_records(self, tmp_path):
        """The ISSUE 8 acceptance criterion: a warm second run makes
        zero backend estimate calls — every estimation is a record."""
        cold = default_registry(cache_path=str(tmp_path))
        first = overhead_report(estimator=cold, **FAST)
        assert sum(cold.backend_calls.values()) > 0
        assert cold.cache.counters["hits"] == 0

        warm = default_registry(cache_path=str(tmp_path))
        second = overhead_report(estimator=warm, **FAST)
        assert warm.backend_calls == {"analytical": 0, "library": 0}
        assert warm.cache.counters["misses"] == 0
        assert warm.cache.counters["hits"] == sum(
            cold.backend_calls.values()
        )
        assert second.rows == first.rows
