"""Unit tests for trace stream transformers."""

import pytest

from repro.trace.record import AccessType, MemoryAccess
from repro.trace.stream import (
    limit_accesses,
    materialize,
    sample_accesses,
    skip_warmup,
)


def _trace(n):
    return [
        MemoryAccess(icount=i, kind=AccessType.READ, address=8 * i)
        for i in range(n)
    ]


class TestSkipWarmup:
    def test_skips_exactly(self):
        result = list(skip_warmup(_trace(10), 4))
        assert len(result) == 6
        assert result[0].icount == 4

    def test_skip_zero(self):
        assert len(list(skip_warmup(_trace(5), 0))) == 5

    def test_skip_more_than_length(self):
        assert list(skip_warmup(_trace(3), 10)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(skip_warmup(_trace(3), -1))

    def test_lazy(self):
        # Works on a generator without materialising it.
        def infinite():
            i = 0
            while True:
                yield MemoryAccess(icount=i, kind=AccessType.READ, address=0)
                i += 1

        stream = skip_warmup(infinite(), 3)
        assert next(stream).icount == 3


class TestLimitAccesses:
    def test_truncates(self):
        assert len(list(limit_accesses(_trace(10), 4))) == 4

    def test_limit_zero(self):
        assert list(limit_accesses(_trace(10), 0)) == []

    def test_limit_beyond_length(self):
        assert len(list(limit_accesses(_trace(3), 10))) == 3

    def test_shared_iterator_keeps_next_element(self):
        # Regression: the limiter used to pull one record *beyond* the
        # limit off the underlying iterator before returning, silently
        # consuming an element that a later consumer expected to see.
        shared = iter(_trace(10))
        taken = list(limit_accesses(shared, 4))
        assert [a.icount for a in taken] == [0, 1, 2, 3]
        assert next(shared).icount == 4

    def test_limit_zero_consumes_nothing(self):
        shared = iter(_trace(3))
        assert list(limit_accesses(shared, 0)) == []
        assert next(shared).icount == 0

    def test_exact_length_exhausts_cleanly(self):
        shared = iter(_trace(3))
        assert len(list(limit_accesses(shared, 3))) == 3
        assert next(shared, None) is None


class TestSampleAccesses:
    def test_period_one_keeps_all(self):
        assert len(list(sample_accesses(_trace(7), 1))) == 7

    def test_period_three(self):
        result = list(sample_accesses(_trace(9), 3))
        assert [a.icount for a in result] == [0, 3, 6]

    def test_period_zero_rejected(self):
        with pytest.raises(ValueError):
            list(sample_accesses(_trace(3), 0))


class TestMaterialize:
    def test_returns_list(self):
        result = materialize(a for a in _trace(4))
        assert isinstance(result, list)
        assert len(result) == 4

    def test_composition(self):
        result = materialize(
            limit_accesses(skip_warmup(_trace(20), 5), 10)
        )
        assert [a.icount for a in result] == list(range(5, 15))
