"""Unit tests for trace records."""

import pytest

from repro.trace.record import AccessType, MemoryAccess, WORD_BYTES, word_address


class TestAccessType:
    def test_read_properties(self):
        assert AccessType.READ.is_read
        assert not AccessType.READ.is_write

    def test_write_properties(self):
        assert AccessType.WRITE.is_write
        assert not AccessType.WRITE.is_read

    def test_from_letter(self):
        assert AccessType.from_letter("R") is AccessType.READ
        assert AccessType.from_letter("w") is AccessType.WRITE
        assert AccessType.from_letter(" W ") is AccessType.WRITE

    def test_from_letter_rejects_unknown(self):
        with pytest.raises(ValueError):
            AccessType.from_letter("X")


class TestWordAddress:
    def test_alignment(self):
        assert word_address(0) == 0
        assert word_address(8) == 1
        assert word_address(16) == 2


class TestMemoryAccess:
    def test_valid_read(self):
        access = MemoryAccess(icount=5, kind=AccessType.READ, address=0x40)
        assert access.is_read
        assert access.word == 8
        assert access.value == 0

    def test_valid_write(self):
        access = MemoryAccess(
            icount=9, kind=AccessType.WRITE, address=0x80, value=77
        )
        assert access.is_write
        assert access.value == 77

    def test_rejects_unaligned_address(self):
        with pytest.raises(ValueError, match="aligned"):
            MemoryAccess(icount=0, kind=AccessType.READ, address=4)

    def test_rejects_negative_icount(self):
        with pytest.raises(ValueError, match="icount"):
            MemoryAccess(icount=-1, kind=AccessType.READ, address=0)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError, match="address"):
            MemoryAccess(icount=0, kind=AccessType.READ, address=-8)

    def test_frozen(self):
        access = MemoryAccess(icount=0, kind=AccessType.READ, address=0)
        with pytest.raises(AttributeError):
            access.address = 8

    def test_describe_read(self):
        access = MemoryAccess(icount=3, kind=AccessType.READ, address=0x20)
        text = access.describe()
        assert "read" in text
        assert "0x00000020" in text

    def test_describe_write_includes_value(self):
        access = MemoryAccess(
            icount=3, kind=AccessType.WRITE, address=0x20, value=0xAB
        )
        assert "0xab" in access.describe()

    def test_word_size_constant(self):
        assert WORD_BYTES == 8
