"""RPCOL1 columnar trace format: round-trips, corruption, shared mmaps.

The writer and converter are pure stdlib and run everywhere; the reader
needs NumPy (zero-copy views are the format's whole point), so the
reader tests skip on a bare interpreter while the writer tests still
run.
"""

import multiprocessing
import struct

import pytest

from repro.cache.config import CacheGeometry
from repro.errors import TraceFormatError, ValidationError
from repro.trace import colio
from repro.trace.binio import read_binary_trace_batches, write_binary_trace
from repro.trace.colio import (
    COLUMNAR_MAGIC,
    convert_trace_to_columnar,
    open_columnar_trace,
    write_columnar_trace,
)

from tests.conftest import make_random_trace

requires_numpy = pytest.mark.skipif(
    colio.np is None, reason="reading RPCOL1 requires NumPy"
)

GEOMETRY = CacheGeometry(size_bytes=512, associativity=2, block_bytes=32)


def write_sample(tmp_path, n=600, seed=50, name="t.rpcol"):
    trace = make_random_trace(n, seed=seed, word_span=300, write_share=0.5)
    path = tmp_path / name
    assert write_columnar_trace(path, trace, GEOMETRY) == n
    return path, trace


class TestWriter:
    def test_count_and_layout(self, tmp_path):
        path, trace = write_sample(tmp_path, n=11)
        size = path.stat().st_size
        # header + 6 u64 columns + kind column padded to 8 + crc
        assert size == 40 + 6 * 8 * 11 + 16 + 4

    def test_writer_needs_no_numpy(self, tmp_path, monkeypatch):
        monkeypatch.setattr(colio, "np", None)
        path, _ = write_sample(tmp_path, n=5)
        with pytest.raises(ValidationError, match="requires NumPy"):
            open_columnar_trace(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rpcol"
        assert write_columnar_trace(path, [], GEOMETRY) == 0


@requires_numpy
class TestRoundTrip:
    def test_columns_match_binary_batches(self, tmp_path):
        """RPCOL1 columns are bit-identical to the RPTRACE2 decode."""
        trace = make_random_trace(700, seed=51, word_span=250, write_share=0.4)
        bin_path = tmp_path / "t.bin"
        col_path = tmp_path / "t.rpcol"
        write_binary_trace(bin_path, trace, crc=True)
        write_columnar_trace(col_path, trace, GEOMETRY)
        with open_columnar_trace(col_path) as columnar:
            batches = list(columnar.batches(128))
        reference = list(read_binary_trace_batches(bin_path, GEOMETRY, 128))
        assert len(batches) == len(reference)
        for got, want in zip(batches, reference):
            assert got == want

    def test_accesses_round_trip(self, tmp_path):
        path, trace = write_sample(tmp_path)
        with open_columnar_trace(path) as columnar:
            assert list(columnar.accesses()) == list(trace)

    def test_converter_from_binary(self, tmp_path):
        trace = make_random_trace(300, seed=52, word_span=120)
        bin_path = tmp_path / "t.bin"
        col_path = tmp_path / "t.rpcol"
        write_binary_trace(bin_path, trace, crc=True)
        assert convert_trace_to_columnar(bin_path, col_path, GEOMETRY) == 300
        with open_columnar_trace(col_path) as columnar:
            assert list(columnar.accesses()) == list(trace)

    def test_converter_propagates_source_corruption(self, tmp_path):
        trace = make_random_trace(50, seed=53)
        bin_path = tmp_path / "t.bin"
        write_binary_trace(bin_path, trace, crc=True)
        blob = bytearray(bin_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        bin_path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError):
            convert_trace_to_columnar(bin_path, tmp_path / "t.rpcol", GEOMETRY)
        assert not (tmp_path / "t.rpcol").exists()

    def test_resplit_under_other_geometry(self, tmp_path):
        path, trace = write_sample(tmp_path)
        other = CacheGeometry(size_bytes=4 * 1024, associativity=4, block_bytes=64)
        codec = other.codec
        with open_columnar_trace(path, other) as columnar:
            assert columnar.geometry == other
            assert columnar.stored_geometry == GEOMETRY
            for i, access in enumerate(trace):
                address = access.address
                assert columnar.set_indices[i] == (
                    (address >> codec.index_shift) & codec.index_mask
                )
                assert columnar.tags[i] == (
                    (address >> codec.tag_shift) & codec.tag_mask
                )

    def test_chunks_are_zero_copy_views(self, tmp_path):
        np = colio.np
        path, trace = write_sample(tmp_path)
        with open_columnar_trace(path) as columnar:
            assert not columnar.addresses.flags["OWNDATA"]
            chunks = list(columnar.chunks(128))
            assert sum(len(chunk) for chunk in chunks) == len(trace)
            for chunk in chunks:
                assert np.shares_memory(chunk.addresses, columnar.addresses)
        # close() with escaped views must not raise; the OS mapping
        # outlives the ColumnarTrace until the last view dies.
        assert int(chunks[0].addresses[0]) == trace[0].address

    def test_bad_chunk_size_rejected(self, tmp_path):
        path, _ = write_sample(tmp_path, n=10)
        with open_columnar_trace(path) as columnar:
            with pytest.raises(ValidationError, match="batch_size"):
                next(columnar.chunks(0))


@requires_numpy
class TestCorruption:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.rpcol"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError, match="empty columnar trace"):
            open_columnar_trace(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.rpcol"
        path.write_bytes(COLUMNAR_MAGIC + b"\x00" * 8)
        with pytest.raises(TraceFormatError, match="truncated columnar header"):
            open_columnar_trace(path)

    def test_bad_magic(self, tmp_path):
        path, _ = write_sample(tmp_path, n=4)
        blob = bytearray(path.read_bytes())
        blob[:8] = b"RPTRACE9"
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="bad magic"):
            open_columnar_trace(path)

    def test_truncated_columns(self, tmp_path):
        path, _ = write_sample(tmp_path, n=20)
        blob = path.read_bytes()
        path.write_bytes(blob[:-12])
        with pytest.raises(TraceFormatError, match="truncated columnar trace"):
            open_columnar_trace(path)

    def test_crc_mismatch_detected(self, tmp_path):
        path, _ = write_sample(tmp_path, n=20)
        blob = bytearray(path.read_bytes())
        blob[40 + 7] ^= 0x01  # flip one bit inside the icount column
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="CRC mismatch"):
            open_columnar_trace(path)

    def test_header_lies_about_count(self, tmp_path):
        path, _ = write_sample(tmp_path, n=8)
        blob = bytearray(path.read_bytes())
        struct.pack_into("<Q", blob, 8, 9)  # count field: 8 -> 9
        path.write_bytes(bytes(blob))
        with pytest.raises(TraceFormatError, match="truncated columnar trace"):
            open_columnar_trace(path)


def _replay_from_mapping(path_str):
    """Worker: map the RPCOL1 file, replay it, return one campaign row."""
    from repro.sim.simulator import Simulator
    from repro.trace.colio import open_columnar_trace

    with open_columnar_trace(path_str) as columnar:
        simulator = Simulator(
            "conventional", columnar.geometry, engine="columnar"
        )
        simulator.feed_chunks(columnar.chunks(128))
        result = simulator.finish()
    return {
        "events": result.events.to_dict(),
        "requests": result.requests,
        "hits": result.cache_stats.hits,
        "misses": result.cache_stats.misses,
    }


@requires_numpy
class TestSharedMapping:
    def test_two_processes_share_one_mapping(self, tmp_path):
        """Two workers mapping the same file produce identical rows.

        This is the multiprocess campaign contract: every worker opens
        the same ``RPCOL1`` file read-only, the OS page cache backs all
        mappings with one physical copy, and each worker's replay is
        bit-identical to an in-process run.
        """
        path, trace = write_sample(tmp_path, n=400, seed=54)
        reference = _replay_from_mapping(str(path))
        context = multiprocessing.get_context("spawn")
        with context.Pool(2) as pool:
            rows = pool.map(_replay_from_mapping, [str(path)] * 2)
        assert rows[0] == reference
        assert rows[1] == reference
        assert reference["requests"] == len(trace)
