"""Unit and property tests for the binary trace format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.faultinject import flip_bit, truncate_file
from repro.trace.binio import (
    MAGIC,
    MAGIC_CRC,
    read_binary_trace,
    write_binary_trace,
)
from repro.trace.record import AccessType, MemoryAccess

_accesses = st.lists(
    st.builds(
        MemoryAccess,
        icount=st.integers(min_value=0, max_value=2**40),
        kind=st.sampled_from([AccessType.READ, AccessType.WRITE]),
        address=st.integers(min_value=0, max_value=2**40).map(lambda x: x * 8),
        value=st.integers(min_value=0, max_value=2**64 - 1),
    ),
    max_size=50,
)


class TestRoundTrip:
    def test_simple(self, tmp_path):
        trace = [
            MemoryAccess(icount=0, kind=AccessType.WRITE, address=8, value=1),
            MemoryAccess(icount=2, kind=AccessType.READ, address=0),
        ]
        path = tmp_path / "t.bin"
        assert write_binary_trace(path, trace) == 2
        assert list(read_binary_trace(path)) == trace

    @given(trace=_accesses)
    def test_property_roundtrip(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("bin") / "t.bin"
        write_binary_trace(path, trace)
        assert list(read_binary_trace(path)) == trace


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 25)
        with pytest.raises(TraceFormatError, match="bad magic"):
            list(read_binary_trace(path))

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.bin"
        path.write_bytes(MAGIC + b"\x00" * 10)
        with pytest.raises(TraceFormatError, match="truncated"):
            list(read_binary_trace(path))

    def test_bad_kind_byte(self, tmp_path):
        import struct

        path = tmp_path / "kind.bin"
        record = struct.pack("<QBQQ", 0, 7, 0, 0)
        path.write_bytes(MAGIC + record)
        with pytest.raises(TraceFormatError, match="bad kind"):
            list(read_binary_trace(path))

    def test_empty_file_ok(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(MAGIC)
        assert list(read_binary_trace(path)) == []

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(MAGIC[:3])
        with pytest.raises(TraceFormatError, match="truncated header"):
            list(read_binary_trace(path))

    def test_error_names_record_and_offset(self, tmp_path):
        import struct

        path = tmp_path / "kind.bin"
        good = struct.pack("<QBQQ", 0, 1, 8, 0)
        bad = struct.pack("<QBQQ", 1, 7, 8, 0)
        path.write_bytes(MAGIC + good + bad)
        with pytest.raises(
            TraceFormatError, match=r"record #1 at byte offset 33"
        ):
            list(read_binary_trace(path))


SAMPLE = [
    MemoryAccess(icount=0, kind=AccessType.WRITE, address=8, value=1),
    MemoryAccess(icount=2, kind=AccessType.READ, address=0),
    MemoryAccess(icount=5, kind=AccessType.WRITE, address=16, value=99),
]


class TestCrcVariant:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.bin"
        assert write_binary_trace(path, SAMPLE, crc=True) == 3
        assert path.read_bytes()[:8] == MAGIC_CRC
        assert list(read_binary_trace(path)) == SAMPLE

    @given(trace=_accesses)
    def test_property_roundtrip(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("crc") / "t.bin"
        write_binary_trace(path, trace, crc=True)
        assert list(read_binary_trace(path)) == trace

    def test_records_are_29_bytes(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary_trace(path, SAMPLE, crc=True)
        assert path.stat().st_size == 8 + 29 * len(SAMPLE)

    def test_bit_rot_detected_with_offsets(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary_trace(path, SAMPLE, crc=True)
        # Flip one bit inside the *body* of record #1 (offset 8 + 29 + 2).
        flip_bit(path, byte_offset=8 + 29 + 2, bit=5)
        with pytest.raises(
            TraceFormatError, match=r"CRC mismatch in record #1 at byte offset 37"
        ) as excinfo:
            list(read_binary_trace(path))
        assert "stored 0x" in str(excinfo.value)

    def test_corrupt_crc_field_itself_detected(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary_trace(path, SAMPLE, crc=True)
        flip_bit(path, byte_offset=-1, bit=0)  # last CRC byte
        with pytest.raises(TraceFormatError, match=r"record #2"):
            list(read_binary_trace(path))

    def test_truncation_detected_with_offsets(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary_trace(path, SAMPLE, crc=True)
        truncate_file(path, keep_bytes=8 + 29 + 10)
        with pytest.raises(
            TraceFormatError,
            match=r"truncated record #1 at byte offset 37 \(10 of 29 bytes\)",
        ):
            list(read_binary_trace(path))

    def test_records_before_corruption_still_readable(self, tmp_path):
        path = tmp_path / "t.bin"
        write_binary_trace(path, SAMPLE, crc=True)
        flip_bit(path, byte_offset=-1, bit=0)
        reader = read_binary_trace(path)
        assert next(reader) == SAMPLE[0]
        assert next(reader) == SAMPLE[1]
        with pytest.raises(TraceFormatError):
            next(reader)
