"""Unit and property tests for the binary trace format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.trace.binio import MAGIC, read_binary_trace, write_binary_trace
from repro.trace.record import AccessType, MemoryAccess

_accesses = st.lists(
    st.builds(
        MemoryAccess,
        icount=st.integers(min_value=0, max_value=2**40),
        kind=st.sampled_from([AccessType.READ, AccessType.WRITE]),
        address=st.integers(min_value=0, max_value=2**40).map(lambda x: x * 8),
        value=st.integers(min_value=0, max_value=2**64 - 1),
    ),
    max_size=50,
)


class TestRoundTrip:
    def test_simple(self, tmp_path):
        trace = [
            MemoryAccess(icount=0, kind=AccessType.WRITE, address=8, value=1),
            MemoryAccess(icount=2, kind=AccessType.READ, address=0),
        ]
        path = tmp_path / "t.bin"
        assert write_binary_trace(path, trace) == 2
        assert list(read_binary_trace(path)) == trace

    @given(trace=_accesses)
    def test_property_roundtrip(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("bin") / "t.bin"
        write_binary_trace(path, trace)
        assert list(read_binary_trace(path)) == trace


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 25)
        with pytest.raises(TraceFormatError, match="bad magic"):
            list(read_binary_trace(path))

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.bin"
        path.write_bytes(MAGIC + b"\x00" * 10)
        with pytest.raises(TraceFormatError, match="truncated"):
            list(read_binary_trace(path))

    def test_bad_kind_byte(self, tmp_path):
        import struct

        path = tmp_path / "kind.bin"
        record = struct.pack("<QBQQ", 0, 7, 0, 0)
        path.write_bytes(MAGIC + record)
        with pytest.raises(TraceFormatError, match="bad kind"):
            list(read_binary_trace(path))

    def test_empty_file_ok(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(MAGIC)
        assert list(read_binary_trace(path)) == []
