"""Unit tests for the text trace format."""

import pytest

from repro.errors import TraceFormatError
from repro.trace.record import AccessType, MemoryAccess
from repro.trace.textio import read_text_trace, write_text_trace


def _sample_trace():
    return [
        MemoryAccess(icount=1, kind=AccessType.READ, address=0x100),
        MemoryAccess(icount=4, kind=AccessType.WRITE, address=0x108, value=0xBEEF),
        MemoryAccess(icount=9, kind=AccessType.READ, address=0x0),
    ]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "trace.txt"
        written = write_text_trace(path, _sample_trace())
        assert written == 3
        assert list(read_text_trace(path)) == _sample_trace()

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        assert write_text_trace(path, []) == 0
        assert list(read_text_trace(path)) == []


class TestPropertyRoundTrip:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    _accesses = st.lists(
        st.builds(
            MemoryAccess,
            icount=st.integers(min_value=0, max_value=2**40),
            kind=st.sampled_from([AccessType.READ, AccessType.WRITE]),
            address=st.integers(min_value=0, max_value=2**40).map(
                lambda x: x * 8
            ),
            value=st.integers(min_value=0, max_value=2**63),
        ),
        max_size=40,
    )

    @settings(max_examples=40, deadline=None)
    @given(trace=_accesses)
    def test_any_trace_roundtrips(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("txt") / "t.trc"
        write_text_trace(path, trace)
        assert list(read_text_trace(path)) == trace


class TestParsing:
    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# comment\n\n3 R 0x10\n")
        records = list(read_text_trace(path))
        assert len(records) == 1
        assert records[0].address == 0x10

    def test_read_value_optional(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("3 R 0x10\n")
        assert list(read_text_trace(path))[0].value == 0

    def test_decimal_addresses_accepted(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("3 R 16\n")
        assert list(read_text_trace(path))[0].address == 16

    def test_write_without_value_rejected(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("3 W 0x10\n")
        with pytest.raises(TraceFormatError, match="missing its value"):
            list(read_text_trace(path))

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("3 R\n")
        with pytest.raises(TraceFormatError, match="expected 3 or 4"):
            list(read_text_trace(path))

    def test_bad_kind(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("3 Q 0x10\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            list(read_text_trace(path))

    def test_unaligned_address_reported_with_line(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("1 R 0x10\n2 R 0x11\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            list(read_text_trace(path))
