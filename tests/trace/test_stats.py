"""Unit tests for TraceStatistics (Figures 3/4/5 machinery)."""

import pytest

from repro.trace.record import AccessType, MemoryAccess
from repro.trace.stats import ScenarioBreakdown, TraceStatistics, collect_statistics


def R(icount, address):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


def W(icount, address, value):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


def same_set(_address):
    """Set mapping that puts everything in one set."""
    return 0


def by_64(address):
    """Set mapping with 64-byte granularity."""
    return address // 64


class TestCounts:
    def test_read_write_counts(self):
        stats = collect_statistics([R(1, 0), W(2, 8, 5), R(3, 16)])
        assert stats.reads == 2
        assert stats.writes == 1
        assert stats.accesses == 3

    def test_instruction_span(self):
        stats = collect_statistics([R(10, 0), R(29, 8)])
        assert stats.instructions == 20

    def test_frequencies(self):
        stats = collect_statistics([R(0, 0), W(9, 8, 1)])
        assert stats.read_frequency == pytest.approx(0.1)
        assert stats.write_frequency == pytest.approx(0.1)
        assert stats.memory_access_frequency == pytest.approx(0.2)

    def test_empty_trace(self):
        stats = collect_statistics([])
        assert stats.instructions == 0
        assert stats.read_frequency == 0.0
        assert stats.silent_write_fraction == 0.0


class TestSilentWrites:
    def test_first_zero_write_is_silent(self):
        stats = collect_statistics([W(0, 0, 0)])
        assert stats.silent_writes == 1

    def test_repeat_value_is_silent(self):
        stats = collect_statistics([W(0, 0, 7), W(1, 0, 7)])
        assert stats.silent_writes == 1
        assert stats.silent_write_fraction == 0.5

    def test_changing_value_not_silent(self):
        stats = collect_statistics([W(0, 0, 7), W(1, 0, 8), W(2, 0, 7)])
        assert stats.silent_writes == 0

    def test_different_words_tracked_separately(self):
        stats = collect_statistics([W(0, 0, 7), W(1, 8, 7), W(2, 0, 7)])
        assert stats.silent_writes == 1  # only the third repeats word 0


class TestScenarios:
    def test_all_four_scenarios(self):
        trace = [R(0, 0), R(1, 8), W(2, 16, 1), W(3, 24, 2), R(4, 0)]
        stats = collect_statistics(trace, same_set)
        assert stats.scenarios.read_read == 1
        assert stats.scenarios.read_write == 1
        assert stats.scenarios.write_write == 1
        assert stats.scenarios.write_read == 1
        assert stats.scenarios.total_pairs == 4
        assert stats.scenarios.same_set_share == 1.0

    def test_different_sets_not_counted(self):
        trace = [R(0, 0), R(1, 64), R(2, 128)]
        stats = collect_statistics(trace, by_64)
        assert stats.scenarios.same_set_pairs == 0
        assert stats.scenarios.total_pairs == 2

    def test_mixed_sets(self):
        trace = [R(0, 0), R(1, 8), R(2, 64)]
        stats = collect_statistics(trace, by_64)
        assert stats.scenarios.read_read == 1
        assert stats.scenarios.same_set_share == pytest.approx(0.5)

    def test_no_mapping_no_scenarios(self):
        stats = collect_statistics([R(0, 0), R(1, 8)])
        assert stats.scenarios.same_set_pairs == 0
        assert stats.scenarios.total_pairs == 1

    def test_share_unknown_scenario_rejected(self):
        breakdown = ScenarioBreakdown()
        with pytest.raises(ValueError):
            breakdown.share("XX")

    def test_share_names(self):
        trace = [W(0, 0, 1), W(1, 8, 2)]
        stats = collect_statistics(trace, same_set)
        assert stats.scenarios.share("WW") == 1.0
        assert stats.scenarios.share("RR") == 0.0


class TestIncremental:
    def test_observe_matches_collect(self):
        trace = [R(0, 0), W(3, 8, 4), R(5, 8), W(9, 8, 4)]
        incremental = TraceStatistics(set_index_fn=same_set)
        for access in trace:
            incremental.observe(access)
        batch = collect_statistics(trace, same_set)
        assert incremental.reads == batch.reads
        assert incremental.silent_writes == batch.silent_writes
        assert incremental.scenarios == batch.scenarios

    def test_write_share_of_accesses(self):
        stats = collect_statistics([R(0, 0), W(1, 0, 1), W(2, 0, 2), R(3, 0)])
        assert stats.write_share_of_accesses == pytest.approx(0.5)
