"""Unit tests for workload profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.profile import StreamSpec, WorkloadProfile


def _profile(**overrides):
    defaults = dict(
        name="test",
        read_frequency=0.26,
        write_frequency=0.14,
        silent_fraction=0.4,
        burst_mean=3.0,
        type_persistence=0.5,
        streams=(StreamSpec("sequential", weight=1.0),),
    )
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


class TestStreamSpec:
    def test_region_words(self):
        assert StreamSpec("random", 1.0, region_kib=8).region_words == 1024

    def test_weight_positive(self):
        with pytest.raises(ConfigurationError):
            StreamSpec("random", 0.0)

    def test_region_positive(self):
        with pytest.raises(ConfigurationError):
            StreamSpec("random", 1.0, region_kib=0)

    def test_write_bias_non_negative(self):
        with pytest.raises(ConfigurationError):
            StreamSpec("random", 1.0, write_bias=-0.1)

    def test_hotspot_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            StreamSpec("hotspot", 1.0, hot_words=0)
        with pytest.raises(ConfigurationError):
            StreamSpec("hotspot", 1.0, hot_probability=2.0)


class TestWorkloadProfile:
    def test_derived_quantities(self):
        profile = _profile()
        assert profile.memory_fraction == pytest.approx(0.40)
        assert profile.write_share == pytest.approx(0.35)
        assert profile.footprint_kib == 256

    def test_name_required(self):
        with pytest.raises(ConfigurationError):
            _profile(name="")

    def test_frequencies_bounded(self):
        with pytest.raises(ConfigurationError):
            _profile(read_frequency=0.0)
        with pytest.raises(ConfigurationError):
            _profile(read_frequency=0.7, write_frequency=0.4)

    def test_silent_fraction_bounded(self):
        with pytest.raises(ConfigurationError):
            _profile(silent_fraction=-0.1)

    def test_burst_mean_at_least_one(self):
        with pytest.raises(ConfigurationError):
            _profile(burst_mean=0.5)

    def test_persistence_bounded(self):
        with pytest.raises(ConfigurationError):
            _profile(type_persistence=1.1)

    def test_needs_streams(self):
        with pytest.raises(ConfigurationError):
            _profile(streams=())

    def test_frozen(self):
        profile = _profile()
        with pytest.raises(AttributeError):
            profile.burst_mean = 5.0
