"""Unit tests for the store-value model."""

import pytest

from repro.utils.rng import DeterministicRNG
from repro.workload.values import ValueModel


class TestSilentRate:
    def test_calibrated_rate(self):
        model = ValueModel(0.4, DeterministicRNG(1))
        for i in range(5000):
            model.value_for_write((i % 50) * 8)
        assert 0.36 < model.observed_silent_fraction < 0.44

    def test_zero_rate(self):
        model = ValueModel(0.0, DeterministicRNG(2))
        for _ in range(100):
            model.value_for_write(0)
        assert model.silent_writes == 0

    def test_full_rate(self):
        model = ValueModel(1.0, DeterministicRNG(3))
        values = [model.value_for_write(0) for _ in range(10)]
        assert values == [0] * 10  # memory starts zeroed
        assert model.observed_silent_fraction == 1.0

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            ValueModel(1.5, DeterministicRNG(0))


class TestSemantics:
    def test_silent_write_repeats_current_value(self):
        model = ValueModel(0.0, DeterministicRNG(4))
        first = model.value_for_write(0x40)
        assert model.current_value(0x40) == first
        silent_model = ValueModel(1.0, DeterministicRNG(5))
        assert silent_model.value_for_write(0x40) == 0

    def test_fresh_values_are_distinct(self):
        model = ValueModel(0.0, DeterministicRNG(6))
        values = [model.value_for_write(i * 8) for i in range(50)]
        assert len(set(values)) == 50

    def test_silent_classification_matches_trace_stats(self):
        """Values from the model reproduce its silent rate when measured
        by TraceStatistics — the two silent definitions agree."""
        from repro.trace.record import AccessType, MemoryAccess
        from repro.trace.stats import collect_statistics

        model = ValueModel(0.5, DeterministicRNG(7))
        trace = []
        for i in range(2000):
            address = (i % 40) * 8
            trace.append(
                MemoryAccess(
                    icount=i,
                    kind=AccessType.WRITE,
                    address=address,
                    value=model.value_for_write(address),
                )
            )
        stats = collect_statistics(trace)
        assert stats.silent_writes == model.silent_writes

    def test_empty_model(self):
        model = ValueModel(0.5, DeterministicRNG(8))
        assert model.observed_silent_fraction == 0.0
        assert model.current_value(0) == 0
