"""Unit tests for the SPEC 2006 profile registry."""

import pytest

from repro.workload.spec2006 import SPEC2006_PROFILES, benchmark_names, get_profile


class TestRegistry:
    def test_twenty_five_benchmarks(self):
        """The paper runs 25 of the 29 SPEC CPU2006 benchmarks."""
        assert len(SPEC2006_PROFILES) == 25

    def test_highlighted_benchmarks_present(self):
        for name in ("bwaves", "wrf", "lbm", "gamess", "cactusADM", "mcf"):
            assert name in SPEC2006_PROFILES

    def test_dropped_benchmarks_absent(self):
        for name in ("dealII", "tonto", "omnetpp", "xalancbmk"):
            assert name not in SPEC2006_PROFILES

    def test_names_sorted(self):
        names = benchmark_names()
        assert names == sorted(names)

    def test_get_profile(self):
        assert get_profile("bwaves").name == "bwaves"

    def test_get_unknown(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            get_profile("specjbb")


class TestProfileShapes:
    def test_all_profiles_valid_and_named(self):
        for name, profile in SPEC2006_PROFILES.items():
            assert profile.name == name
            assert profile.streams
            assert profile.description

    def test_average_frequencies_near_paper(self):
        """Figure 3 averages: 26 % reads, 14 % writes per instruction."""
        profiles = SPEC2006_PROFILES.values()
        mean_read = sum(p.read_frequency for p in profiles) / len(profiles)
        mean_write = sum(p.write_frequency for p in profiles) / len(profiles)
        assert 0.24 <= mean_read <= 0.29
        assert 0.12 <= mean_write <= 0.16

    def test_bwaves_is_write_intensive(self):
        """Figure 3: bwaves writes exceed 22 % of instructions... wait,
        the paper says 'more than 22%' — our profile targets that."""
        assert get_profile("bwaves").write_frequency > 0.20

    def test_average_silence_near_paper(self):
        """Figure 5 average: ~42 % silent writes."""
        profiles = SPEC2006_PROFILES.values()
        mean_silent = sum(p.silent_fraction for p in profiles) / len(profiles)
        assert 0.38 <= mean_silent <= 0.52

    def test_bwaves_silence_tops_suite(self):
        """Figure 5: bwaves at 77 %."""
        silent = {n: p.silent_fraction for n, p in SPEC2006_PROFILES.items()}
        assert silent["bwaves"] == max(silent.values())
        assert silent["bwaves"] == pytest.approx(0.77, abs=0.02)

    def test_streaming_trio_is_burstiest(self):
        """bwaves/lbm/wrf carry the long write bursts WG harvests."""
        bursts = {n: p.burst_mean for n, p in SPEC2006_PROFILES.items()}
        top3 = sorted(bursts, key=bursts.get, reverse=True)[:3]
        assert set(top3) == {"bwaves", "lbm", "wrf"}

    def test_mcf_has_lowest_locality(self):
        bursts = {n: p.burst_mean for n, p in SPEC2006_PROFILES.items()}
        assert bursts["mcf"] == min(bursts.values())
