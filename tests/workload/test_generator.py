"""Unit tests for the synthetic trace generator."""

import pytest

from repro.trace.record import WORD_BYTES
from repro.trace.stats import collect_statistics
from repro.workload.generator import SyntheticTraceGenerator, generate_trace
from repro.workload.profile import StreamSpec, WorkloadProfile


def _profile(**overrides):
    defaults = dict(
        name="gen-test",
        read_frequency=0.26,
        write_frequency=0.14,
        silent_fraction=0.4,
        burst_mean=3.0,
        type_persistence=0.5,
        streams=(
            StreamSpec("sequential", weight=2.0, region_kib=64),
            StreamSpec("random", weight=1.0, region_kib=64),
        ),
    )
    defaults.update(overrides)
    return WorkloadProfile(**defaults)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        assert generate_trace(_profile(), 500, seed=3) == generate_trace(
            _profile(), 500, seed=3
        )

    def test_different_seed_different_trace(self):
        assert generate_trace(_profile(), 500, seed=3) != generate_trace(
            _profile(), 500, seed=4
        )

    def test_prefix_stability(self):
        """A longer trace starts with the shorter trace."""
        short = generate_trace(_profile(), 200, seed=5)
        long = generate_trace(_profile(), 400, seed=5)
        assert long[:200] == short


class TestWellFormedness:
    def test_count(self):
        assert len(generate_trace(_profile(), 321)) == 321

    def test_alignment_and_monotonic_icount(self):
        trace = generate_trace(_profile(), 500)
        previous = -1
        for access in trace:
            assert access.address % WORD_BYTES == 0
            assert access.icount > previous
            previous = access.icount

    def test_positive_count_required(self):
        generator = SyntheticTraceGenerator(_profile())
        with pytest.raises(ValueError):
            list(generator.generate(0))

    def test_streams_have_disjoint_regions(self):
        trace = generate_trace(_profile(), 2000, seed=9)
        # Two streams -> two distinct 1 GiB-aligned bases.
        bases = {access.address >> 30 for access in trace}
        assert len(bases) == 2


class TestStatisticalTargets:
    def test_memory_fraction(self):
        profile = _profile()
        stats = collect_statistics(generate_trace(profile, 20_000, seed=1))
        assert stats.memory_access_frequency == pytest.approx(
            profile.memory_fraction, rel=0.1
        )

    def test_write_share(self):
        profile = _profile()
        stats = collect_statistics(generate_trace(profile, 20_000, seed=1))
        assert stats.write_share_of_accesses == pytest.approx(
            profile.write_share, abs=0.06
        )

    def test_silent_fraction(self):
        profile = _profile(silent_fraction=0.6)
        stats = collect_statistics(generate_trace(profile, 20_000, seed=2))
        assert stats.silent_write_fraction == pytest.approx(0.6, abs=0.06)

    def test_write_bias_shifts_mix(self):
        """A write-biased stream raises the overall write share."""
        hot = _profile(
            streams=(StreamSpec("sequential", weight=1.0, write_bias=2.5),)
        )
        cold = _profile(
            streams=(StreamSpec("sequential", weight=1.0, write_bias=0.2),)
        )
        hot_stats = collect_statistics(generate_trace(hot, 10_000, seed=3))
        cold_stats = collect_statistics(generate_trace(cold, 10_000, seed=3))
        assert (
            hot_stats.write_share_of_accesses
            > cold_stats.write_share_of_accesses + 0.2
        )

    def test_burstiness_raises_same_set_share(self):
        from repro.cache.address import AddressMapper
        from repro.cache.config import BASELINE_GEOMETRY

        mapper = AddressMapper(BASELINE_GEOMETRY)
        bursty = _profile(burst_mean=8.0)
        choppy = _profile(burst_mean=1.0)
        bursty_stats = collect_statistics(
            generate_trace(bursty, 10_000, seed=4), mapper.set_index
        )
        choppy_stats = collect_statistics(
            generate_trace(choppy, 10_000, seed=4), mapper.set_index
        )
        assert (
            bursty_stats.scenarios.same_set_share
            > choppy_stats.scenarios.same_set_share
        )

    def test_value_model_exposed(self):
        generator = SyntheticTraceGenerator(_profile(), seed=6)
        list(generator.generate(1000))
        assert generator.value_model.total_writes > 0
