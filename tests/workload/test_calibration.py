"""Shape-level calibration tests against the paper's reported numbers.

Per the reproduction brief, absolute numbers need not match the paper's
Pin/SPEC measurements, but the *shape* must: who wins, by roughly what
factor, and where the crossovers fall.  These tests pin the shape with
tolerance bands around every quantitative statement the paper makes.

Trace lengths are kept modest so the suite stays fast; the bands are
wide enough to be seed-stable.
"""

import pytest

from repro.cache.address import AddressMapper
from repro.cache.config import BASELINE_GEOMETRY
from repro.sim.campaign import run_campaign
from repro.sim.experiment import ExperimentConfig
from repro.trace.stats import collect_statistics
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import benchmark_names, get_profile

ACCESSES = 12_000
SEED = 2012

# A representative subset keeps the campaign tests quick while spanning
# the suite's behaviour range (streaming, integer, pointer, stencil).
SUBSET = (
    "bwaves", "lbm", "wrf", "libquantum", "gamess", "cactusADM",
    "mcf", "gcc", "hmmer", "sjeng", "soplex", "sphinx3",
)


@pytest.fixture(scope="module")
def campaign():
    config = ExperimentConfig(
        geometry=BASELINE_GEOMETRY,
        benchmarks=SUBSET,
        accesses_per_benchmark=ACCESSES,
        seed=SEED,
    )
    return run_campaign(config)


@pytest.fixture(scope="module")
def suite_stats():
    mapper = AddressMapper(BASELINE_GEOMETRY)
    stats = {}
    for name in benchmark_names():
        trace = generate_trace(get_profile(name), ACCESSES, seed=SEED)
        stats[name] = collect_statistics(trace, mapper.set_index)
    return stats


class TestFigure3Shape:
    def test_suite_averages(self, suite_stats):
        reads = [s.read_frequency for s in suite_stats.values()]
        writes = [s.write_frequency for s in suite_stats.values()]
        assert 0.22 <= sum(reads) / len(reads) <= 0.31  # paper: 0.26
        assert 0.11 <= sum(writes) / len(writes) <= 0.18  # paper: 0.14

    def test_bwaves_write_intensive(self, suite_stats):
        """Paper: bwaves writes exceed 22 % of instructions."""
        assert suite_stats["bwaves"].write_frequency > 0.19

    def test_bwaves_has_top_write_frequency(self, suite_stats):
        write_freqs = {n: s.write_frequency for n, s in suite_stats.items()}
        top2 = sorted(write_freqs, key=write_freqs.get, reverse=True)[:2]
        assert "bwaves" in top2


class TestFigure4Shape:
    def test_ww_peaks_for_bwaves(self, suite_stats):
        ww = {n: s.scenarios.share("WW") for n, s in suite_stats.items()}
        top = sorted(ww, key=ww.get, reverse=True)[:3]
        assert "bwaves" in top
        assert 0.15 <= ww["bwaves"] <= 0.38  # paper: 0.24

    def test_same_set_share_substantial(self, suite_stats):
        """Paper: 27 % of consecutive accesses hit the same set.  Our
        generators land somewhat higher (see EXPERIMENTS.md) but in the
        same regime."""
        shares = [s.scenarios.same_set_share for s in suite_stats.values()]
        mean = sum(shares) / len(shares)
        assert 0.25 <= mean <= 0.50

    def test_rr_and_ww_dominate(self, suite_stats):
        """Paper: RR and WW are the largest same-set scenarios in almost
        all benchmarks."""
        dominant_count = 0
        for stats in suite_stats.values():
            shares = {
                s: stats.scenarios.share(s) for s in ("RR", "RW", "WW", "WR")
            }
            top2 = sorted(shares, key=shares.get, reverse=True)[:2]
            if set(top2) == {"RR", "WW"}:
                dominant_count += 1
        assert dominant_count >= len(suite_stats) * 0.6


class TestFigure5Shape:
    def test_mean_silent_fraction(self, suite_stats):
        fractions = [s.silent_write_fraction for s in suite_stats.values()]
        assert 0.38 <= sum(fractions) / len(fractions) <= 0.52  # paper: >0.42

    def test_bwaves_silent_fraction(self, suite_stats):
        assert suite_stats["bwaves"].silent_write_fraction == pytest.approx(
            0.77, abs=0.05
        )


class TestRMWOverheadClaim:
    def test_mean_overhead(self, campaign):
        """Paper: RMW raises access frequency by >32 % on average."""
        assert 0.25 <= campaign.mean_rmw_overhead <= 0.42

    def test_max_overhead(self, campaign):
        """Paper: max 47 %."""
        assert 0.42 <= campaign.max_rmw_overhead <= 0.55

    def test_bwaves_is_the_max(self, campaign):
        overheads = {row.benchmark: row.rmw_overhead for row in campaign.rows}
        assert max(overheads, key=overheads.get) in ("bwaves", "lbm")


class TestFigure9Shape:
    def test_mean_reductions(self, campaign):
        """Paper: 27 % (WG) and 33 % (WG+RB) on average.  The subset
        over-represents streaming benchmarks so the band is generous."""
        assert 0.18 <= campaign.mean_reduction("wg") <= 0.36
        assert 0.24 <= campaign.mean_reduction("wg_rb") <= 0.43

    def test_wg_rb_beats_wg_everywhere(self, campaign):
        """Paper: WG+RB outperforms WG in all benchmarks."""
        for row in campaign.rows:
            assert row.access_reduction("wg_rb") >= row.access_reduction("wg")

    def test_bwaves_leads_wg(self, campaign):
        """Paper: 47 % reduction for bwaves, the suite maximum."""
        best = campaign.best_benchmark("wg")
        assert best in ("bwaves", "lbm", "wrf")
        assert campaign.row("bwaves").access_reduction("wg") >= 0.40

    def test_reductions_positive_everywhere(self, campaign):
        for row in campaign.rows:
            assert row.access_reduction("wg") > 0.0

    def test_read_bypass_winners(self, campaign):
        """Paper: gamess and cactusADM gain the most from RB (high RR)."""
        gains = {
            row.benchmark: row.access_reduction("wg_rb")
            - row.access_reduction("wg")
            for row in campaign.rows
        }
        top = sorted(gains, key=gains.get, reverse=True)[:4]
        assert "gamess" in top or "cactusADM" in top
