"""Unit and round-trip tests for profile fitting."""

import pytest

from repro.trace.stats import collect_statistics
from repro.workload.fitting import fit_profile
from repro.workload.generator import generate_trace
from repro.workload.kernels import run_kernel
from repro.workload.profile import WorkloadProfile
from repro.workload.spec2006 import get_profile


class TestValidation:
    def test_short_trace_rejected(self):
        trace = run_kernel("histogram", words=64)[:50]
        with pytest.raises(ValueError, match="at least 100"):
            fit_profile(trace)

    def test_read_only_trace_rejected(self):
        trace = [a for a in run_kernel("binary_search", words=512) if a.is_read]
        with pytest.raises(ValueError, match="both reads and writes"):
            fit_profile(trace[:500])


class TestEstimators:
    def test_frequencies_recovered(self):
        source = get_profile("gcc")
        trace = generate_trace(source, 15_000, seed=5)
        fitted = fit_profile(trace)
        assert fitted.read_frequency == pytest.approx(
            source.read_frequency, abs=0.06
        )
        assert fitted.write_frequency == pytest.approx(
            source.write_frequency, abs=0.06
        )

    def test_silent_fraction_recovered(self):
        source = get_profile("bwaves")  # 77 % silent
        trace = generate_trace(source, 15_000, seed=6)
        fitted = fit_profile(trace)
        assert fitted.silent_fraction == pytest.approx(0.77, abs=0.05)

    def test_burstiness_ordering_recovered(self):
        """bwaves (burst 5.5) must fit as burstier than mcf (1.5)."""
        bursty = fit_profile(generate_trace(get_profile("bwaves"), 12_000))
        choppy = fit_profile(generate_trace(get_profile("mcf"), 12_000))
        assert bursty.burst_mean > choppy.burst_mean + 1.0

    def test_persistence_ordering_recovered(self):
        sticky = fit_profile(generate_trace(get_profile("lbm"), 12_000))
        loose = fit_profile(generate_trace(get_profile("sjeng"), 12_000))
        assert sticky.type_persistence > loose.type_persistence

    def test_spatial_mix_reflects_source(self):
        """A streaming source fits with sequential-dominated streams."""
        fitted = fit_profile(
            generate_trace(get_profile("libquantum"), 12_000)
        )
        weights = {spec.kind: spec.weight for spec in fitted.streams}
        assert weights["sequential"] > weights["random"]


class TestRoundTrip:
    def test_regenerated_trace_matches_key_statistics(self):
        """Generate from the fitted profile; Figures 3/5-level stats
        should land near the original's."""
        source_trace = generate_trace(get_profile("wrf"), 15_000, seed=9)
        fitted = fit_profile(source_trace, name="wrf-fit")
        regenerated = generate_trace(fitted, 15_000, seed=10)
        source_stats = collect_statistics(source_trace)
        refit_stats = collect_statistics(regenerated)
        assert refit_stats.write_share_of_accesses == pytest.approx(
            source_stats.write_share_of_accesses, abs=0.08
        )
        assert refit_stats.silent_write_fraction == pytest.approx(
            source_stats.silent_write_fraction, abs=0.08
        )

    def test_fits_kernel_traces(self):
        """Kernel traces (the mechanistic source) are fittable too."""
        trace = run_kernel("stream_triad", words=3000)
        fitted = fit_profile(trace, name="triad-fit")
        assert isinstance(fitted, WorkloadProfile)
        assert fitted.name == "triad-fit"
        # Triad writes 1/3 of accesses.
        assert fitted.write_share == pytest.approx(1 / 3, abs=0.08)

    def test_fitted_profile_is_usable(self):
        """The fitted profile must drive the whole pipeline."""
        from repro.cache.config import BASELINE_GEOMETRY
        from repro.sim.comparison import compare_techniques

        fitted = fit_profile(generate_trace(get_profile("hmmer"), 8_000))
        trace = generate_trace(fitted, 5_000)
        comparison = compare_techniques(
            trace, BASELINE_GEOMETRY, techniques=("rmw", "wg")
        )
        assert comparison.access_reduction("wg") > 0.0
