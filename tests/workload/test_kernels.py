"""Unit tests for the instrumented real kernels."""

import pytest

from repro.trace.record import WORD_BYTES
from repro.trace.stats import collect_statistics
from repro.workload.kernels import (
    InstrumentedMemory,
    KERNEL_NAMES,
    run_kernel,
)


class TestInstrumentedMemory:
    def test_load_traces(self):
        memory = InstrumentedMemory(16)
        memory.poke(3, 42)
        assert memory.load(3) == 42
        assert len(memory.trace) == 1
        assert memory.trace[0].is_read
        assert memory.trace[0].address == 3 * WORD_BYTES

    def test_store_traces_value(self):
        memory = InstrumentedMemory(16)
        memory.store(2, 7)
        record = memory.trace[0]
        assert record.is_write
        assert record.value == 7
        assert memory.peek(2) == 7

    def test_poke_peek_untraced(self):
        memory = InstrumentedMemory(8)
        memory.poke(0, 5)
        assert memory.peek(0) == 5
        assert memory.trace == []

    def test_icounts_increase(self):
        memory = InstrumentedMemory(8)
        memory.load(0)
        memory.store(1, 1)
        assert memory.trace[1].icount > memory.trace[0].icount

    def test_size_validated(self):
        with pytest.raises(ValueError):
            InstrumentedMemory(0)


class TestKernels:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_each_kernel_produces_valid_trace(self, name):
        trace = run_kernel(name, words=512, seed=1)
        assert len(trace) > 100
        previous = -1
        for access in trace:
            assert access.address % WORD_BYTES == 0
            assert access.icount > previous
            previous = access.icount

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_kernels_deterministic(self, name):
        assert run_kernel(name, words=256, seed=3) == run_kernel(
            name, words=256, seed=3
        )

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_kernel("quicksort")

    def test_stream_triad_mix(self):
        """Triad: 2 loads per store (after initialisation pokes)."""
        stats = collect_statistics(run_kernel("stream_triad", words=900))
        assert stats.reads == 2 * stats.writes

    def test_insertion_sort_sorts(self):
        """The kernel's memory side-effect is actually a sorted array."""
        from repro.utils.rng import DeterministicRNG
        from repro.workload.kernels import _insertion_sort

        memory = InstrumentedMemory(256)
        _insertion_sort(memory, DeterministicRNG(5))
        values = [memory.peek(i) for i in range(256)]
        assert values == sorted(values)

    def test_insertion_sort_is_silent_rich(self):
        """Nearly-sorted input with duplicates -> many silent stores,
        the Figure 5 pattern."""
        stats = collect_statistics(run_kernel("insertion_sort", words=512))
        assert stats.silent_write_fraction > 0.2

    def test_histogram_counts_correct(self):
        from repro.utils.rng import DeterministicRNG
        from repro.workload.kernels import _histogram

        memory = InstrumentedMemory(256)
        _histogram(memory, DeterministicRNG(2))
        total = sum(memory.peek(i) for i in range(64))
        assert total == 256  # one increment per sample

    def test_linked_list_is_pointer_chasing(self):
        """Consecutive reads jump around: low spatial locality."""
        trace = run_kernel("linked_list", words=512)
        reads = [a for a in trace if a.is_read]
        jumps = [
            abs(b.address - a.address) for a, b in zip(reads, reads[1:])
        ]
        big_jumps = sum(1 for j in jumps if j > 4 * WORD_BYTES)
        assert big_jumps / len(jumps) > 0.5

    def test_checkpoint_is_silent_dominated(self):
        """Re-copying mostly-unchanged state is the canonical silent
        store pattern: the large majority of checkpoint writes repeat
        the value already in the shadow region."""
        stats = collect_statistics(run_kernel("checkpoint", words=1024))
        assert stats.silent_write_fraction > 0.5

    def test_binary_search_is_read_dominated(self):
        stats = collect_statistics(run_kernel("binary_search", words=1024))
        assert stats.reads > 5 * stats.writes

    def test_fifo_queue_conserves_items(self):
        """Consumer never passes the producer: head <= tail always."""
        from repro.utils.rng import DeterministicRNG
        from repro.workload.kernels import _fifo_queue

        memory = InstrumentedMemory(258)
        _fifo_queue(memory, DeterministicRNG(3))
        head = memory.peek(256)  # head slot = capacity
        tail = memory.peek(257)
        assert 0 <= head <= tail

    def test_fifo_queue_counters_group_well(self):
        """The hot head/tail counters produce Tag-Buffer write hits."""
        from repro.cache.config import CacheGeometry
        from repro.sim.simulator import run_simulation

        trace = run_kernel("fifo_queue", words=512)
        result = run_simulation(trace, "wg", CacheGeometry(4 * 1024, 4, 32))
        assert result.counts.grouped_write_fraction > 0.1

    def test_matmul_result_correct(self):
        from repro.utils.rng import DeterministicRNG
        from repro.workload.kernels import _matmul

        memory = InstrumentedMemory(3 * 16)
        _matmul(memory, DeterministicRNG(7))
        n = 4
        a = [[memory.peek(i * n + k) for k in range(n)] for i in range(n)]
        b = [[memory.peek(n * n + k * n + j) for j in range(n)] for k in range(n)]
        for i in range(n):
            for j in range(n):
                expected = sum(a[i][k] * b[k][j] for k in range(n))
                assert memory.peek(2 * n * n + i * n + j) == expected
