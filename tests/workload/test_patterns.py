"""Unit tests for address pattern engines."""

import pytest

from repro.trace.record import WORD_BYTES
from repro.utils.rng import DeterministicRNG
from repro.workload.patterns import (
    HotspotPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    make_pattern,
)


@pytest.fixture
def rng():
    return DeterministicRNG(0)


class TestSequential:
    def test_unit_stride(self, rng):
        pattern = SequentialPattern(base_address=0x1000, region_words=8)
        addresses = [pattern.next_address(rng) for _ in range(4)]
        assert addresses == [0x1000, 0x1008, 0x1010, 0x1018]

    def test_wraps(self, rng):
        pattern = SequentialPattern(base_address=0, region_words=3)
        addresses = [pattern.next_address(rng) for _ in range(4)]
        assert addresses[3] == addresses[0]

    def test_base_must_be_aligned(self):
        with pytest.raises(ValueError, match="aligned"):
            SequentialPattern(base_address=3, region_words=4)

    def test_region_positive(self):
        with pytest.raises(ValueError):
            SequentialPattern(base_address=0, region_words=0)


class TestStrided:
    def test_stride(self, rng):
        pattern = StridedPattern(base_address=0, region_words=64, stride_words=4)
        addresses = [pattern.next_address(rng) for _ in range(3)]
        assert addresses == [0, 4 * WORD_BYTES, 8 * WORD_BYTES]

    def test_wraps_modulo_region(self, rng):
        pattern = StridedPattern(base_address=0, region_words=8, stride_words=3)
        addresses = [pattern.next_address(rng) for _ in range(9)]
        words = [a // WORD_BYTES for a in addresses]
        assert all(0 <= w < 8 for w in words)

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            StridedPattern(base_address=0, region_words=8, stride_words=0)


class TestRandom:
    def test_stays_in_region(self, rng):
        pattern = RandomPattern(base_address=0x2000, region_words=16)
        for _ in range(200):
            address = pattern.next_address(rng)
            assert 0x2000 <= address < 0x2000 + 16 * WORD_BYTES
            assert address % WORD_BYTES == 0

    def test_covers_region(self, rng):
        pattern = RandomPattern(base_address=0, region_words=4)
        words = {pattern.next_address(rng) // WORD_BYTES for _ in range(200)}
        assert words == {0, 1, 2, 3}


class TestPointerChase:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            PointerChasePattern(base_address=0, region_words=6)

    def test_full_period_visits_every_word(self, rng):
        pattern = PointerChasePattern(base_address=0, region_words=16)
        words = [pattern.next_address(rng) // WORD_BYTES for _ in range(16)]
        assert sorted(words) == list(range(16))

    def test_not_sequential(self, rng):
        pattern = PointerChasePattern(base_address=0, region_words=64)
        addresses = [pattern.next_address(rng) for _ in range(8)]
        deltas = {b - a for a, b in zip(addresses, addresses[1:])}
        assert deltas != {WORD_BYTES}


class TestHotspot:
    def test_hot_bias(self, rng):
        pattern = HotspotPattern(
            base_address=0, region_words=1024, hot_words=4, hot_probability=0.9
        )
        hot_hits = sum(
            pattern.next_address(rng) < 4 * WORD_BYTES for _ in range(2000)
        )
        assert hot_hits / 2000 > 0.85

    def test_hot_words_clamped_to_region(self, rng):
        pattern = HotspotPattern(
            base_address=0, region_words=2, hot_words=100, hot_probability=1.0
        )
        for _ in range(20):
            assert pattern.next_address(rng) < 2 * WORD_BYTES

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            HotspotPattern(0, 16, hot_probability=1.5)


class TestFactory:
    def test_builds_each_kind(self):
        assert isinstance(make_pattern("sequential", 0, 8), SequentialPattern)
        assert isinstance(
            make_pattern("strided", 0, 8, stride_words=2), StridedPattern
        )
        assert isinstance(make_pattern("random", 0, 8), RandomPattern)
        assert isinstance(
            make_pattern("pointer_chase", 0, 8), PointerChasePattern
        )
        assert isinstance(make_pattern("hotspot", 0, 8), HotspotPattern)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            make_pattern("zigzag", 0, 8)
