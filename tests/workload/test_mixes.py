"""Unit tests for multiprogrammed trace mixes."""

import pytest

from repro.trace.record import AccessType, MemoryAccess
from repro.workload.mixes import merge_traces


def _trace(n, gap=1, base_address=0):
    return [
        MemoryAccess(
            icount=i * gap,
            kind=AccessType.READ,
            address=base_address + 8 * i,
        )
        for i in range(n)
    ]


class TestMergeBasics:
    def test_all_accesses_preserved(self):
        merged = merge_traces([_trace(10), _trace(7)], quantum_instructions=3)
        assert len(merged) == 17

    def test_single_trace_passthrough_order(self):
        original = _trace(8)
        merged = merge_traces([original], quantum_instructions=100)
        assert [a.address for a in merged] == [a.address for a in original]

    def test_icounts_strictly_increase(self):
        merged = merge_traces(
            [_trace(20, gap=2), _trace(15, gap=3)], quantum_instructions=5
        )
        icounts = [a.icount for a in merged]
        assert all(b > a for a, b in zip(icounts, icounts[1:]))

    def test_per_program_order_preserved(self):
        merged = merge_traces(
            [_trace(12), _trace(12, base_address=0)], quantum_instructions=4
        )
        # Program 1 addresses carry the 1 TiB offset.
        program0 = [a.address for a in merged if a.address < (1 << 40)]
        program1 = [a.address for a in merged if a.address >= (1 << 40)]
        assert program0 == sorted(program0)
        assert program1 == sorted(program1)

    def test_round_robin_interleaving(self):
        merged = merge_traces(
            [_trace(6), _trace(6)], quantum_instructions=2
        )
        # First slice: program 0's first two accesses, then program 1's.
        assert merged[0].address < (1 << 40)
        assert merged[2].address >= (1 << 40)


class TestAddressSpaces:
    def test_separate_spaces_disjoint(self):
        merged = merge_traces(
            [_trace(5), _trace(5)], quantum_instructions=2
        )
        spaces = {a.address >> 40 for a in merged}
        assert spaces == {0, 1}

    def test_shared_space_option(self):
        merged = merge_traces(
            [_trace(5), _trace(5)],
            quantum_instructions=2,
            separate_address_spaces=False,
        )
        assert all(a.address < (1 << 40) for a in merged)


class TestValidation:
    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_traces([], quantum_instructions=10)

    def test_quantum_positive(self):
        with pytest.raises(ValueError):
            merge_traces([_trace(3)], quantum_instructions=0)

    def test_empty_program_ok(self):
        merged = merge_traces([_trace(4), []], quantum_instructions=2)
        assert len(merged) == 4


class TestCorrectnessThroughControllers:
    def test_merged_trace_is_value_consistent(self):
        """The mixed stream still satisfies the memory oracle per
        program (address spaces are disjoint, so globally too)."""
        from repro.cache.cache import SetAssociativeCache
        from repro.cache.config import CacheGeometry
        from repro.core.registry import make_controller
        from repro.workload.generator import generate_trace
        from repro.workload.spec2006 import get_profile

        from tests.conftest import oracle_read_values

        traces = [
            generate_trace(get_profile("gcc"), 800, seed=1),
            generate_trace(get_profile("mcf"), 800, seed=2),
        ]
        merged = merge_traces(traces, quantum_instructions=50)
        controller = make_controller(
            "wg_rb", SetAssociativeCache(CacheGeometry(4 * 1024, 4, 32))
        )
        outcomes = controller.run(merged)
        expected = oracle_read_values(merged)
        for access, outcome, expect in zip(merged, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect
