"""Unit and property tests for replacement policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.utils.rng import DeterministicRNG


class TestLRU:
    def test_initial_victim_is_way_zero(self):
        assert LRUPolicy(4).victim() == 0

    def test_access_moves_to_mru(self):
        policy = LRUPolicy(4)
        policy.on_access(0)
        assert policy.victim() == 1

    def test_classic_sequence(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3, 0, 1):
            policy.on_access(way)
        assert policy.victim() == 2

    def test_recency_order_exposed(self):
        policy = LRUPolicy(3)
        policy.on_access(2)
        assert policy.recency_order() == [0, 1, 2]

    def test_bad_way_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy(2).on_access(2)

    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=60))
    def test_victim_is_least_recent_property(self, accesses):
        policy = LRUPolicy(4)
        last_touch = {way: -1 for way in range(4)}
        for step, way in enumerate(accesses):
            policy.on_access(way)
            last_touch[way] = step
        victim = policy.victim()
        assert last_touch[victim] == min(last_touch.values())


class TestFIFO:
    def test_hits_do_not_reorder(self):
        policy = FIFOPolicy(4)
        policy.on_access(0)
        policy.on_access(0)
        assert policy.victim() == 0

    def test_fill_moves_to_back(self):
        policy = FIFOPolicy(2)
        policy.on_fill(0)
        assert policy.victim() == 1
        policy.on_fill(1)
        assert policy.victim() == 0


class TestRandom:
    def test_in_range(self):
        policy = RandomPolicy(4, rng=DeterministicRNG(1))
        for _ in range(100):
            assert 0 <= policy.victim() < 4

    def test_deterministic_given_seed(self):
        a = RandomPolicy(4, rng=DeterministicRNG(5))
        b = RandomPolicy(4, rng=DeterministicRNG(5))
        assert [a.victim() for _ in range(20)] == [b.victim() for _ in range(20)]

    def test_covers_all_ways(self):
        policy = RandomPolicy(4, rng=DeterministicRNG(2))
        assert {policy.victim() for _ in range(200)} == {0, 1, 2, 3}


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(3)

    def test_single_way(self):
        policy = TreePLRUPolicy(1)
        policy.on_access(0)
        assert policy.victim() == 0

    def test_victim_never_most_recent(self):
        policy = TreePLRUPolicy(4)
        for way in (0, 3, 1, 2, 0):
            policy.on_access(way)
            assert policy.victim() != way

    def test_two_way_behaves_like_lru(self):
        plru = TreePLRUPolicy(2)
        lru = LRUPolicy(2)
        for way in (0, 1, 0, 0, 1):
            plru.on_access(way)
            lru.on_access(way)
            assert plru.victim() == lru.victim()

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60))
    def test_victim_in_range_property(self, accesses):
        policy = TreePLRUPolicy(8)
        for way in accesses:
            policy.on_access(way)
        assert 0 <= policy.victim() < 8

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60))
    def test_victim_is_not_last_access(self, accesses):
        policy = TreePLRUPolicy(8)
        for way in accesses:
            policy.on_access(way)
        assert policy.victim() != accesses[-1]


class TestRegistry:
    def test_known_names(self):
        assert isinstance(make_policy("lru", 4), LRUPolicy)
        assert isinstance(make_policy("FIFO", 4), FIFOPolicy)
        assert isinstance(make_policy("random", 4), RandomPolicy)
        assert isinstance(make_policy("plru", 4), TreePLRUPolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("clock", 4)
