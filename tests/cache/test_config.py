"""Unit tests for CacheGeometry."""

import pytest

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.errors import ConfigurationError


class TestBaseline:
    def test_paper_baseline(self):
        assert BASELINE_GEOMETRY.size_bytes == 64 * 1024
        assert BASELINE_GEOMETRY.associativity == 4
        assert BASELINE_GEOMETRY.block_bytes == 32
        assert BASELINE_GEOMETRY.address_bits == 48

    def test_baseline_derived(self):
        g = BASELINE_GEOMETRY
        assert g.num_blocks == 2048
        assert g.num_sets == 512
        assert g.words_per_block == 4
        assert g.words_per_set == 16
        assert g.set_bytes == 128  # the paper's Set-Buffer size
        assert g.offset_bits == 5
        assert g.index_bits == 9
        assert g.tag_bits == 34

    def test_describe(self):
        assert BASELINE_GEOMETRY.describe() == "64KB/4-way/32B"


class TestDerivedForVariants:
    def test_fig10_geometry(self):
        g = CacheGeometry(32 * 1024, 4, 64)
        assert g.num_sets == 128
        assert g.words_per_block == 8
        assert g.set_bytes == 256

    def test_fig11_large(self):
        g = CacheGeometry(128 * 1024, 4, 32)
        assert g.num_sets == 1024

    def test_direct_mapped(self):
        g = CacheGeometry(1024, 1, 32)
        assert g.num_sets == 32

    def test_fully_associative_single_set(self):
        g = CacheGeometry(256, 8, 32)
        assert g.num_sets == 1
        assert g.index_bits == 0


class TestValidation:
    def test_non_power_of_two_size(self):
        with pytest.raises(ConfigurationError, match="size_bytes"):
            CacheGeometry(48 * 1024, 4, 32)

    def test_non_power_of_two_ways(self):
        with pytest.raises(ConfigurationError, match="associativity"):
            CacheGeometry(64 * 1024, 3, 32)

    def test_block_smaller_than_word(self):
        with pytest.raises(ConfigurationError, match="word size"):
            CacheGeometry(1024, 1, 4)

    def test_cache_smaller_than_one_set(self):
        with pytest.raises(ConfigurationError, match="at least one set"):
            CacheGeometry(64, 4, 32)

    def test_address_bits_too_small(self):
        with pytest.raises(ConfigurationError, match="tag"):
            CacheGeometry(64 * 1024, 4, 32, address_bits=14)

    def test_zero_address_bits(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(1024, 1, 32, address_bits=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BASELINE_GEOMETRY.size_bytes = 1
