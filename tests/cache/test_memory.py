"""Unit tests for FunctionalMemory."""

from repro.cache.memory import FunctionalMemory


class TestWordAccess:
    def test_default_zero(self):
        memory = FunctionalMemory()
        assert memory.read_word(0x1000) == 0

    def test_write_then_read(self):
        memory = FunctionalMemory()
        memory.write_word(0x40, 77)
        assert memory.read_word(0x40) == 77

    def test_word_granularity(self):
        memory = FunctionalMemory()
        memory.write_word(0x40, 1)
        # Bytes 0x40..0x47 share a word.
        assert memory.read_word(0x47) == 1
        assert memory.read_word(0x48) == 0


class TestBlockTransfers:
    def test_read_block(self):
        memory = FunctionalMemory()
        memory.write_word(0x20, 5)
        memory.write_word(0x28, 6)
        assert memory.read_block(0x20, 4) == [5, 6, 0, 0]

    def test_write_block(self):
        memory = FunctionalMemory()
        memory.write_block(0x40, [1, 2, 3, 4])
        assert memory.read_word(0x48) == 2

    def test_transfer_counters(self):
        memory = FunctionalMemory()
        memory.read_block(0, 4)
        memory.read_block(0, 4)
        memory.write_block(0, [0] * 4)
        assert memory.block_reads == 2
        assert memory.block_writes == 1

    def test_roundtrip(self):
        memory = FunctionalMemory()
        data = [10, 20, 30, 40]
        memory.write_block(0x100, data)
        assert memory.read_block(0x100, 4) == data


class TestInspection:
    def test_footprint(self):
        memory = FunctionalMemory()
        memory.write_word(0, 1)
        memory.write_word(8, 1)
        memory.write_word(0, 2)
        assert memory.footprint_words == 2

    def test_snapshot_is_copy(self):
        memory = FunctionalMemory()
        memory.write_word(0, 1)
        snap = memory.snapshot()
        snap[0] = 99
        assert memory.read_word(0) == 1
