"""Unit tests for CacheBlock."""

import pytest

from repro.cache.block import CacheBlock


class TestLifecycle:
    def test_starts_invalid(self):
        block = CacheBlock(4)
        assert not block.valid
        assert not block.dirty
        assert block.tag is None

    def test_fill(self):
        block = CacheBlock(4)
        block.fill(tag=9, data=[1, 2, 3, 4])
        assert block.valid
        assert not block.dirty
        assert block.tag == 9
        assert block.data == [1, 2, 3, 4]

    def test_fill_copies_data(self):
        source = [1, 2, 3, 4]
        block = CacheBlock(4)
        block.fill(tag=0, data=source)
        source[0] = 99
        assert block.data[0] == 1

    def test_fill_wrong_size(self):
        block = CacheBlock(4)
        with pytest.raises(ValueError, match="words"):
            block.fill(tag=0, data=[1, 2])

    def test_invalidate(self):
        block = CacheBlock(2)
        block.fill(tag=1, data=[5, 6])
        block.write_word(0, 7)
        block.invalidate()
        assert not block.valid
        assert not block.dirty
        assert block.tag is None


class TestDataAccess:
    def test_read_write(self):
        block = CacheBlock(4)
        block.fill(tag=0, data=[0, 0, 0, 0])
        block.write_word(2, 42)
        assert block.read_word(2) == 42
        assert block.dirty

    def test_read_invalid_rejected(self):
        with pytest.raises(ValueError, match="invalid"):
            CacheBlock(4).read_word(0)

    def test_write_invalid_rejected(self):
        with pytest.raises(ValueError, match="invalid"):
            CacheBlock(4).write_word(0, 1)

    def test_matches(self):
        block = CacheBlock(4)
        assert not block.matches(0)
        block.fill(tag=3, data=[0] * 4)
        assert block.matches(3)
        assert not block.matches(4)
