"""Unit tests for the two-level hierarchy."""

import pytest

from repro.cache.config import CacheGeometry
from repro.cache.hierarchy import CacheBackedMemory, CacheHierarchy
from repro.cache.cache import SetAssociativeCache
from repro.core.registry import make_controller
from repro.errors import ConfigurationError

from tests.conftest import make_random_trace, oracle_final_memory, oracle_read_values

L1 = CacheGeometry(512, 2, 32)
L2 = CacheGeometry(4 * 1024, 4, 32)


class TestConstruction:
    def test_valid(self):
        hierarchy = CacheHierarchy(L1, L2)
        assert hierarchy.describe() == "L1 512B/2-way/32B + L2 4KB/4-way/32B"
        assert hierarchy.l1.geometry == L1
        assert hierarchy.l2.geometry == L2

    def test_l2_smaller_rejected(self):
        with pytest.raises(ConfigurationError, match="at least as large"):
            CacheHierarchy(L2, L1)

    def test_l2_blocks_smaller_rejected(self):
        with pytest.raises(ConfigurationError, match="blocks"):
            CacheHierarchy(
                CacheGeometry(512, 2, 64), CacheGeometry(4 * 1024, 4, 32)
            )


class TestAdapter:
    def test_block_roundtrip(self):
        adapter = CacheBackedMemory(SetAssociativeCache(L2))
        adapter.write_block(0x100, [1, 2, 3, 4])
        assert adapter.read_block(0x100, 4) == [1, 2, 3, 4]
        assert adapter.block_reads == 1
        assert adapter.block_writes == 1

    def test_words_default_zero(self):
        adapter = CacheBackedMemory(SetAssociativeCache(L2))
        assert adapter.read_word(0x4000) == 0


class TestAdapterStride:
    """The word stride of block transfers must come from the geometry,
    not a hardcoded 8 — a regression here writes the wrong L2 words."""

    @pytest.mark.parametrize("block_bytes", (32, 64, 128))
    def test_block_words_are_contiguous(self, block_bytes):
        geometry = CacheGeometry(8 * 1024, 4, block_bytes)
        adapter = CacheBackedMemory(SetAssociativeCache(geometry))
        words = list(range(1, geometry.words_per_block + 1))
        adapter.write_block(0x200, words)
        # Each word must land at consecutive word addresses.
        for offset, value in enumerate(words):
            assert adapter.read_word(0x200 + 8 * offset) == value
        assert adapter.read_block(0x200, geometry.words_per_block) == words

    def test_stride_matches_geometry(self):
        geometry = CacheGeometry(4 * 1024, 4, 64)
        adapter = CacheBackedMemory(SetAssociativeCache(geometry))
        expected = geometry.block_bytes // geometry.words_per_block
        assert adapter._word_stride == expected  # noqa: SLF001

    def test_wide_block_transfer_fidelity_through_hierarchy(self):
        """A 64 B-block L2 under a 32 B-block L1: every word the L1
        writes back must survive the round trip through the L2."""
        hierarchy = CacheHierarchy(
            CacheGeometry(512, 2, 32), CacheGeometry(8 * 1024, 4, 64)
        )
        controller = make_controller("conventional", hierarchy.l1)
        trace = make_random_trace(800, seed=23, word_span=300)
        controller.run(trace)
        hierarchy.drain()
        snapshot = {
            word: value
            for word, value in hierarchy.memory.snapshot().items()
            if value != 0
        }
        assert snapshot == oracle_final_memory(trace)


class TestAccounting:
    def test_l2_stats_split_reads_and_writes(self):
        hierarchy = CacheHierarchy(L1, L2)
        controller = make_controller("conventional", hierarchy.l1)
        trace = make_random_trace(1000, seed=24, word_span=400)
        controller.run(trace)
        stats = hierarchy.l2.stats
        # L1 fills appear as L2 reads; L1 write-backs as L2 writes.
        assert stats.read_hits + stats.read_misses > 0
        assert (
            stats.read_hits + stats.read_misses
            == hierarchy._l2_adapter.block_reads  # noqa: SLF001
            * L1.words_per_block
        )
        if hierarchy._l2_adapter.block_writes:  # noqa: SLF001
            assert stats.write_hits + stats.write_misses > 0

    def test_transfer_counter_sums_reads_and_writes(self):
        hierarchy = CacheHierarchy(L1, L2)
        controller = make_controller("rmw", hierarchy.l1)
        controller.run(make_random_trace(600, seed=25, word_span=300))
        adapter = hierarchy._l2_adapter  # noqa: SLF001
        assert (
            hierarchy.l1_to_l2_transfers
            == adapter.block_reads + adapter.block_writes
        )

    def test_equal_geometries_allowed(self):
        # The inclusive check is >=, not >: an equal-sized L2 is legal
        # (useful for adapter tests), just not a sensible hierarchy.
        hierarchy = CacheHierarchy(L1, L1)
        assert hierarchy.l1.geometry == hierarchy.l2.geometry


class TestEndToEnd:
    def test_controller_over_hierarchy_is_correct(self):
        """The full stack — WG+RB over L1 over L2 over memory — still
        satisfies the sequential-memory oracle."""
        hierarchy = CacheHierarchy(L1, L2)
        controller = make_controller("wg_rb", hierarchy.l1)
        trace = make_random_trace(600, seed=8, word_span=300)
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect
        hierarchy.drain()
        snapshot = {
            word: value
            for word, value in hierarchy.memory.snapshot().items()
            if value != 0
        }
        assert snapshot == oracle_final_memory(trace)

    def test_l2_filters_memory_traffic(self):
        """Most L1 misses hit the L2; flat memory sees far fewer block
        transfers than the L1 generated."""
        hierarchy = CacheHierarchy(L1, L2)
        controller = make_controller("rmw", hierarchy.l1)
        trace = make_random_trace(1500, seed=9, word_span=400)
        controller.run(trace)
        assert hierarchy.l1_to_l2_transfers > 0
        assert hierarchy.l2.stats.hit_rate > 0.5
        assert (
            hierarchy.memory.block_reads
            < hierarchy._l2_adapter.block_reads  # noqa: SLF001
        )

    def test_l2_hits_track_l1_misses(self):
        hierarchy = CacheHierarchy(L1, L2)
        controller = make_controller("conventional", hierarchy.l1)
        trace = make_random_trace(800, seed=10, word_span=200)
        controller.run(trace)
        # Every L1 fill is an L2 block read.
        assert hierarchy._l2_adapter.block_reads == (  # noqa: SLF001
            hierarchy.l1.stats.misses
        )
