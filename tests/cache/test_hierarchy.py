"""Unit tests for the two-level hierarchy."""

import pytest

from repro.cache.config import CacheGeometry
from repro.cache.hierarchy import CacheBackedMemory, CacheHierarchy
from repro.cache.cache import SetAssociativeCache
from repro.core.registry import make_controller
from repro.errors import ConfigurationError

from tests.conftest import make_random_trace, oracle_final_memory, oracle_read_values

L1 = CacheGeometry(512, 2, 32)
L2 = CacheGeometry(4 * 1024, 4, 32)


class TestConstruction:
    def test_valid(self):
        hierarchy = CacheHierarchy(L1, L2)
        assert hierarchy.describe() == "L1 512B/2-way/32B + L2 4KB/4-way/32B"
        assert hierarchy.l1.geometry == L1
        assert hierarchy.l2.geometry == L2

    def test_l2_smaller_rejected(self):
        with pytest.raises(ConfigurationError, match="at least as large"):
            CacheHierarchy(L2, L1)

    def test_l2_blocks_smaller_rejected(self):
        with pytest.raises(ConfigurationError, match="blocks"):
            CacheHierarchy(
                CacheGeometry(512, 2, 64), CacheGeometry(4 * 1024, 4, 32)
            )


class TestAdapter:
    def test_block_roundtrip(self):
        adapter = CacheBackedMemory(SetAssociativeCache(L2))
        adapter.write_block(0x100, [1, 2, 3, 4])
        assert adapter.read_block(0x100, 4) == [1, 2, 3, 4]
        assert adapter.block_reads == 1
        assert adapter.block_writes == 1

    def test_words_default_zero(self):
        adapter = CacheBackedMemory(SetAssociativeCache(L2))
        assert adapter.read_word(0x4000) == 0


class TestEndToEnd:
    def test_controller_over_hierarchy_is_correct(self):
        """The full stack — WG+RB over L1 over L2 over memory — still
        satisfies the sequential-memory oracle."""
        hierarchy = CacheHierarchy(L1, L2)
        controller = make_controller("wg_rb", hierarchy.l1)
        trace = make_random_trace(600, seed=8, word_span=300)
        outcomes = controller.run(trace)
        expected = oracle_read_values(trace)
        for access, outcome, expect in zip(trace, outcomes, expected):
            if access.is_read:
                assert outcome.value == expect
        hierarchy.drain()
        snapshot = {
            word: value
            for word, value in hierarchy.memory.snapshot().items()
            if value != 0
        }
        assert snapshot == oracle_final_memory(trace)

    def test_l2_filters_memory_traffic(self):
        """Most L1 misses hit the L2; flat memory sees far fewer block
        transfers than the L1 generated."""
        hierarchy = CacheHierarchy(L1, L2)
        controller = make_controller("rmw", hierarchy.l1)
        trace = make_random_trace(1500, seed=9, word_span=400)
        controller.run(trace)
        assert hierarchy.l1_to_l2_transfers > 0
        assert hierarchy.l2.stats.hit_rate > 0.5
        assert (
            hierarchy.memory.block_reads
            < hierarchy._l2_adapter.block_reads  # noqa: SLF001
        )

    def test_l2_hits_track_l1_misses(self):
        hierarchy = CacheHierarchy(L1, L2)
        controller = make_controller("conventional", hierarchy.l1)
        trace = make_random_trace(800, seed=10, word_span=200)
        controller.run(trace)
        # Every L1 fill is an L2 block read.
        assert hierarchy._l2_adapter.block_reads == (  # noqa: SLF001
            hierarchy.l1.stats.misses
        )
