"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.cache.memory import FunctionalMemory
from repro.trace.record import AccessType, MemoryAccess


def R(address, icount=0):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


def W(address, value, icount=0):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


@pytest.fixture
def cache(tiny_geometry):
    return SetAssociativeCache(tiny_geometry, FunctionalMemory())


class TestResidency:
    def test_cold_miss_then_hit(self, cache):
        first = cache.ensure_resident(R(0))
        assert not first.hit
        assert first.filled
        second = cache.ensure_resident(R(0))
        assert second.hit
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hits == 1

    def test_same_block_different_word_hits(self, cache):
        cache.ensure_resident(R(0))
        result = cache.ensure_resident(R(8))
        assert result.hit
        assert result.word_offset == 1

    def test_fill_brings_memory_data(self, cache):
        cache.memory.write_word(0x10, 1234)
        result = cache.ensure_resident(R(0x10))
        assert cache.read_word(result.set_index, result.way, result.word_offset) == 1234

    def test_conflict_eviction(self, cache):
        geometry = cache.geometry
        # Three blocks aliasing to set 0 in a 2-way cache.
        stride = geometry.num_sets * geometry.block_bytes
        for i in range(3):
            cache.ensure_resident(R(i * stride))
        assert cache.stats.evictions == 1
        # The first block was LRU and must be gone.
        assert cache.lookup(0) is None
        assert cache.lookup(2 * stride) is not None

    def test_dirty_eviction_writes_back(self, cache):
        geometry = cache.geometry
        stride = geometry.num_sets * geometry.block_bytes
        result = cache.ensure_resident(W(0, 55))
        cache.write_word(result.set_index, result.way, result.word_offset, 55)
        for i in range(1, 3):
            cache.ensure_resident(R(i * stride))
        assert cache.stats.dirty_evictions == 1
        assert cache.memory.read_word(0) == 55

    def test_clean_eviction_no_writeback(self, cache):
        geometry = cache.geometry
        stride = geometry.num_sets * geometry.block_bytes
        for i in range(3):
            cache.ensure_resident(R(i * stride))
        assert cache.stats.dirty_evictions == 0
        assert cache.memory.block_writes == 0


class TestDataPlane:
    def test_write_then_read(self, cache):
        result = cache.ensure_resident(W(0x20, 9))
        cache.write_word(result.set_index, result.way, result.word_offset, 9)
        assert cache.read_word(result.set_index, result.way, result.word_offset) == 9

    def test_read_set_data_shape(self, cache):
        cache.ensure_resident(R(0))
        data = cache.read_set_data(0)
        assert len(data) == cache.geometry.associativity
        assert all(len(way) == cache.geometry.words_per_block for way in data)

    def test_read_set_data_is_copy(self, cache):
        result = cache.ensure_resident(R(0))
        data = cache.read_set_data(result.set_index)
        data[result.way][0] = 999
        assert cache.read_word(result.set_index, result.way, 0) == 0

    def test_set_tags(self, cache):
        result = cache.ensure_resident(R(0))
        tags = cache.set_tags(result.set_index)
        assert tags[result.way] == cache.mapper.tag(0)

    def test_flush_all_dirty(self, cache):
        result = cache.ensure_resident(W(0, 7))
        cache.write_word(result.set_index, result.way, result.word_offset, 7)
        flushed = cache.flush_all_dirty()
        assert flushed == 1
        assert cache.memory.read_word(0) == 7
        assert cache.flush_all_dirty() == 0  # idempotent


class TestReplacementIntegration:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random", "plru"])
    def test_policies_work_end_to_end(self, tiny_geometry, policy):
        cache = SetAssociativeCache(tiny_geometry, replacement=policy)
        stride = tiny_geometry.num_sets * tiny_geometry.block_bytes
        for i in range(10):
            cache.ensure_resident(R(i * stride))
        assert cache.stats.misses == 10
        assert cache.stats.evictions == 8
        assert cache.replacement_name == policy


class TestOracleProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=127),
                st.integers(min_value=1, max_value=1000),
            ),
            max_size=120,
        )
    )
    def test_cache_reads_match_dict_model(self, operations):
        """Reads through the cache equal a plain dict memory model."""
        geometry = CacheGeometry(512, 2, 32)
        cache = SetAssociativeCache(geometry)
        model = {}
        for is_write, word, value in operations:
            address = word * 8
            if is_write:
                result = cache.ensure_resident(W(address, value))
                cache.write_word(
                    result.set_index, result.way, result.word_offset, value
                )
                model[word] = value
            else:
                result = cache.ensure_resident(R(address))
                observed = cache.read_word(
                    result.set_index, result.way, result.word_offset
                )
                assert observed == model.get(word, 0)
        # After draining, memory matches the model exactly.
        cache.flush_all_dirty()
        for word, value in model.items():
            assert cache.memory.read_word(word * 8) == value
