"""Unit tests for CacheSet."""

import pytest

from repro.cache.cache_set import CacheSet
from repro.cache.replacement import LRUPolicy


def make_set(ways=2, words=4):
    return CacheSet(ways, words, LRUPolicy(ways))


class TestLookup:
    def test_miss_on_empty(self):
        assert make_set().find_way(1) is None

    def test_hit_after_fill(self):
        cache_set = make_set()
        cache_set.ways[1].fill(tag=9, data=[0] * 4)
        assert cache_set.find_way(9) == 1

    def test_invalid_way_found_first(self):
        cache_set = make_set()
        assert cache_set.find_invalid_way() == 0
        cache_set.ways[0].fill(tag=1, data=[0] * 4)
        assert cache_set.find_invalid_way() == 1

    def test_full_set_has_no_invalid_way(self):
        cache_set = make_set()
        for way, tag in enumerate((1, 2)):
            cache_set.ways[way].fill(tag=tag, data=[0] * 4)
        assert cache_set.find_invalid_way() is None


class TestFillChoice:
    def test_prefers_invalid(self):
        cache_set = make_set()
        cache_set.ways[0].fill(tag=1, data=[0] * 4)
        assert cache_set.choose_fill_way() == 1

    def test_full_set_uses_policy(self):
        cache_set = make_set()
        cache_set.ways[0].fill(tag=1, data=[0] * 4)
        cache_set.ways[1].fill(tag=2, data=[0] * 4)
        cache_set.record_fill(0)
        cache_set.record_fill(1)
        cache_set.touch(0)  # way 1 is now LRU
        assert cache_set.choose_fill_way() == 1


class TestTags:
    def test_valid_tags(self):
        cache_set = make_set()
        cache_set.ways[1].fill(tag=7, data=[0] * 4)
        assert cache_set.valid_tags() == [None, 7]

    def test_policy_mismatch_rejected(self):
        with pytest.raises(ValueError, match="ways"):
            CacheSet(4, 4, LRUPolicy(2))
