"""Unit and property tests for address decomposition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.address import AddressMapper
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry


@pytest.fixture
def mapper():
    return AddressMapper(BASELINE_GEOMETRY)


class TestDecomposition:
    def test_address_zero(self, mapper):
        assert mapper.set_index(0) == 0
        assert mapper.tag(0) == 0
        assert mapper.word_offset(0) == 0

    def test_offset_bits(self, mapper):
        # 32 B blocks: byte 24 is word 3 of block 0.
        assert mapper.word_offset(24) == 3
        assert mapper.set_index(24) == 0

    def test_consecutive_blocks_different_sets(self, mapper):
        assert mapper.set_index(0) == 0
        assert mapper.set_index(32) == 1
        assert mapper.set_index(64) == 2

    def test_index_wraps_to_tag(self, mapper):
        # 512 sets * 32 B = 16 KB aliasing distance.
        assert mapper.set_index(16 * 1024) == 0
        assert mapper.tag(16 * 1024) == 1

    def test_block_address(self, mapper):
        assert mapper.block_address(0x47) == 0x40
        assert mapper.block_address(0x40) == 0x40


class TestCompose:
    def test_roundtrip_components(self, mapper):
        address = mapper.compose(tag=5, set_index=17, word_offset=2)
        assert mapper.tag(address) == 5
        assert mapper.set_index(address) == 17
        assert mapper.word_offset(address) == 2

    def test_out_of_range_set(self, mapper):
        with pytest.raises(ValueError, match="set_index"):
            mapper.compose(tag=0, set_index=512)

    def test_out_of_range_word(self, mapper):
        with pytest.raises(ValueError, match="word_offset"):
            mapper.compose(tag=0, set_index=0, word_offset=4)

    @given(
        tag=st.integers(min_value=0, max_value=2**34 - 1),
        set_index=st.integers(min_value=0, max_value=511),
        word=st.integers(min_value=0, max_value=3),
    )
    def test_compose_decompose_property(self, tag, set_index, word):
        mapper = AddressMapper(BASELINE_GEOMETRY)
        address = mapper.compose(tag, set_index, word)
        assert mapper.tag(address) == tag
        assert mapper.set_index(address) == set_index
        assert mapper.word_offset(address) == word


class TestAcrossGeometries:
    @given(address=st.integers(min_value=0, max_value=2**40).map(lambda a: a * 8))
    def test_fields_partition_address(self, address):
        geometry = CacheGeometry(4096, 2, 64, address_bits=48)
        mapper = AddressMapper(geometry)
        rebuilt = (
            mapper.tag(address)
            << (geometry.offset_bits + geometry.index_bits)
            | mapper.set_index(address) << geometry.offset_bits
            | (address & (geometry.block_bytes - 1))
        )
        assert rebuilt == address

    def test_single_set_geometry_has_zero_index(self):
        geometry = CacheGeometry(256, 8, 32)
        mapper = AddressMapper(geometry)
        for address in (0, 32, 4096, 123456 * 8):
            assert mapper.set_index(address) == 0
