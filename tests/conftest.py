"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Optional

import pytest

from repro.cache.config import CacheGeometry
from repro.trace.record import AccessType, MemoryAccess, WORD_BYTES


def make_random_trace(
    num_accesses: int,
    seed: int = 0,
    word_span: int = 256,
    write_share: float = 0.4,
    silent_share: float = 0.3,
    icount_gap: int = 3,
) -> List[MemoryAccess]:
    """A small random trace with a compact footprint.

    The compact footprint (``word_span`` words) forces heavy set reuse
    and — on tiny cache geometries — fills, evictions and Set-Buffer
    flushes, which is exactly what the consistency properties need to
    stress.  Values mirror a functional memory so silent writes occur at
    roughly ``silent_share``.
    """
    rng = random.Random(seed)
    memory = {}
    trace: List[MemoryAccess] = []
    icount = 0
    fresh = 1
    for _ in range(num_accesses):
        icount += rng.randint(1, icount_gap)
        word = rng.randrange(word_span)
        address = word * WORD_BYTES
        if rng.random() < write_share:
            if rng.random() < silent_share:
                value = memory.get(word, 0)
            else:
                value = fresh
                fresh += 1
                memory[word] = value
            trace.append(
                MemoryAccess(
                    icount=icount,
                    kind=AccessType.WRITE,
                    address=address,
                    value=value,
                )
            )
        else:
            trace.append(
                MemoryAccess(icount=icount, kind=AccessType.READ, address=address)
            )
    return trace


def oracle_read_values(trace) -> List[Optional[int]]:
    """Expected value of every read under simple sequential semantics."""
    memory = {}
    values: List[Optional[int]] = []
    for access in trace:
        if access.is_write:
            memory[access.word] = access.value
            values.append(None)
        else:
            values.append(memory.get(access.word, 0))
    return values


def oracle_final_memory(trace) -> dict:
    """Final word->value memory state under sequential semantics."""
    memory = {}
    for access in trace:
        if access.is_write:
            memory[access.word] = access.value
    return {word: value for word, value in memory.items() if value != 0}


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """A deliberately tiny cache: 512 B, 2-way, 32 B blocks, 8 sets.

    Small enough that random traces cause constant fills/evictions.
    """
    return CacheGeometry(size_bytes=512, associativity=2, block_bytes=32)


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """4 KB, 4-way, 32 B blocks — 32 sets."""
    return CacheGeometry(size_bytes=4 * 1024, associativity=4, block_bytes=32)


@pytest.fixture
def baseline_geometry() -> CacheGeometry:
    """The paper's 64 KB / 4-way / 32 B baseline."""
    return CacheGeometry(size_bytes=64 * 1024, associativity=4, block_bytes=32)
