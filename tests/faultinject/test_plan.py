"""Unit tests for the fault-injection harness (plans and corruptors)."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.faultinject import (
    ENV_VAR,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    active_plan,
    flip_bit,
    inject,
    maybe_inject,
    truncate_file,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_bad_until_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="transient", until_attempt=0)

    def test_negative_seconds_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="delay", seconds=-1.0)

    def test_matching(self):
        spec = FaultSpec(kind="transient", benchmark="mcf", until_attempt=2)
        assert spec.matches("worker", "mcf", 1)
        assert spec.matches("worker", "mcf", 2)
        assert not spec.matches("worker", "mcf", 3)  # healed
        assert not spec.matches("worker", "gcc", 1)  # other benchmark
        assert not spec.matches("journal", "mcf", 1)  # other site

    def test_wildcard_benchmark(self):
        spec = FaultSpec(kind="transient")
        assert spec.matches("worker", "anything", 1)
        assert spec.matches("worker", None, 1)

    def test_transient_fires_injected_error(self):
        spec = FaultSpec(kind="transient")
        with pytest.raises(InjectedFaultError, match="attempt=1"):
            spec.fire("mcf", 1)

    def test_delay_returns(self):
        FaultSpec(kind="delay", seconds=0.0).fire("mcf", 1)


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="transient", benchmark="mcf"),
                FaultSpec(kind="crash", until_attempt=99),
            )
        )
        assert FaultPlan.parse(plan.to_json()) == plan

    def test_parse_rejects_non_list(self):
        with pytest.raises(ConfigurationError, match="JSON list"):
            FaultPlan.parse('{"kind": "transient"}')

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultPlan.parse("{nope")

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(ConfigurationError, match="bad fault spec"):
            FaultPlan.parse('[{"kind": "transient", "nope": 1}]')

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(specs=(FaultSpec(kind="transient"),))


class TestEnvHook:
    def test_no_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert active_plan() is None
        maybe_inject("worker", benchmark="mcf", attempt=1)  # no-op

    def test_inject_sets_and_restores_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with inject(FaultSpec(kind="transient", benchmark="mcf")) as plan:
            assert json.loads(os.environ[ENV_VAR]) == json.loads(plan.to_json())
            assert active_plan() == plan
        assert ENV_VAR not in os.environ

    def test_inject_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "[]")
        with inject(FaultSpec(kind="transient")):
            pass
        assert os.environ[ENV_VAR] == "[]"

    def test_maybe_inject_fires_matching_rule(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        with inject(FaultSpec(kind="transient", benchmark="mcf")):
            maybe_inject("worker", benchmark="gcc", attempt=1)  # filtered out
            with pytest.raises(InjectedFaultError):
                maybe_inject("worker", benchmark="mcf", attempt=1)
            maybe_inject("worker", benchmark="mcf", attempt=2)  # healed


class TestCorruptors:
    def test_truncate_file(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(range(100)))
        removed = truncate_file(path, keep_bytes=60)
        assert removed == 40
        assert path.read_bytes() == bytes(range(60))

    def test_truncate_noop_when_already_short(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"abc")
        assert truncate_file(path, keep_bytes=10) == 0
        assert path.read_bytes() == b"abc"

    def test_flip_bit(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"\x00\x00\x00")
        new_value = flip_bit(path, byte_offset=1, bit=3)
        assert new_value == 0x08
        assert path.read_bytes() == b"\x00\x08\x00"

    def test_flip_bit_negative_offset(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"\x00\x00\xff")
        new_value = flip_bit(path, byte_offset=-1, bit=0)
        assert new_value == 0xFE
        assert path.read_bytes() == b"\x00\x00\xfe"
