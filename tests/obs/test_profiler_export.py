"""Profiler report + analysis-layer export of metrics and snapshots."""

import csv
import json

from repro.analysis.export import metrics_to_json, snapshots_to_csv
from repro.cache.config import CacheGeometry
from repro.obs.profiler import profile_benchmark
from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import IntervalSampler
from repro.obs.telemetry import Telemetry

SMALL = CacheGeometry(size_bytes=4096, associativity=2, block_bytes=32)


class TestProfiler:
    def test_profile_produces_phases_and_counters(self):
        report = profile_benchmark(
            "bwaves",
            geometry=SMALL,
            accesses=3_000,
            techniques=("rmw", "wg"),
        )
        phases = {name for name, *_rest in report.phase_rows()}
        assert phases == {
            "trace_gen", "warmup.rmw", "warmup.wg", "measure.rmw", "measure.wg",
        }
        assert all(total >= 0 for _n, _c, total, _m in report.phase_rows())
        hot = dict(report.hot_counters())
        assert hot["ctrl.rmw.rmw_issued"] > 0
        assert not any(name.startswith("span.") for name in hot)
        # Techniques' logs aggregate through SRAMEventLog.__add__.
        assert report.total_events.array_accesses == sum(
            result.events.array_accesses for result in report.results.values()
        )

    def test_warmup_excluded_from_results(self):
        report = profile_benchmark(
            "mcf",
            geometry=SMALL,
            accesses=2_000,
            techniques=("rmw",),
            warmup_fraction=0.25,
        )
        assert report.results["rmw"].requests == 1_500

    def test_caller_telemetry_is_used(self):
        telem = Telemetry(sampler=IntervalSampler(500))
        report = profile_benchmark(
            "bwaves",
            geometry=SMALL,
            accesses=2_000,
            techniques=("wg",),
            warmup_fraction=0.0,
            telemetry=telem,
        )
        assert report.telemetry is telem
        assert len(telem.sampler.series("wg")) == 4


class TestExport:
    def test_metrics_to_json_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("a.b", 3)
        registry.set_gauge("g", 7)
        registry.observe("h", 0.2, bounds=(0.5, 1.0))
        path = metrics_to_json(registry, tmp_path / "m.json")
        state = json.loads(path.read_text())
        restored = MetricsRegistry.from_state(state)
        assert restored.state_dict() == registry.state_dict()

    def test_snapshots_to_csv(self, tmp_path):
        telem = Telemetry(sampler=IntervalSampler(400))
        profile_benchmark(
            "bwaves",
            geometry=SMALL,
            accesses=1_600,
            techniques=("wg",),
            warmup_fraction=0.0,
            telemetry=telem,
        )
        out = tmp_path / "snaps.csv"
        rows = snapshots_to_csv(telem.sampler.snapshots, out)
        assert rows == 4
        with open(out, newline="") as handle:
            parsed = list(csv.DictReader(handle))
        assert len(parsed) == 4
        assert parsed[0]["label"] == "wg"
        assert int(parsed[-1]["end_request"]) == 1_600
        assert 0.0 <= float(parsed[0]["miss_rate"]) <= 1.0
