"""Unit tests for the metrics registry: counter/gauge/histogram math,
merge semantics (associativity, commutativity), serialisation."""

import pytest

from repro.errors import ValidationError
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_float_amounts(self):
        counter = Counter("t")
        counter.inc(0.25)
        counter.inc(0.5)
        assert counter.value == pytest.approx(0.75)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.counter("a").inc(3)
        assert registry.value("a") == 3

    def test_value_of_missing_counter_is_zero(self):
        assert MetricsRegistry().value("nope") == 0


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.set(4)
        assert gauge.value == 4

    def test_merge_takes_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("depth", 3)
        b.set_gauge("depth", 7)
        a.merge(b)
        assert a.gauge("depth").value == 7


class TestHistogram:
    def test_bucket_routing(self):
        hist = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 99.0, 1000.0):
            hist.observe(value)
        # <=1, <=10, <=100, overflow
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.mean == pytest.approx((0.5 + 1 + 5 + 99 + 1000) / 5)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", bounds=())

    def test_conflicting_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=(1.0, 3.0))

    def test_merge_requires_matching_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,))
        b.histogram("h", bounds=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)


def _registry(counters=(), gauges=(), observations=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.inc(name, value)
    for name, value in gauges:
        registry.set_gauge(name, value)
    for value in observations:
        registry.observe("h", value, bounds=(0.5, 1.5))
    return registry


class TestMerge:
    def test_counters_add(self):
        a = _registry(counters=[("x", 2), ("y", 1)])
        b = _registry(counters=[("x", 3), ("z", 7)])
        a.merge(b)
        assert a.value("x") == 5
        assert a.value("y") == 1
        assert a.value("z") == 7

    def test_merge_is_associative_and_commutative(self):
        def fresh():
            # Binary-exact observation values, so float addition is
            # exactly associative and dicts compare equal.
            return (
                _registry(counters=[("c", 1)], gauges=[("g", 5)],
                          observations=[0.25, 1.0]),
                _registry(counters=[("c", 10)], gauges=[("g", 2)],
                          observations=[2.0]),
                _registry(counters=[("c", 100), ("d", 1)], gauges=[("g", 9)],
                          observations=[0.75, 0.5]),
            )

        # (a + b) + c
        a, b, c = fresh()
        left = a.merge(b).merge(c).state_dict()
        # a + (b + c)
        a, b, c = fresh()
        right = a.merge(b.merge(c)).state_dict()
        assert left == right
        # c + b + a (commutativity)
        a, b, c = fresh()
        reordered = c.merge(b).merge(a).state_dict()
        assert left == reordered

    def test_merge_via_state_dict_roundtrip(self):
        a = _registry(
            counters=[("x", 4)], gauges=[("g", 2)], observations=[0.1, 1.0]
        )
        restored = MetricsRegistry.from_state(a.state_dict())
        assert restored.state_dict() == a.state_dict()

    def test_state_dict_is_json_compatible(self):
        import json

        a = _registry(counters=[("x", 1)], observations=[0.3])
        assert json.loads(json.dumps(a.state_dict())) == a.state_dict()


class TestTopCounters:
    def test_ranked_descending(self):
        registry = _registry(counters=[("low", 1), ("high", 100), ("mid", 10)])
        assert registry.top_counters(2) == [("high", 100), ("mid", 10)]


class TestWorkerLabelledMerge:
    def _worker_state(self, count, gauge=None):
        registry = MetricsRegistry()
        registry.inc("cache.requests", count)
        if gauge is not None:
            registry.set_gauge("buffer.peak", gauge)
        return registry.state_dict()

    def test_aggregate_and_breakdown(self):
        parent = MetricsRegistry()
        parent.merge_worker_state(self._worker_state(10), "worker:a")
        parent.merge_worker_state(self._worker_state(32), "worker:b")
        assert parent.value("cache.requests") == 42
        assert parent.worker_ids() == ["worker:a", "worker:b"]
        assert parent.worker_state("worker:a")["counters"] == {
            "cache.requests": 10
        }
        assert parent.worker_state("worker:b")["counters"] == {
            "cache.requests": 32
        }

    def test_aggregate_is_bit_identical_sum_of_workers(self):
        parent = MetricsRegistry()
        # Float amounts chosen to expose any double-count or ordering
        # difference between aggregate and per-worker paths.
        for worker_id, amount in (
            ("worker:a", 0.1),
            ("worker:b", 0.2),
            ("worker:c", 0.30000000000000004),
        ):
            state = MetricsRegistry()
            state.counter("t.seconds").inc(amount)
            parent.merge_worker_state(state.state_dict(), worker_id)
        total = sum(
            parent.worker_state(w)["counters"]["t.seconds"]
            for w in parent.worker_ids()
        )
        assert parent.value("t.seconds") == total  # exact, not approx

    def test_repeated_merges_accumulate_per_worker(self):
        parent = MetricsRegistry()
        parent.merge_worker_state(self._worker_state(5), "worker:a")
        parent.merge_worker_state(self._worker_state(7), "worker:a")
        assert parent.value("cache.requests") == 12
        assert parent.worker_state("worker:a")["counters"] == {
            "cache.requests": 12
        }

    def test_gauges_keep_max_in_both_views(self):
        parent = MetricsRegistry()
        parent.merge_worker_state(self._worker_state(1, gauge=9), "worker:a")
        parent.merge_worker_state(self._worker_state(1, gauge=4), "worker:b")
        assert parent.gauge("buffer.peak").value == 9
        assert parent.worker_state("worker:b")["gauges"] == {"buffer.peak": 4}

    def test_rejects_empty_id_and_double_labelling(self):
        parent = MetricsRegistry()
        with pytest.raises(ValidationError):
            parent.merge_worker_state(self._worker_state(1), "")
        labelled = MetricsRegistry()
        labelled.merge_worker_state(self._worker_state(1), "worker:a")
        with pytest.raises(ValidationError):
            parent.merge_worker_state(labelled.state_dict(), "campaign")

    def test_unknown_worker_id_raises(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().worker_state("worker:ghost")

    def test_state_dict_shape(self):
        plain = MetricsRegistry()
        plain.inc("x")
        assert set(plain.state_dict()) == {"counters", "gauges", "histograms"}
        labelled = MetricsRegistry()
        labelled.merge_worker_state(self._worker_state(3), "worker:a")
        state = labelled.state_dict()
        assert set(state) == {"counters", "gauges", "histograms", "workers"}
        assert set(state["workers"]) == {"worker:a"}

    def test_labelled_state_round_trips(self):
        parent = MetricsRegistry()
        parent.inc("parent.only", 2)
        parent.merge_worker_state(self._worker_state(10), "worker:a")
        parent.merge_worker_state(self._worker_state(20), "worker:b")
        clone = MetricsRegistry.from_state(parent.state_dict())
        assert clone.state_dict() == parent.state_dict()
        # No double count: the aggregate already contains the workers.
        assert clone.value("cache.requests") == 30
        assert clone.value("parent.only") == 2
