"""Integration tests for the observability plane.

Two invariants protect the measurement foundation:

1. **Non-perturbation** — telemetry (off *or* on) must never change
   what the simulator computes.  The off-path is pinned against
   hard-coded seed expectations (the trace is deterministic, so any
   instrumentation leak into simulation state changes these numbers);
   the on-path is checked bit-identical to the off-path.
2. **Cheap when dark** — the uninstrumented request path adds one
   boolean test over the seed hot loop.  The overhead test replays the
   seed's ``process()`` body side by side with the instrumented one on
   a 50k-access run and bounds the ratio.
"""

import time

import pytest

from repro.cache.config import BASELINE_GEOMETRY
from repro.obs.sampler import IntervalSampler
from repro.obs.sinks import NullSink
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.comparison import compare_techniques
from repro.sim.simulator import Simulator
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

#: bwaves @ seed 2012, 50k accesses — computed at the seed revision.
#: These pins fail if instrumentation ever perturbs simulation state.
SEED_ARRAY_ACCESSES = {
    "conventional": 50_000,
    "rmw": 74_270,
    "wg": 40_684,
    "wg_rb": 39_004,
}

TECHNIQUES = tuple(SEED_ARRAY_ACCESSES)


@pytest.fixture(scope="module")
def trace_50k():
    return generate_trace(get_profile("bwaves"), 50_000, seed=2012)


class TestNonPerturbation:
    def test_default_path_matches_seed_exactly(self, trace_50k):
        comparison = compare_techniques(
            trace_50k, BASELINE_GEOMETRY, techniques=TECHNIQUES
        )
        measured = {
            t: comparison.result(t).array_accesses for t in TECHNIQUES
        }
        assert measured == SEED_ARRAY_ACCESSES

    def test_null_sink_bit_identical_to_default(self, trace_50k):
        plain = compare_techniques(
            trace_50k, BASELINE_GEOMETRY, techniques=TECHNIQUES
        )
        nulled = compare_techniques(
            trace_50k,
            BASELINE_GEOMETRY,
            techniques=TECHNIQUES,
            telemetry=Telemetry(sink=NullSink()),
        )
        for technique in TECHNIQUES:
            assert (
                plain.result(technique).events
                == nulled.result(technique).events
            )
            assert (
                plain.result(technique).counts
                == nulled.result(technique).counts
            )

    def test_full_telemetry_bit_identical_to_default(self, trace_50k):
        # Even with metrics + sampling live, the simulation itself must
        # not move: instrumentation observes, never participates.
        short = trace_50k[:10_000]
        plain = compare_techniques(
            short, BASELINE_GEOMETRY, techniques=TECHNIQUES
        )
        telem = Telemetry(sampler=IntervalSampler(1_000))
        observed = compare_techniques(
            short, BASELINE_GEOMETRY, techniques=TECHNIQUES, telemetry=telem
        )
        for technique in TECHNIQUES:
            assert (
                plain.result(technique).events
                == observed.result(technique).events
            )
        # ... and the metrics agree with the simulation's own counters.
        registry = telem.registry
        rmw = plain.result("rmw")
        assert registry.value("ctrl.rmw.rmw_issued") == (
            rmw.counts.rmw_operations
        )
        wg = plain.result("wg")
        assert registry.value("ctrl.wg.sb_hit") == wg.counts.grouped_writes
        assert registry.value("ctrl.wg_rb.read_bypass") == (
            plain.result("wg_rb").counts.bypassed_reads
        )

    def test_null_telemetry_registry_untouched(self, trace_50k):
        simulator = Simulator("wg", BASELINE_GEOMETRY)
        simulator.feed(trace_50k[:5_000])
        simulator.finish()
        assert simulator.telemetry is NULL_TELEMETRY
        assert len(NULL_TELEMETRY.registry) == 0


def _seed_process(controller, access):
    """The seed revision's ``CacheController.process`` body, verbatim
    minus the observability branch — the overhead comparison baseline."""
    if controller._finalized:
        raise RuntimeError("controller already finalized")
    if access.is_read:
        controller.counts.read_requests += 1
    else:
        controller.counts.write_requests += 1
    controller._current_icount = access.icount
    controller._before_residency(access)
    result = controller.cache.ensure_resident(access)
    if result.filled:
        controller._account_miss_traffic(result)
    if access.is_read:
        return controller._handle_read(access, result)
    return controller._handle_write(access, result)


def _time_feed(trace, use_seed_body):
    simulator = Simulator("wg", BASELINE_GEOMETRY)
    controller = simulator.controller
    started = time.perf_counter()
    if use_seed_body:
        for access in trace:
            _seed_process(controller, access)
    else:
        for access in trace:
            controller.process(access)
    return time.perf_counter() - started


class TestOverhead:
    def test_dark_path_overhead_under_budget(self, trace_50k):
        """Uninstrumented ``process()`` vs the seed body on 50k accesses.

        Budget is ~5%; the assertion allows CI timing noise on top.
        Best-of-three per variant, interleaved, to cancel drift.
        """
        seed_best = instrumented_best = float("inf")
        for _ in range(3):
            seed_best = min(seed_best, _time_feed(trace_50k, True))
            instrumented_best = min(
                instrumented_best, _time_feed(trace_50k, False)
            )
        ratio = instrumented_best / seed_best
        assert ratio < 1.12, (
            f"dark-path overhead {100 * (ratio - 1):.1f}% exceeds budget "
            f"(seed {seed_best:.3f}s vs instrumented {instrumented_best:.3f}s)"
        )
