"""Timer/span tests: elapsed measurement, registry + sink reporting."""

import io
import json

import pytest

from repro.obs.sinks import JsonlSink
from repro.obs.spans import Timer, phase_timings, span, timer
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry


class TestTimer:
    def test_context_manager_measures(self):
        with timer() as t:
            assert t.running
            sum(range(1000))
        assert not t.running
        assert t.elapsed > 0
        frozen = t.elapsed
        assert t.elapsed == frozen  # frozen after stop

    def test_stop_without_start_raises(self):
        with pytest.raises(ValueError):
            Timer().stop()

    def test_unstarted_elapsed_is_zero(self):
        assert Timer().elapsed == 0.0


class TestSpan:
    def test_records_counters_and_histogram(self):
        telem = Telemetry()
        with span(telem, "measure"):
            pass
        with span(telem, "measure"):
            pass
        registry = telem.registry
        assert registry.value("span.measure.calls") == 2
        assert registry.value("span.measure.total_s") > 0
        assert registry.histogram("span.measure.seconds").count == 2

    def test_emits_complete_event_with_args(self):
        buffer = io.StringIO()
        telem = Telemetry(sink=JsonlSink(buffer))
        with span(telem, "warmup", technique="wg"):
            pass
        event = json.loads(buffer.getvalue())
        assert event["type"] == "span"
        assert event["name"] == "warmup"
        assert event["args"] == {"technique": "wg"}
        assert event["dur_us"] >= 0

    def test_error_annotated_and_reraised(self):
        buffer = io.StringIO()
        telem = Telemetry(sink=JsonlSink(buffer))
        with pytest.raises(RuntimeError):
            with span(telem, "broken"):
                raise RuntimeError("boom")
        event = json.loads(buffer.getvalue())
        assert event["args"]["error"] == "RuntimeError"
        # The failure still lands in the metrics plane.
        assert telem.registry.value("span.broken.calls") == 1

    def test_null_telemetry_records_nothing(self):
        with span(NULL_TELEMETRY, "quiet") as s:
            pass
        assert s.elapsed > 0
        assert len(NULL_TELEMETRY.registry) == 0


class TestPhaseTimings:
    def test_rows_sorted_by_total_time(self):
        telem = Telemetry()
        registry = telem.registry
        registry.inc("span.fast.calls", 2)
        registry.inc("span.fast.total_s", 0.2)
        registry.inc("span.slow.calls", 1)
        registry.inc("span.slow.total_s", 3.0)
        registry.inc("unrelated.counter", 9)
        rows = phase_timings(registry)
        assert [row[0] for row in rows] == ["slow", "fast"]
        slow, fast = rows
        assert slow[1] == 1 and slow[2] == pytest.approx(3.0)
        assert fast[3] == pytest.approx(100.0)  # 0.2s / 2 calls = 100 ms
