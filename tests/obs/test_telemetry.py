"""Telemetry facade, structured warnings, worker merge, and the
observable parallel-campaign fallback."""

import io
import json
import logging


from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import JsonlSink, NullSink
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.sim.experiment import ExperimentConfig
from repro.sim.parallel import _run_benchmark, run_campaign_parallel

CONFIG = ExperimentConfig(
    benchmarks=("bwaves", "mcf"),
    techniques=("rmw", "wg"),
    accesses_per_benchmark=1500,
)


class TestTelemetryFacade:
    def test_defaults(self):
        telem = Telemetry()
        assert telem.enabled
        assert isinstance(telem.registry, MetricsRegistry)
        assert isinstance(telem.sink, NullSink)
        assert telem.sampler is None

    def test_null_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        NULL_TELEMETRY.instant("ignored")  # must be a no-op
        assert len(NULL_TELEMETRY.registry) == 0

    def test_from_outputs_none_when_nothing_requested(self):
        assert Telemetry.from_outputs() is None

    def test_from_outputs_builds_requested_pieces(self, tmp_path):
        telem = Telemetry.from_outputs(
            metrics_out=tmp_path / "m.json",
            trace_out=tmp_path / "t.jsonl",
            sample_window=500,
        )
        assert telem is not None
        assert isinstance(telem.sink, JsonlSink)
        assert telem.sampler is not None and telem.sampler.window == 500
        telem.close()

    def test_warn_is_structured(self, caplog):
        buffer = io.StringIO()
        telem = Telemetry(sink=JsonlSink(buffer))
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            telem.warn("parallel.pool_fallback", "pool died", benchmarks=2)
        # 1. a log record
        assert any("pool died" in record.message for record in caplog.records)
        # 2. a metrics counter
        assert telem.registry.value("warning.parallel.pool_fallback") == 1
        # 3. a trace instant
        event = json.loads(buffer.getvalue())
        assert event["cat"] == "warning"
        assert event["args"]["benchmarks"] == 2


class TestWorkerMetrics:
    def test_worker_ships_metrics_state(self):
        row, state = _run_benchmark(("bwaves", CONFIG, True, 1))
        assert row.benchmark == "bwaves"
        assert state is not None
        assert state["counters"]["ctrl.rmw.read_requests"] > 0

    def test_worker_skips_metrics_when_dark(self):
        _row, state = _run_benchmark(("bwaves", CONFIG, False, 1))
        assert state is None

    def test_parallel_campaign_merges_worker_registries(self):
        # No warm-up, so the merged per-worker counters must equal the
        # rows' own request accounting exactly.
        config = ExperimentConfig(
            benchmarks=CONFIG.benchmarks,
            techniques=CONFIG.techniques,
            accesses_per_benchmark=CONFIG.accesses_per_benchmark,
            warmup_fraction=0.0,
        )
        telem = Telemetry()
        result = run_campaign_parallel(config, processes=2, telemetry=telem)
        assert len(result.rows) == 2
        expected = sum(
            row.results["rmw"].counts.read_requests for row in result.rows
        )
        assert telem.registry.value("ctrl.rmw.read_requests") == expected

    def test_sequential_processes_one_uses_caller_telemetry(self):
        telem = Telemetry()
        result = run_campaign_parallel(CONFIG, processes=1, telemetry=telem)
        assert len(result.rows) == 2
        assert telem.registry.value("ctrl.wg.read_requests") > 0


class TestPoolFallbackObservability:
    def test_fallback_warns_and_counts(self, monkeypatch, caplog):
        def no_workers(*_args, **_kwargs):
            raise PermissionError("fork forbidden")

        monkeypatch.setattr("repro.sim.parallel.run_supervised", no_workers)
        telem = Telemetry()
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            result = run_campaign_parallel(CONFIG, processes=4, telemetry=telem)
        # Results still correct...
        assert len(result.rows) == 2
        assert result.mean_reduction("wg") > 0
        # ...and the degradation is visible on every plane.
        assert telem.registry.value("warning.parallel.pool_fallback") == 1
        assert any(
            "in-process" in record.message for record in caplog.records
        )

    def test_fallback_without_telemetry_still_logs(self, monkeypatch, caplog):
        def no_workers(*_args, **_kwargs):
            raise OSError("no pool for you")

        monkeypatch.setattr("repro.sim.parallel.run_supervised", no_workers)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            result = run_campaign_parallel(CONFIG)
        assert len(result.rows) == 2
        assert any(
            "pool unavailable" in record.message for record in caplog.records
        )
