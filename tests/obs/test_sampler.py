"""Interval-sampler tests: window boundaries, deltas, reset handling."""

import pytest

from repro.cache.config import CacheGeometry
from repro.obs.sampler import IntervalSampler
from repro.obs.telemetry import Telemetry
from repro.sim.simulator import Simulator
from tests.conftest import make_random_trace

TINY = CacheGeometry(size_bytes=1024, associativity=2, block_bytes=32)


def _run(technique="wg", accesses=2500, window=500):
    sampler = IntervalSampler(window)
    telem = Telemetry(sampler=sampler)
    simulator = Simulator(technique, TINY, telemetry=telem)
    simulator.feed(make_random_trace(accesses, seed=11))
    return simulator, sampler


class TestWindows:
    def test_window_count_and_indices(self):
        _, sampler = _run(accesses=2500, window=500)
        series = sampler.series("wg")
        assert len(series) == 5  # 2500 / 500, trailing partial dropped
        assert [snap.window_index for snap in series] == [0, 1, 2, 3, 4]
        assert [snap.end_request for snap in series] == [
            500, 1000, 1500, 2000, 2500,
        ]

    def test_partial_window_not_snapshotted(self):
        _, sampler = _run(accesses=2499, window=500)
        assert len(sampler.series("wg")) == 4

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            IntervalSampler(0)

    def test_deltas_sum_to_totals(self):
        simulator, sampler = _run(accesses=2000, window=500)
        series = sampler.series("wg")
        # Every request landed in a full window, so window deltas must
        # add up exactly to the cumulative counters.
        assert sum(s.array_accesses for s in series) == (
            simulator.controller.events.array_accesses
        )
        stats = simulator.cache.stats
        assert sum(s.hits for s in series) == stats.hits
        assert sum(s.misses for s in series) == stats.misses

    def test_miss_rate_and_rates(self):
        _, sampler = _run()
        for snap in sampler.snapshots:
            assert 0.0 <= snap.miss_rate <= 1.0
            assert snap.hits + snap.misses == snap.window_size
            assert snap.accesses_per_request >= 0.0

    def test_occupancy_zero_for_unbuffered_controller(self):
        _, sampler = _run(technique="rmw")
        assert all(s.set_buffer_occupancy == 0 for s in sampler.snapshots)

    def test_occupancy_observed_for_wg(self):
        _, sampler = _run(technique="wg")
        # The Set-Buffer should be dirty at at least one window edge on
        # a write-heavy random trace.
        assert any(s.set_buffer_occupancy > 0 for s in sampler.snapshots)


class TestResetHandling:
    def test_reset_measurements_rebaselines(self):
        sampler = IntervalSampler(250)
        telem = Telemetry(sampler=sampler)
        simulator = Simulator("wg", TINY, telemetry=telem)
        trace = make_random_trace(1000, seed=3)
        simulator.feed(trace[:500])
        simulator.reset_measurements()  # warm-up boundary
        simulator.feed(trace[500:])
        # No negative deltas even though cumulative counters dropped.
        for snap in sampler.snapshots:
            assert snap.array_accesses >= 0
            assert snap.hits >= 0
            assert snap.misses >= 0

    def test_labels_tracked_independently(self):
        sampler = IntervalSampler(300)
        telem = Telemetry(sampler=sampler)
        trace = make_random_trace(900, seed=5)
        for technique in ("rmw", "wg"):
            simulator = Simulator(technique, TINY, telemetry=telem)
            simulator.feed(trace)
        assert sampler.labels() == ["rmw", "wg"]
        assert len(sampler.series("rmw")) == 3
        assert len(sampler.series("wg")) == 3


class _StubStats:
    def __init__(self):
        self.hits = 0
        self.misses = 0


class _StubEvents:
    def __init__(self):
        self.array_accesses = 0


class _StubController:
    """Minimal controller surface the sampler reads at window edges."""

    def __init__(self, name="stub"):
        self.name = name
        self.events = _StubEvents()

        class _Cache:
            pass

        self.cache = _Cache()
        self.cache.stats = _StubStats()

    def set_buffer_occupancy(self):
        return 0


class TestEmptyWindows:
    def test_trace_shorter_than_window_yields_no_snapshots(self):
        _, sampler = _run(accesses=300, window=500)
        assert len(sampler) == 0
        assert sampler.labels() == []
        assert sampler.series("wg") == []

    def test_idle_window_snapshots_all_zero_deltas(self):
        # A window can close with no cache activity at all (e.g. every
        # request filtered upstream); deltas and derived rates must be
        # zero, not a ZeroDivisionError.
        sampler = IntervalSampler(10)
        controller = _StubController()
        for _ in range(10):
            sampler.tick(controller)
        assert len(sampler) == 1
        snap = sampler.snapshots[0]
        assert snap.array_accesses == 0
        assert snap.hits == 0
        assert snap.misses == 0
        assert snap.miss_rate == 0.0
        assert snap.accesses_per_request == 0.0

    def test_idle_then_active_window_keeps_clean_deltas(self):
        sampler = IntervalSampler(10)
        controller = _StubController()
        for _ in range(10):  # idle window
            sampler.tick(controller)
        controller.events.array_accesses = 7
        controller.cache.stats.hits = 4
        controller.cache.stats.misses = 3
        for _ in range(10):  # active window
            sampler.tick(controller)
        idle, active = sampler.snapshots
        assert (idle.array_accesses, idle.hits, idle.misses) == (0, 0, 0)
        assert (active.array_accesses, active.hits, active.misses) == (7, 4, 3)
        assert active.window_index == 1
