"""Trace sink tests: JSONL round-trip, Chrome trace validity, null sink."""

import io
import json

import pytest

from repro.errors import ValidationError
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    merge_chrome_traces,
    read_jsonl_trace,
    sink_for_path,
)


class TestNullSink:
    def test_disabled_and_inert(self):
        sink = NullSink()
        assert sink.enabled is False
        sink.instant("x")
        sink.complete("y", 0.0, 1.0)
        sink.close()
        sink.close()  # idempotent


class TestJsonlSink:
    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.instant("rmw_issued", category="controller", args={"set": 3})
            sink.complete("measure", sink._origin, 0.25, args={"t": "wg"})
        events = read_jsonl_trace(path)
        assert [e["type"] for e in events] == ["instant", "span"]
        instant, span_event = events
        assert instant["name"] == "rmw_issued"
        assert instant["cat"] == "controller"
        assert instant["args"] == {"set": 3}
        assert span_event["dur_us"] == 250_000.0
        assert span_event["ts_us"] == 0.0

    def test_streams_per_event(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.instant("a")
        sink.instant("b")
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["type"] == "instant" for line in lines)

    def test_timestamps_monotonic(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        for _ in range(5):
            sink.instant("tick")
        stamps = [json.loads(l)["ts_us"] for l in buffer.getvalue().splitlines()]
        assert stamps == sorted(stamps)
        assert all(ts >= 0 for ts in stamps)


class TestChromeTraceSink:
    def test_writes_loadable_trace_event_json(self, tmp_path):
        path = tmp_path / "trace.json"
        with ChromeTraceSink(path) as sink:
            sink.instant("pool_fallback", category="warning")
            sink.complete("measure", sink._origin, 0.001, args={"x": 1})
        document = json.loads(path.read_text())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        assert len(events) == 2
        instant = next(e for e in events if e["ph"] == "i")
        complete = next(e for e in events if e["ph"] == "X")
        # The fields the Chrome/Perfetto loader requires.
        for event in events:
            assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        assert instant["s"] == "t"
        assert complete["dur"] == 1000.0

    def test_empty_trace_still_valid(self, tmp_path):
        path = tmp_path / "empty.json"
        ChromeTraceSink(path).close()
        assert json.loads(path.read_text())["traceEvents"] == []


class TestSinkForPath:
    def test_extension_dispatch(self, tmp_path):
        jsonl = sink_for_path(tmp_path / "a.jsonl")
        ndjson = sink_for_path(tmp_path / "a.ndjson")
        chrome = sink_for_path(tmp_path / "a.json")
        trace = sink_for_path(tmp_path / "a.trace")
        try:
            assert isinstance(jsonl, JsonlSink)
            assert isinstance(ndjson, JsonlSink)
            assert isinstance(chrome, ChromeTraceSink)
            assert isinstance(trace, ChromeTraceSink)
        finally:
            for sink in (jsonl, ndjson, chrome, trace):
                sink.close()


class TestWorkerTracks:
    def test_track_label_emits_process_name_metadata(self, tmp_path):
        path = tmp_path / "worker.json"
        with ChromeTraceSink(path, track="worker:bwaves") as sink:
            sink.complete("row", sink._origin, 0.002)
        events = json.loads(path.read_text())["traceEvents"]
        meta = [e for e in events if e.get("ph") == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"] == {"name": "worker:bwaves"}

    def test_untracked_sink_has_no_metadata(self, tmp_path):
        path = tmp_path / "plain.json"
        with ChromeTraceSink(path) as sink:
            sink.instant("x")
        events = json.loads(path.read_text())["traceEvents"]
        assert not [e for e in events if e.get("ph") == "M"]


class TestMergeChromeTraces:
    def _worker_trace(self, path, label, spans):
        with ChromeTraceSink(path, track=label) as sink:
            for name, duration in spans:
                sink.complete(name, sink._origin, duration)
        return path

    def test_merged_multi_worker_spans(self, tmp_path):
        a = self._worker_trace(
            tmp_path / "a.json", "worker:bwaves", [("row:fig9", 0.01)]
        )
        b = self._worker_trace(
            tmp_path / "b.json",
            "worker:mcf",
            [("row:fig9", 0.02), ("row:fig10", 0.03)],
        )
        out = tmp_path / "merged.json"
        document = merge_chrome_traces(
            {"worker:bwaves": a, "worker:mcf": b}, out
        )
        assert json.loads(out.read_text()) == document
        events = document["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        meta = [e for e in events if e.get("ph") == "M"]
        # All three spans survive, under exactly two labelled tracks.
        assert len(spans) == 3
        assert {e["args"]["name"] for e in meta} == {
            "worker:bwaves", "worker:mcf",
        }
        # Workers get distinct synthetic pids even if the real worker
        # pids collided, and every span's pid matches its track's.
        pid_by_label = {e["args"]["name"]: e["pid"] for e in meta}
        assert len(set(pid_by_label.values())) == 2
        bwaves_spans = [
            e for e in spans if e["pid"] == pid_by_label["worker:bwaves"]
        ]
        assert len(bwaves_spans) == 1

    def test_input_process_name_metadata_is_superseded(self, tmp_path):
        a = self._worker_trace(tmp_path / "a.json", "old-label", [("s", 0.01)])
        document = merge_chrome_traces({"new-label": a}, tmp_path / "out.json")
        meta = [e for e in document["traceEvents"] if e.get("ph") == "M"]
        assert len(meta) == 1
        assert meta[0]["args"] == {"name": "new-label"}

    def test_merge_order_is_deterministic(self, tmp_path):
        a = self._worker_trace(tmp_path / "a.json", "worker:a", [("s", 0.01)])
        b = self._worker_trace(tmp_path / "b.json", "worker:b", [("s", 0.01)])
        first = merge_chrome_traces(
            {"worker:b": b, "worker:a": a}, io.StringIO()
        )
        second = merge_chrome_traces(
            {"worker:a": a, "worker:b": b}, io.StringIO()
        )
        assert first == second  # sorted by label, not insertion order

    def test_empty_inputs_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            merge_chrome_traces({}, tmp_path / "out.json")
