"""Trace sink tests: JSONL round-trip, Chrome trace validity, null sink."""

import io
import json

from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    NullSink,
    read_jsonl_trace,
    sink_for_path,
)


class TestNullSink:
    def test_disabled_and_inert(self):
        sink = NullSink()
        assert sink.enabled is False
        sink.instant("x")
        sink.complete("y", 0.0, 1.0)
        sink.close()
        sink.close()  # idempotent


class TestJsonlSink:
    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.instant("rmw_issued", category="controller", args={"set": 3})
            sink.complete("measure", sink._origin, 0.25, args={"t": "wg"})
        events = read_jsonl_trace(path)
        assert [e["type"] for e in events] == ["instant", "span"]
        instant, span_event = events
        assert instant["name"] == "rmw_issued"
        assert instant["cat"] == "controller"
        assert instant["args"] == {"set": 3}
        assert span_event["dur_us"] == 250_000.0
        assert span_event["ts_us"] == 0.0

    def test_streams_per_event(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.instant("a")
        sink.instant("b")
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["type"] == "instant" for line in lines)

    def test_timestamps_monotonic(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        for _ in range(5):
            sink.instant("tick")
        stamps = [json.loads(l)["ts_us"] for l in buffer.getvalue().splitlines()]
        assert stamps == sorted(stamps)
        assert all(ts >= 0 for ts in stamps)


class TestChromeTraceSink:
    def test_writes_loadable_trace_event_json(self, tmp_path):
        path = tmp_path / "trace.json"
        with ChromeTraceSink(path) as sink:
            sink.instant("pool_fallback", category="warning")
            sink.complete("measure", sink._origin, 0.001, args={"x": 1})
        document = json.loads(path.read_text())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        assert len(events) == 2
        instant = next(e for e in events if e["ph"] == "i")
        complete = next(e for e in events if e["ph"] == "X")
        # The fields the Chrome/Perfetto loader requires.
        for event in events:
            assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        assert instant["s"] == "t"
        assert complete["dur"] == 1000.0

    def test_empty_trace_still_valid(self, tmp_path):
        path = tmp_path / "empty.json"
        ChromeTraceSink(path).close()
        assert json.loads(path.read_text())["traceEvents"] == []


class TestSinkForPath:
    def test_extension_dispatch(self, tmp_path):
        jsonl = sink_for_path(tmp_path / "a.jsonl")
        ndjson = sink_for_path(tmp_path / "a.ndjson")
        chrome = sink_for_path(tmp_path / "a.json")
        trace = sink_for_path(tmp_path / "a.trace")
        try:
            assert isinstance(jsonl, JsonlSink)
            assert isinstance(ndjson, JsonlSink)
            assert isinstance(chrome, ChromeTraceSink)
            assert isinstance(trace, ChromeTraceSink)
        finally:
            for sink in (jsonl, ndjson, chrome, trace):
                sink.close()
