"""Gate tests: rolling baseline, noise band, ratchet, bootstrap floors."""

import pytest

from repro.errors import ValidationError
from repro.obs.perf import (
    FALLBACK_SPEEDUP_FLOORS,
    compare_to_baseline,
    read_ledger,
)
from tests.obs.perf.conftest import WORKLOAD, make_record, result_dict


def gate(results, entries, **kwargs):
    return compare_to_baseline(results, entries, **{**WORKLOAD, **kwargs})


class TestRollingBaseline:
    def test_healthy_run_passes(self, seeded_ledger):
        entries = read_ledger(seeded_ledger)
        result = gate(
            [result_dict("conventional", 8.1), result_dict("wg", 4.1)],
            entries,
        )
        assert result.ok
        assert result.comparable_entries == 5
        for technique_gate in result.gates:
            assert technique_gate.source == "ledger"
            assert technique_gate.samples == 5

    def test_regression_beyond_band_fails(self, seeded_ledger):
        entries = read_ledger(seeded_ledger)
        # Baseline mean ~8.04; a 10% min-band puts the threshold ~7.2.
        result = gate([result_dict("conventional", 5.0)], entries)
        assert not result.ok
        (regression,) = result.regressions
        assert regression.technique == "conventional"
        assert regression.regressed
        assert "REGRESSION" in regression.describe()

    def test_drop_within_noise_band_passes(self, seeded_ledger):
        entries = read_ledger(seeded_ledger)
        # ~5% below the mean: inside the 10% minimum band.
        result = gate([result_dict("conventional", 7.65)], entries)
        assert result.ok

    def test_window_limits_baseline(self, ledger_path):
        # Three slow ancient runs, then two fast recent ones; window=2
        # must baseline on the fast era only.
        for i, speedup in enumerate((2.0, 2.0, 2.0, 8.0, 8.2)):
            from repro.obs.perf import append_run

            append_run(
                ledger_path,
                make_record(
                    {"conventional": speedup},
                    timestamp=f"2026-08-0{i + 1}T10:00:00+00:00",
                ),
            )
        entries = read_ledger(ledger_path)
        result = gate([result_dict("conventional", 6.0)], entries, window=2)
        (technique_gate,) = result.gates
        assert technique_gate.samples == 2
        assert technique_gate.baseline_mean == pytest.approx(8.1)
        assert technique_gate.regressed  # 6.0 is a real drop vs 8.1

    def test_mismatched_workloads_excluded(self, seeded_ledger):
        from repro.obs.perf import append_run

        # A tiny-trace run with absurd speedups must not poison the
        # 200k-access baseline.
        append_run(
            seeded_ledger,
            make_record({"conventional": 50.0}, accesses=1_000),
        )
        entries = read_ledger(seeded_ledger)
        result = gate([result_dict("conventional", 8.0)], entries)
        assert result.comparable_entries == 5
        assert result.ok


class TestRatchet:
    def test_threshold_never_below_static_floor(self, ledger_path):
        from repro.obs.perf import append_run

        # A noisy, slow history would put the rolling threshold under
        # the legacy 2.0x floor; the ratchet must hold the floor.
        for i, speedup in enumerate((2.2, 3.8, 2.4, 3.6)):
            append_run(
                ledger_path,
                make_record(
                    {"conventional": speedup},
                    timestamp=f"2026-08-0{i + 1}T10:00:00+00:00",
                ),
            )
        entries = read_ledger(ledger_path)
        result = gate([result_dict("conventional", 2.1)], entries)
        (technique_gate,) = result.gates
        assert technique_gate.source == "ledger"
        assert technique_gate.threshold == pytest.approx(
            FALLBACK_SPEEDUP_FLOORS["conventional"]
        )
        assert not technique_gate.regressed  # 2.1 >= 2.0 floor

    def test_quiet_history_tightens_past_floor(self, seeded_ledger):
        entries = read_ledger(seeded_ledger)
        result = gate([result_dict("conventional", 8.0)], entries)
        (technique_gate,) = result.gates
        assert (
            technique_gate.threshold
            > FALLBACK_SPEEDUP_FLOORS["conventional"]
        )


class TestBootstrap:
    def test_empty_ledger_falls_back_to_floor(self):
        result = gate([result_dict("conventional", 2.5)], [])
        (technique_gate,) = result.gates
        assert technique_gate.source == "floor"
        assert technique_gate.threshold == 2.0
        assert result.ok

    def test_empty_ledger_still_catches_gross_regression(self):
        result = gate([result_dict("conventional", 1.2)], [])
        assert not result.ok

    def test_single_sample_is_not_a_baseline(self, ledger_path):
        from repro.obs.perf import append_run

        append_run(ledger_path, make_record({"conventional": 8.0}))
        entries = read_ledger(ledger_path)
        result = gate([result_dict("conventional", 2.5)], entries)
        (technique_gate,) = result.gates
        assert technique_gate.source == "floor"
        assert technique_gate.samples == 1

    def test_unknown_technique_without_floor_is_informational(self):
        result = gate([result_dict("word_write", 1.01)], [])
        (technique_gate,) = result.gates
        assert technique_gate.source == "none"
        assert not technique_gate.regressed
        assert result.ok


class TestValidationAndReport:
    def test_bad_parameters_rejected(self, seeded_ledger):
        entries = read_ledger(seeded_ledger)
        results = [result_dict("conventional", 8.0)]
        with pytest.raises(ValidationError):
            gate(results, entries, window=1)
        with pytest.raises(ValidationError):
            gate(results, entries, sigma=0)
        with pytest.raises(ValidationError):
            gate(results, entries, min_band=1.0)
        with pytest.raises(ValidationError):
            gate([], entries)

    def test_to_dict_is_json_shaped(self, seeded_ledger):
        import json

        entries = read_ledger(seeded_ledger)
        result = gate([result_dict("conventional", 5.0)], entries)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["ok"] is False
        assert payload["comparable_entries"] == 5
        assert payload["gates"][0]["regressed"] is True
