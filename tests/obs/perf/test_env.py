"""Environment-fingerprint tests: schema, git states, graceful decay."""

import subprocess

from repro.obs.perf import environment_fingerprint, utc_timestamp
from repro.obs.perf.env import UNKNOWN, cpu_model, git_commit

FINGERPRINT_KEYS = {
    "commit",
    "python",
    "python_impl",
    "cpu_count",
    "cpu_model",
    "hostname",
    "platform",
}


class TestFingerprint:
    def test_schema_and_types(self):
        env = environment_fingerprint()
        assert set(env) == FINGERPRINT_KEYS
        assert isinstance(env["cpu_count"], int)
        for key in FINGERPRINT_KEYS - {"cpu_count"}:
            assert isinstance(env[key], str) and env[key]

    def test_fingerprint_is_json_serialisable(self):
        import json

        assert json.loads(json.dumps(environment_fingerprint()))


class TestGitCommit:
    def test_outside_a_repo_is_unknown(self, tmp_path):
        assert git_commit(cwd=tmp_path) == UNKNOWN

    def test_clean_and_dirty_repos(self, tmp_path):
        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True, capture_output=True
            )

        git("init")
        git("config", "user.email", "t@t")
        git("config", "user.name", "t")
        (tmp_path / "f.txt").write_text("x")
        git("add", "f.txt")
        git("commit", "-m", "seed")
        clean = git_commit(cwd=tmp_path)
        assert len(clean) == 40 and not clean.endswith("+dirty")
        (tmp_path / "f.txt").write_text("changed")
        assert git_commit(cwd=tmp_path) == clean + "+dirty"


class TestCpuModelAndTimestamp:
    def test_cpu_model_is_nonempty(self):
        assert cpu_model()

    def test_utc_timestamp_shape(self):
        stamp = utc_timestamp()
        # ISO-8601, second resolution, explicit UTC offset.
        assert stamp.endswith("+00:00")
        assert "." not in stamp
        assert len(stamp) == len("2026-08-08T10:00:00+00:00")
