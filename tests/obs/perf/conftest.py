"""Shared builders for the performance-observatory tests."""

import pytest

from repro.obs.perf import append_run, run_record

WORKLOAD = {
    "benchmark": "bwaves",
    "geometry": "64KB/4-way/32B",
    "accesses": 200_000,
}

ENV = {
    "commit": "a" * 40,
    "python": "3.11.7",
    "python_impl": "CPython",
    "cpu_count": 1,
    "cpu_model": "test-cpu",
    "hostname": "testhost",
    "platform": "linux",
}


def result_dict(technique, speedup, scalar_seconds=1.0):
    """One ``BenchResult.to_dict()``-shaped result with a given speedup."""
    batched_seconds = scalar_seconds / speedup
    accesses = WORKLOAD["accesses"]
    return {
        "technique": technique,
        "accesses": accesses,
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "scalar_accesses_per_second": accesses / scalar_seconds,
        "batched_accesses_per_second": accesses / batched_seconds,
        "speedup": speedup,
    }


def make_record(speedups, timestamp="2026-08-08T10:00:00+00:00", **overrides):
    """A full ledger record for a run with ``technique -> speedup``."""
    workload = dict(WORKLOAD)
    workload.update(overrides)
    return run_record(
        [result_dict(t, s) for t, s in speedups.items()],
        benchmark=workload["benchmark"],
        geometry=workload["geometry"],
        accesses=workload["accesses"],
        seed=2012,
        repeats=3,
        env=ENV,
        timestamp=timestamp,
    )


@pytest.fixture
def ledger_path(tmp_path):
    return tmp_path / "bench_history.jsonl"


@pytest.fixture
def seeded_ledger(ledger_path):
    """A ledger with five quiet runs for conventional/wg."""
    for i, conv in enumerate((8.0, 8.1, 7.9, 8.2, 8.0)):
        append_run(
            ledger_path,
            make_record(
                {"conventional": conv, "wg": 4.0 + 0.05 * i},
                timestamp=f"2026-08-0{i + 1}T10:00:00+00:00",
            ),
        )
    return ledger_path
