"""Ledger tests: append/read round-trip, torn lines, schema skew."""

import json

import pytest

from repro.errors import ValidationError
from repro.obs.perf import (
    LEDGER_SCHEMA_VERSION,
    append_run,
    read_ledger,
    run_record,
)
from tests.obs.perf.conftest import ENV, WORKLOAD, make_record, result_dict


class TestRunRecord:
    def test_record_shape(self):
        record = make_record({"conventional": 8.0})
        assert record["schema"] == LEDGER_SCHEMA_VERSION
        assert record["benchmark"] == "bwaves"
        assert record["env"]["hostname"] == "testhost"
        (result,) = record["results"]
        assert result["technique"] == "conventional"
        assert result["speedup"] == 8.0

    def test_accepts_bench_result_objects(self):
        class FakeBenchResult:
            def to_dict(self):
                return result_dict("rmw", 7.5)

        record = run_record(
            [FakeBenchResult()],
            benchmark="bwaves",
            geometry="g",
            accesses=10,
            seed=1,
            repeats=1,
            env=ENV,
            timestamp="2026-08-08T10:00:00+00:00",
        )
        assert record["results"][0]["technique"] == "rmw"

    def test_rejects_non_result_payloads(self):
        with pytest.raises(ValidationError):
            run_record(
                ["not-a-result"],
                benchmark="bwaves",
                geometry="g",
                accesses=10,
                seed=1,
                repeats=1,
                env=ENV,
                timestamp="t",
            )


class TestAppendRead:
    def test_round_trip(self, ledger_path):
        append_run(ledger_path, make_record({"conventional": 8.0, "wg": 4.1}))
        append_run(
            ledger_path,
            make_record(
                {"conventional": 8.2}, timestamp="2026-08-08T11:00:00+00:00"
            ),
        )
        entries = read_ledger(ledger_path)
        assert len(entries) == 2
        first, second = entries
        assert first.speedup("conventional") == 8.0
        assert first.speedup("wg") == 4.1
        assert first.speedup("rmw") is None
        assert second.timestamp_utc == "2026-08-08T11:00:00+00:00"
        assert first.matches_workload(**WORKLOAD)

    def test_missing_file_is_empty(self, tmp_path):
        assert read_ledger(tmp_path / "nope.jsonl") == []

    def test_append_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "ledger.jsonl"
        append_run(path, make_record({"wg": 4.0}))
        assert len(read_ledger(path)) == 1

    def test_append_rejects_arbitrary_dicts(self, ledger_path):
        with pytest.raises(ValidationError):
            append_run(ledger_path, {"speedup": 8.0})

    def test_torn_final_line_is_skipped(self, ledger_path):
        append_run(ledger_path, make_record({"wg": 4.0}))
        with open(ledger_path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "benchmark": "bw')  # killed mid-write
        skipped = []
        entries = read_ledger(
            ledger_path, on_skip=lambda n, why: skipped.append((n, why))
        )
        assert len(entries) == 1
        assert skipped and skipped[0][0] == 2

    def test_future_schema_is_skipped_not_guessed(self, ledger_path):
        append_run(ledger_path, make_record({"wg": 4.0}))
        future = make_record({"wg": 9.9})
        future["schema"] = LEDGER_SCHEMA_VERSION + 1
        with open(ledger_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(future) + "\n")
        entries = read_ledger(ledger_path)
        assert len(entries) == 1
        assert entries[0].speedup("wg") == 4.0

    def test_blank_lines_ignored(self, ledger_path):
        append_run(ledger_path, make_record({"wg": 4.0}))
        with open(ledger_path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        assert len(read_ledger(ledger_path)) == 1


class TestEntryAccessors:
    def test_provenance_shorthands(self, ledger_path):
        record = make_record({"wg": 4.0})
        record["env"]["commit"] = "deadbeef" * 5 + "+dirty"
        append_run(ledger_path, record)
        (entry,) = read_ledger(ledger_path)
        assert entry.short_commit == "deadbeefde+dirty"
        assert entry.hostname == "testhost"
        assert entry.short_timestamp == "2026-08-08 10:00"

    def test_unknown_env_degrades_gracefully(self, ledger_path):
        record = make_record({"wg": 4.0})
        record["env"] = {}
        append_run(ledger_path, record)
        (entry,) = read_ledger(ledger_path)
        assert entry.commit == "unknown"
        assert entry.short_commit == "unknown"
        assert entry.hostname == "unknown"

    def test_workload_mismatch(self, ledger_path):
        append_run(ledger_path, make_record({"wg": 4.0}))
        (entry,) = read_ledger(ledger_path)
        assert not entry.matches_workload("mcf", WORKLOAD["geometry"], 200_000)
        assert not entry.matches_workload("bwaves", "other", 200_000)
        assert not entry.matches_workload(
            "bwaves", WORKLOAD["geometry"], 100
        )
