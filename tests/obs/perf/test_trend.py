"""Trend-report tests: sparklines, deltas, markdown structure."""

import pytest

from repro.errors import ValidationError
from repro.obs.perf import append_run, read_ledger, render_trend, write_trend_report
from repro.obs.perf.trend import _delta, sparkline
from tests.obs.perf.conftest import make_record


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_uses_middle_block(self):
        assert sparkline([4.0, 4.0, 4.0]) == "▄▄▄"

    def test_monotone_series_spans_the_ramp(self):
        line = sparkline([1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 3


class TestDelta:
    def test_first_run(self):
        assert _delta(8.0, None) == "· first run"

    def test_up_down_and_flat(self):
        assert _delta(8.2, 8.0) == "▲ +0.20x"
        assert _delta(7.8, 8.0) == "▼ -0.20x"
        assert _delta(8.001, 8.0).startswith("·")


class TestRenderTrend:
    def test_empty_ledger_message(self):
        text = render_trend([])
        assert "ledger is empty" in text
        assert "repro-8t bench --history" in text

    def test_tables_and_provenance(self, seeded_ledger):
        entries = read_ledger(seeded_ledger)
        text = render_trend(entries)
        assert "## Per-technique trajectory" in text
        assert "## Recent runs" in text
        assert "`testhost`" in text
        assert "Ledger runs: **5**" in text
        # One trajectory row per technique, sorted.
        conv_row = next(
            line for line in text.splitlines()
            if line.startswith("| conventional |")
        )
        assert "8.00x" in conv_row  # latest of the seeded series
        assert "`" in conv_row  # sparkline cell

    def test_window_and_recent_bound_the_tables(self, seeded_ledger):
        entries = read_ledger(seeded_ledger)
        text = render_trend(entries, window=3, recent_runs=2)
        assert "(showing the last 3)" in text
        run_rows = [
            line for line in text.splitlines()
            if line.startswith("| 2026-")
        ]
        assert len(run_rows) == 2

    def test_technique_missing_from_some_runs(self, ledger_path):
        append_run(ledger_path, make_record({"conventional": 8.0}))
        append_run(
            ledger_path,
            make_record(
                {"conventional": 8.1, "wg": 4.0},
                timestamp="2026-08-08T11:00:00+00:00",
            ),
        )
        text = render_trend(read_ledger(ledger_path))
        # wg appears with a single-sample row and a "-" cell for the
        # run that did not measure it.
        assert "| wg | 4.00x | · first run |" in text
        assert "| - |" in text or "| - " in text

    def test_bad_parameters_rejected(self, seeded_ledger):
        entries = read_ledger(seeded_ledger)
        with pytest.raises(ValidationError):
            render_trend(entries, window=0)
        with pytest.raises(ValidationError):
            render_trend(entries, recent_runs=0)


class TestWriteTrendReport:
    def test_writes_and_creates_parents(self, tmp_path, seeded_ledger):
        out = tmp_path / "docs" / "perf-trend.md"
        path = write_trend_report(out, read_ledger(seeded_ledger))
        assert path == out
        assert out.read_text(encoding="utf-8").startswith(
            "# Hot-path performance trend"
        )
