"""Unit tests for the command-line interface."""

import argparse

import pytest

from repro.cli import build_parser, main, parse_geometry


class TestParseGeometry:
    def test_k_suffix(self):
        geometry = parse_geometry("64K:4:32")
        assert geometry.size_bytes == 64 * 1024
        assert geometry.associativity == 4
        assert geometry.block_bytes == 32

    def test_m_suffix(self):
        assert parse_geometry("1M:8:64").size_bytes == 1024 * 1024

    def test_plain_bytes(self):
        assert parse_geometry("512:2:32").size_bytes == 512

    def test_bad_shape(self):
        with pytest.raises(argparse.ArgumentTypeError, match="SIZE:WAYS:BLOCK"):
            parse_geometry("64K:4")

    def test_bad_values(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_geometry("63K:4:32")  # not a power of two


class TestSubcommands:
    def test_figures_lists_ids(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "fig9" in output
        assert "sec5.4" in output

    def test_kernels_lists(self, capsys):
        assert main(["kernels"]) == 0
        assert "matmul" in capsys.readouterr().out

    def test_benchmarks_lists(self, capsys):
        assert main(["benchmarks"]) == 0
        output = capsys.readouterr().out
        assert "bwaves" in output
        assert "lattice Boltzmann" in output

    def test_figure_sec54(self, capsys):
        assert main(["figure", "sec5.4"]) == 0
        assert "Tag-Buffer" in capsys.readouterr().out

    def test_figure_with_subset_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig5.csv"
        code = main(
            [
                "figure",
                "fig5",
                "--accesses",
                "2000",
                "--benchmarks",
                "bwaves",
                "mcf",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert "bwaves" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            [
                "compare",
                "mcf",
                "--accesses",
                "3000",
                "--geometry",
                "4K:4:32",
                "--techniques",
                "rmw",
                "wg",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "array accesses" in output
        assert "wg" in output

    def test_trace_roundtrip_through_stats(self, capsys, tmp_path):
        trace_path = tmp_path / "t.trc"
        assert (
            main(
                [
                    "trace",
                    "gcc",
                    str(trace_path),
                    "--accesses",
                    "2000",
                    "--format",
                    "text",
                ]
            )
            == 0
        )
        assert main(["stats", str(trace_path)]) == 0
        output = capsys.readouterr().out
        assert "silent writes" in output
        assert "WW share" in output

    def test_trace_binary(self, tmp_path):
        trace_path = tmp_path / "t.bin"
        assert (
            main(
                [
                    "trace",
                    "mcf",
                    str(trace_path),
                    "--accesses",
                    "1000",
                    "--format",
                    "binary",
                ]
            )
            == 0
        )
        assert main(["stats", str(trace_path)]) == 0

    def test_fit_on_generated_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "f.trc"
        assert (
            main(["trace", "wrf", str(trace_path), "--accesses", "3000"]) == 0
        )
        assert main(["fit", str(trace_path), "--name", "wrf-fit"]) == 0
        output = capsys.readouterr().out
        assert "silent fraction" in output
        assert "burst mean" in output

    def test_figure_bars(self, capsys):
        assert main(["figure", "sec5.4", "--bars"]) == 0
        assert "█" in capsys.readouterr().out

    def test_kernel_preview(self, capsys):
        assert main(["kernel", "histogram", "--words", "256"]) == 0
        output = capsys.readouterr().out
        assert "accesses total" in output

    def test_kernel_dump(self, tmp_path, capsys):
        out = tmp_path / "k.trc"
        assert main(["kernel", "stencil", str(out), "--words", "256"]) == 0
        assert out.exists()

    def test_unknown_figure_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_parser_builds(self):
        parser = build_parser()
        assert parser.prog == "repro-8t"


class TestObservabilityFlags:
    def test_compare_with_metrics_trace_and_snapshots(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        snapshots = tmp_path / "s.csv"
        code = main(
            [
                "compare",
                "bwaves",
                "--accesses",
                "3000",
                "--metrics-out",
                str(metrics),
                "--trace-out",
                str(trace),
                "--snapshots-out",
                str(snapshots),
                "--sample-window",
                "1000",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "wrote metrics" in output
        assert "interval snapshots" in output
        state = json.loads(metrics.read_text())
        assert state["counters"]["ctrl.rmw.rmw_issued"] > 0
        assert state["counters"]["span.simulate.wg.calls"] == 1
        lines = trace.read_text().splitlines()
        assert all(json.loads(line)["name"] for line in lines)
        assert snapshots.read_text().startswith("label,window_index")

    def test_compare_chrome_trace_output(self, capsys, tmp_path):
        import json

        trace = tmp_path / "t.json"
        code = main(
            ["compare", "mcf", "--accesses", "2000", "--trace-out", str(trace)]
        )
        assert code == 0
        document = json.loads(trace.read_text())
        assert document["traceEvents"], "Chrome trace must not be empty"
        assert {"name", "ph", "ts", "pid", "tid"} <= set(
            document["traceEvents"][0]
        )

    def test_compare_without_flags_stays_dark(self, capsys):
        assert main(["compare", "bwaves", "--accesses", "2000"]) == 0
        assert "wrote metrics" not in capsys.readouterr().out

    def test_figure_with_metrics_out(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "m.json"
        code = main(
            [
                "figure",
                "fig5",
                "--accesses",
                "1500",
                "--benchmarks",
                "bwaves",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        state = json.loads(metrics.read_text())
        assert state["counters"]["span.figure.fig5.calls"] == 1

    def test_trace_crc_roundtrip_through_stats(self, capsys, tmp_path):
        trace_path = tmp_path / "t.bin"
        assert (
            main(
                [
                    "trace",
                    "mcf",
                    str(trace_path),
                    "--accesses",
                    "1000",
                    "--format",
                    "binary",
                    "--crc",
                ]
            )
            == 0
        )
        assert trace_path.read_bytes()[:8] == b"RPTRACE2"
        assert main(["stats", str(trace_path)]) == 0
        assert "silent writes" in capsys.readouterr().out

    def test_profile_prints_tables(self, capsys):
        code = main(
            ["profile", "bwaves", "--accesses", "3000", "--techniques", "rmw", "wg"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "phase timings" in output
        assert "measure.wg" in output
        assert "hot counters" in output
        assert "ctrl.rmw.rmw_issued" in output
        assert "total across techniques" in output


class TestErrorHandling:
    """ReproError failures must be one-line messages, not tracebacks."""

    def test_usage_error_exits_2(self, capsys, tmp_path):
        # --crc is meaningless for the text format: ConfigurationError.
        code = main(
            [
                "trace",
                "mcf",
                str(tmp_path / "t.trc"),
                "--accesses",
                "500",
                "--format",
                "text",
                "--crc",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-8t: error:")
        assert "Traceback" not in err

    def test_runtime_error_exits_3(self, capsys, tmp_path):
        trace_path = tmp_path / "bad.bin"
        trace_path.write_bytes(b"WRONGMAG" + b"\x00" * 25)
        code = main(["stats", str(trace_path)])
        assert code == 3
        err = capsys.readouterr().err
        assert "bad magic" in err
        assert "Traceback" not in err

    def test_corrupt_crc_trace_exits_3_naming_offset(self, capsys, tmp_path):
        from repro.faultinject import flip_bit

        trace_path = tmp_path / "t.bin"
        assert (
            main(
                [
                    "trace",
                    "mcf",
                    str(trace_path),
                    "--accesses",
                    "500",
                    "--format",
                    "binary",
                    "--crc",
                ]
            )
            == 0
        )
        flip_bit(trace_path, byte_offset=20, bit=1)
        assert main(["stats", str(trace_path)]) == 3
        assert "byte offset" in capsys.readouterr().err

    def test_debug_restores_traceback(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(
                [
                    "--debug",
                    "trace",
                    "mcf",
                    str(tmp_path / "t.trc"),
                    "--format",
                    "text",
                    "--crc",
                ]
            )

    def test_stale_checkpoint_exits_3(self, capsys, tmp_path):
        checkpoint = tmp_path / "run.jsonl"
        base = [
            "compare",
            "mcf",
            "--accesses",
            "1000",
            "--techniques",
            "rmw",
            "wg",
            "--checkpoint",
            str(checkpoint),
        ]
        assert main(base) == 0
        # Same journal file, different config: stale.
        code = main(
            [
                "compare",
                "mcf",
                "--accesses",
                "2000",
                "--techniques",
                "rmw",
                "wg",
                "--checkpoint",
                str(checkpoint),
            ]
        )
        assert code == 3
        assert "stale checkpoint" in capsys.readouterr().err


class TestResilienceFlags:
    def test_compare_checkpoint_resume_identical_output(self, capsys, tmp_path):
        checkpoint = tmp_path / "cmp.jsonl"
        argv = [
            "compare",
            "bwaves",
            "--accesses",
            "2000",
            "--techniques",
            "rmw",
            "wg",
            "--checkpoint",
            str(checkpoint),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert checkpoint.exists()

    def test_figure_with_retries_and_checkpoint_dir(self, capsys, tmp_path):
        checkpoint_dir = tmp_path / "ckpts"
        argv = [
            "figure",
            "fig9",  # campaign-backed, so the checkpoint journals rows
            "--accesses",
            "1500",
            "--benchmarks",
            "bwaves",
            "--retries",
            "2",
            "--checkpoint",
            str(checkpoint_dir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(checkpoint_dir.glob("*.jsonl"))
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_figure_with_processes_matches_sequential(self, capsys):
        argv = [
            "figure",
            "fig9",
            "--accesses",
            "1500",
            "--benchmarks",
            "bwaves",
            "mcf",
        ]
        assert main(argv) == 0
        sequential = capsys.readouterr().out
        assert main(argv + ["--processes", "2", "--worker-timeout", "60"]) == 0
        assert capsys.readouterr().out == sequential


class TestCheckSubcommand:
    def test_clean_campaign_exits_zero(self, capsys):
        argv = [
            "check",
            "--seed",
            "0",
            "--iterations",
            "4",
            "--accesses",
            "80",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "OK" in output
        assert "4 technique(s)" in output

    def test_technique_subset(self, capsys):
        argv = [
            "check",
            "--iterations",
            "3",
            "--accesses",
            "60",
            "--techniques",
            "wg",
        ]
        assert main(argv) == 0
        assert "1 technique(s)" in capsys.readouterr().out

    def test_geometry_restriction(self, capsys):
        argv = [
            "check",
            "--iterations",
            "2",
            "--accesses",
            "60",
            "--geometry",
            "512:2:32",
        ]
        assert main(argv) == 0
        assert "OK" in capsys.readouterr().out

    def test_divergence_exits_three_and_saves_corpus(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.core.write_grouping import WriteGroupingController

        original = WriteGroupingController._process_batch_fast

        def buggy(controller, batch):
            original(controller, batch)
            controller.counts.grouped_writes += 1

        monkeypatch.setattr(
            WriteGroupingController, "_process_batch_fast", buggy
        )
        corpus = tmp_path / "corpus"
        argv = [
            "check",
            "--iterations",
            "1",
            "--accesses",
            "120",
            "--techniques",
            "wg",
            "--corpus",
            str(corpus),
        ]
        assert main(argv) == 3
        output = capsys.readouterr().out
        assert "FAILURE" in output
        assert "grouped_writes" in output
        assert list(corpus.glob("*.json"))

    def test_replay_mode(self, capsys, tmp_path, monkeypatch):
        from repro.core.write_grouping import WriteGroupingController

        original = WriteGroupingController._process_batch_fast

        def buggy(controller, batch):
            original(controller, batch)
            controller.counts.grouped_writes += 1

        corpus = tmp_path / "corpus"
        with monkeypatch.context() as patch:
            patch.setattr(
                WriteGroupingController, "_process_batch_fast", buggy
            )
            main(
                [
                    "check",
                    "--iterations",
                    "1",
                    "--accesses",
                    "120",
                    "--techniques",
                    "wg",
                    "--corpus",
                    str(corpus),
                ]
            )
        capsys.readouterr()
        # Bug gone: the saved repro must replay green.
        assert main(["check", "--corpus", str(corpus), "--replay"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_replay_without_corpus_is_usage_error(self, capsys):
        assert main(["check", "--replay"]) == 2
        assert "needs --corpus" in capsys.readouterr().err


class TestPerfObservatory:
    BENCH = [
        "--accesses", "1500", "--repeats", "1",
        "--techniques", "conventional", "wg",
    ]

    def test_bench_history_appends_valid_jsonl(self, capsys, tmp_path):
        import json

        ledger = tmp_path / "ledger.jsonl"
        for _ in range(2):
            assert main(["bench", *self.BENCH, "--history", str(ledger)]) == 0
        capsys.readouterr()
        lines = ledger.read_text().strip().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["schema"] == 1
        assert record["benchmark"] == "bwaves"
        assert {"commit", "python", "hostname", "cpu_count"} <= set(
            record["env"]
        )
        assert {r["technique"] for r in record["results"]} == {
            "conventional", "wg",
        }

    def test_bench_json_snapshot_carries_environment(self, capsys, tmp_path):
        import json

        out = tmp_path / "snap.json"
        assert main(["bench", *self.BENCH, "--json", str(out)]) == 0
        capsys.readouterr()
        snapshot = json.loads(out.read_text())
        assert "environment" in snapshot
        assert "timestamp_utc" in snapshot
        assert snapshot["environment"]["python_impl"]

    def test_perf_compare_passes_on_healthy_tree(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        for _ in range(2):
            assert main(["bench", *self.BENCH, "--history", str(ledger)]) == 0
        # A wide noise band: this asserts the wiring (measure -> gate ->
        # append), not the statistics — tiny traces on a shared box are
        # noisy, and the band math has its own deterministic tests.
        assert (
            main(
                [
                    "perf", "compare", "--ledger", str(ledger),
                    *self.BENCH, "--append",
                    "--sigma", "6", "--min-band", "0.45",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "perf gate passed" in output
        # --append grew the ledger to three runs.
        assert len(ledger.read_text().strip().splitlines()) == 3

    def test_perf_compare_fails_on_injected_regression(self, capsys, tmp_path):
        import json

        ledger = tmp_path / "ledger.jsonl"
        snap = tmp_path / "snap.json"
        for _ in range(2):
            assert (
                main(
                    [
                        "bench", *self.BENCH,
                        "--history", str(ledger), "--json", str(snap),
                    ]
                )
                == 0
            )
        # Inject a synthetic regression: batched as slow as scalar.
        snapshot = json.loads(snap.read_text())
        for result in snapshot["results"]:
            result["batched_seconds"] = result["scalar_seconds"]
            result["speedup"] = 1.0
        snap.write_text(json.dumps(snapshot))
        report = tmp_path / "gate.json"
        code = main(
            [
                "perf", "compare", "--ledger", str(ledger),
                "--current", str(snap), "--report", str(report),
            ]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "REGRESSION" in captured.err
        verdict = json.loads(report.read_text())
        assert verdict["ok"] is False

    def test_perf_report_renders_markdown(self, capsys, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        assert main(["bench", *self.BENCH, "--history", str(ledger)]) == 0
        out = tmp_path / "trend.md"
        assert (
            main(["perf", "report", "--ledger", str(ledger), "--out", str(out)])
            == 0
        )
        capsys.readouterr()
        text = out.read_text(encoding="utf-8")
        assert text.startswith("# Hot-path performance trend")
        assert "| conventional |" in text

    def test_perf_report_on_missing_ledger(self, capsys, tmp_path):
        out = tmp_path / "trend.md"
        assert (
            main(
                [
                    "perf", "report",
                    "--ledger", str(tmp_path / "none.jsonl"),
                    "--out", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert "ledger is empty" in out.read_text(encoding="utf-8")


class TestPowerSubcommand:
    FAST = ["--accesses", "2000", "--benchmarks", "bwaves", "mcf"]

    def test_claims_verified_exit_zero(self, capsys):
        assert main(["power", *self.FAST]) == 0
        output = capsys.readouterr().out
        assert "Set-Buffer %" in output
        assert "all overhead claims verified" in output
        assert "backend calls" in output

    def test_forced_library_backend(self, capsys):
        assert main(["power", "--estimator", "library", *self.FAST]) == 0
        output = capsys.readouterr().out
        assert "library" in output
        assert "analytical=0" in output  # forced: analytical never called
        assert "\nanalytical" not in output  # and it gets no table row

    def test_json_document_and_warm_cache(self, capsys, tmp_path):
        import json

        report = tmp_path / "overheads.json"
        cache = tmp_path / "cache"
        argv = [
            "power",
            "--estimator-cache", str(cache),
            "--json", str(report),
            *self.FAST,
        ]
        assert main(argv) == 0
        document = json.loads(report.read_text(encoding="utf-8"))
        assert document["violations"] == []
        assert document["summary"]["set_buffer_overhead_pct"] < 0.2
        assert document["summary"]["tag_buffer_bits"] < 150.0
        assert document["estimator"]["cache"]["hits"] == 0

        assert main(argv) == 0
        capsys.readouterr()
        warm = json.loads(report.read_text(encoding="utf-8"))
        calls = warm["estimator"]["backend_calls"]
        assert calls == {"analytical": 0, "library": 0}
        assert warm["estimator"]["cache"]["misses"] == 0
        assert warm["rows"] == document["rows"]

    def test_unknown_estimator_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["power", "--estimator", "spice"])

    def test_estimator_flags_on_figure(self, capsys):
        assert main(["figure", "sec5.4", "--estimator", "analytical"]) == 0
        assert "Tag-Buffer" in capsys.readouterr().out
