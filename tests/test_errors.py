"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    ConfigurationError,
    PortConflictError,
    ReproError,
    SimulationError,
    TraceFormatError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            ConfigurationError,
            TraceFormatError,
            SimulationError,
            PortConflictError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_port_conflict_is_simulation_error(self):
        assert issubclass(PortConflictError, SimulationError)

    def test_half_select_violation_in_hierarchy(self):
        from repro.sram.array import HalfSelectViolation

        assert issubclass(HalfSelectViolation, SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ConfigurationError("bad config")

    def test_library_raises_its_own_types(self):
        from repro.cache.config import CacheGeometry

        with pytest.raises(ConfigurationError):
            CacheGeometry(100, 4, 32)

        from repro.errors import TraceFormatError as TFE
        from repro.trace.textio import read_text_trace

        import tempfile, os

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bad.trc")
            with open(path, "w") as handle:
                handle.write("not a trace\n")
            with pytest.raises(TFE):
                list(read_text_trace(path))
