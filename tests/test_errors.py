"""Unit tests for the exception hierarchy.

Beyond subclass relationships, every error class is exercised from the
site its docstring names — so the documented contract ("raised by X")
is executable, not aspirational.
"""

import pytest

from repro.errors import (
    CampaignFailedError,
    CheckpointError,
    ConfigurationError,
    PortConflictError,
    ReproError,
    SimulationError,
    TraceFormatError,
    WorkerCrashError,
    WorkerTimeoutError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            ConfigurationError,
            TraceFormatError,
            SimulationError,
            PortConflictError,
            WorkerTimeoutError,
            WorkerCrashError,
            CheckpointError,
            CampaignFailedError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_retryable_errors_are_simulation_errors(self):
        # The retry loop only retries SimulationError-shaped failures,
        # so the worker-death errors must sit under it.
        for exc_type in (
            PortConflictError,
            WorkerTimeoutError,
            WorkerCrashError,
            CampaignFailedError,
        ):
            assert issubclass(exc_type, SimulationError)

    def test_half_select_violation_in_hierarchy(self):
        from repro.sram.array import HalfSelectViolation

        assert issubclass(HalfSelectViolation, SimulationError)

    def test_injected_fault_in_hierarchy(self):
        from repro.faultinject import InjectedFaultError

        assert issubclass(InjectedFaultError, SimulationError)

    def test_checkpoint_error_not_retryable(self):
        # A stale checkpoint is an operator problem; retrying cannot fix
        # it, so it must not look like a simulation failure.
        assert not issubclass(CheckpointError, SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ConfigurationError("bad config")

    def test_campaign_failed_carries_failed_rows(self):
        from repro.sim.resilience import FailedRow

        rows = (FailedRow("mcf", 3, "WorkerCrashError", "died"),)
        exc = CampaignFailedError("1 benchmark failed", failed_rows=rows)
        assert exc.failed_rows == rows
        assert CampaignFailedError("none").failed_rows == ()


class TestRaisedFromDocumentedSite:
    def test_configuration_error_from_cache_geometry(self):
        from repro.cache.config import CacheGeometry

        with pytest.raises(ConfigurationError):
            CacheGeometry(100, 4, 32)

    def test_trace_format_error_from_text_reader(self, tmp_path):
        from repro.trace.textio import read_text_trace

        path = tmp_path / "bad.trc"
        path.write_text("not a trace\n")
        with pytest.raises(TraceFormatError):
            list(read_text_trace(path))

    def test_trace_format_error_from_binary_reader(self, tmp_path):
        from repro.trace.binio import read_binary_trace

        path = tmp_path / "bad.bin"
        path.write_bytes(b"WRONGMAG" + b"\x00" * 25)
        with pytest.raises(TraceFormatError, match="bad magic"):
            list(read_binary_trace(path))

    def test_port_conflict_error_from_reserve(self):
        from repro.sram.ports import PortKind, PortTracker

        tracker = PortTracker()
        assert tracker.reserve(PortKind.WRITE, 0, 2) == 0
        with pytest.raises(PortConflictError, match="busy until cycle 2"):
            tracker.reserve(PortKind.WRITE, 1, 1)
        assert tracker.conflicts[PortKind.WRITE] == 1
        # The read port is independent — no conflict there.
        assert tracker.reserve(PortKind.READ, 1, 1) == 1

    def test_half_select_violation_from_interleaved_partial_write(self):
        from repro.sram.array import HalfSelectViolation, SRAMArray
        from repro.sram.geometry import ArrayGeometry

        array = SRAMArray(ArrayGeometry(rows=4, words_per_row=8, interleaved=True))
        with pytest.raises(HalfSelectViolation):
            array.write_words(0, {0: 1})

    def test_worker_timeout_error_from_run_supervised(self):
        import time

        from repro.sim.resilience import run_supervised

        with pytest.raises(WorkerTimeoutError):
            run_supervised(time.sleep, 60, timeout_s=0.5)

    def test_worker_crash_error_from_run_supervised(self):
        import os

        from repro.sim.resilience import run_supervised

        with pytest.raises(WorkerCrashError):
            run_supervised(os._exit, 7)

    def test_checkpoint_error_from_stale_journal(self, tmp_path):
        from repro.sim.checkpoint import CheckpointJournal

        path = tmp_path / "run.jsonl"
        CheckpointJournal.open(path, "campaign", "a" * 64).close()
        with pytest.raises(CheckpointError, match="stale"):
            CheckpointJournal.open(path, "campaign", "b" * 64)

    def test_campaign_failed_error_from_strict_campaign(self, monkeypatch):
        from repro.faultinject import FaultSpec, inject
        from repro.sim.campaign import run_campaign
        from repro.sim.experiment import ExperimentConfig
        from repro.sim.resilience import RetryPolicy

        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        config = ExperimentConfig(
            benchmarks=("mcf",), techniques=("rmw",), accesses_per_benchmark=500
        )
        with inject(FaultSpec(kind="transient", benchmark="mcf", until_attempt=9)):
            with pytest.raises(CampaignFailedError):
                run_campaign(config, retry=RetryPolicy.none(), strict=True)
