"""Unit tests for the port-contention timing model (Section 5.5)."""

import pytest

from repro.perf.timing import TimingSimulator, evaluate_performance
from repro.sram.timing import PhaseTiming
from repro.trace.record import AccessType, MemoryAccess

from tests.conftest import make_random_trace


def R(icount, address):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


def W(icount, address, value):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


class TestBasicLatency:
    def test_uncontended_read_latency(self, tiny_geometry):
        result = TimingSimulator("rmw", tiny_geometry).run([R(0, 0)])
        assert result.mean_read_latency == PhaseTiming().array_read_cycles

    def test_rmw_write_blocks_following_read(self, tiny_geometry):
        """RMW's read phase occupies the read port: a read arriving
        right behind a write stalls (the paper's 1R/1W complaint)."""
        trace = [W(0, 0x00, 1), R(1, 0x20)]
        rmw = TimingSimulator("rmw", tiny_geometry).run(trace)
        assert rmw.read_port_conflicts >= 1
        assert rmw.mean_read_latency > PhaseTiming().array_read_cycles

    def test_grouped_write_frees_read_port(self, tiny_geometry):
        """Under WG the same pattern leaves the read port alone once the
        set is buffered."""
        trace = [W(0, 0x00, 1), W(2, 0x08, 2), R(3, 0x20)]
        wg = TimingSimulator("wg", tiny_geometry).run(trace)
        rmw = TimingSimulator("rmw", tiny_geometry).run(trace)
        assert wg.read_port_busy < rmw.read_port_busy

    def test_bypassed_read_is_fast(self, tiny_geometry):
        trace = [W(0, 0x00, 1), R(5, 0x00)]
        result = TimingSimulator("wg_rb", tiny_geometry).run(trace)
        assert result.bypassed_reads == 1
        # One array read (none for the bypass) plus the buffer latency.
        assert result.total_read_latency == PhaseTiming().set_buffer_cycles


class TestSuiteLevelDirections:
    @pytest.fixture(scope="class")
    def results(self, ):
        from repro.cache.config import CacheGeometry

        geometry = CacheGeometry(512, 2, 32)
        trace = make_random_trace(800, seed=3, word_span=100, write_share=0.45)
        return evaluate_performance(trace, geometry)

    def test_wg_rb_has_lowest_read_latency(self, results):
        """Section 5.5: WG+RB improves read latency."""
        assert (
            results["wg_rb"].mean_read_latency
            <= results["wg"].mean_read_latency
        )
        assert (
            results["wg_rb"].mean_read_latency
            < results["rmw"].mean_read_latency
        )

    def test_wg_reduces_read_port_pressure(self, results):
        assert results["wg"].read_port_busy < results["rmw"].read_port_busy

    def test_conventional_is_fastest_reference(self, results):
        assert (
            results["conventional"].mean_read_latency
            <= results["rmw"].mean_read_latency
        )

    def test_counts_consistent(self, results):
        for result in results.values():
            assert result.reads + result.writes == 800
            assert result.elapsed_cycles > 0
            assert 0.0 <= result.read_port_utilisation <= 1.0


class TestRejectsIterator:
    def test_one_shot_iterator_rejected(self, tiny_geometry):
        with pytest.raises(TypeError, match="reusable"):
            evaluate_performance(iter([]), tiny_geometry)
