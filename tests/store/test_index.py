"""LRU index journal: replay, recency, compaction, reconciliation."""

import json

from repro.store import StoreIndex
from repro.store.index import _COMPACT_FACTOR, _COMPACT_SLACK


def test_put_touch_evict_lru_order(tmp_path):
    index = StoreIndex(tmp_path / "index.jsonl")
    index.put("a", 10)
    index.put("b", 20)
    index.put("c", 30)
    index.touch("a")  # a is now most recent
    assert list(index.lru_order()) == ["b", "c", "a"]
    index.evict("b")
    assert "b" not in index
    assert len(index) == 2
    assert index.total_bytes() == 40
    assert index.size_of("c") == 30


def test_replay_restores_state(tmp_path):
    path = tmp_path / "index.jsonl"
    index = StoreIndex(path)
    index.put("a", 10)
    index.put("b", 20)
    index.touch("a")
    index.remove("b")
    replayed = StoreIndex(path)
    assert list(replayed.lru_order()) == ["a"]
    assert replayed.total_bytes() == 10
    assert replayed.skipped_lines == 0


def test_torn_trailing_line_skipped_and_healed(tmp_path):
    path = tmp_path / "index.jsonl"
    index = StoreIndex(path)
    index.put("a", 10)
    index.put("b", 20)
    with path.open("a") as handle:
        handle.write('{"op": "put", "key": "c"')  # torn mid-record
    replayed = StoreIndex(path)
    assert replayed.skipped_lines == 1
    assert sorted(replayed.lru_order()) == ["a", "b"]
    # The skip triggered a rewrite: a third replay sees a clean file.
    assert StoreIndex(path).skipped_lines == 0


def test_foreign_header_rebuilds_from_ops(tmp_path):
    path = tmp_path / "index.jsonl"
    lines = [
        json.dumps({"format": "something-else", "version": 9}),
        json.dumps({"op": "put", "key": "a", "size": 5}),
    ]
    path.write_text("\n".join(lines) + "\n")
    index = StoreIndex(path)
    assert list(index.lru_order()) == ["a"]
    assert index.skipped_lines >= 1


def test_missing_file_is_created(tmp_path):
    path = tmp_path / "index.jsonl"
    StoreIndex(path)
    assert path.exists()
    header = json.loads(path.read_text().splitlines()[0])
    assert header["format"] == "repro8t-store-index"


def test_compaction_bounds_journal_growth(tmp_path):
    path = tmp_path / "index.jsonl"
    index = StoreIndex(path)
    index.put("a", 1)
    for _ in range(10 * (_COMPACT_FACTOR + _COMPACT_SLACK)):
        index.touch("a")
    lines = path.read_text().splitlines()
    assert len(lines) <= 1 * _COMPACT_FACTOR + _COMPACT_SLACK + 1
    assert list(StoreIndex(path).lru_order()) == ["a"]


def test_reconcile_adopts_and_drops(tmp_path):
    index = StoreIndex(tmp_path / "index.jsonl")
    index.put("gone", 10)
    index.put("kept", 20)
    dropped, adopted = index.reconcile({"kept": 20, "orphan": 30})
    assert (dropped, adopted) == (1, 1)
    assert sorted(index.lru_order()) == ["kept", "orphan"]
    assert index.size_of("orphan") == 30


def test_deleting_index_loses_only_lru_order(tmp_path):
    path = tmp_path / "index.jsonl"
    index = StoreIndex(path)
    index.put("a", 10)
    path.unlink()
    rebuilt = StoreIndex(path)
    assert len(rebuilt) == 0
    dropped, adopted = rebuilt.reconcile({"a": 10})
    assert (dropped, adopted) == (0, 1)
    assert list(rebuilt.lru_order()) == ["a"]
