"""ResultStore behaviour: durability, self-healing, eviction, admin.

The crash-during-commit test runs ``put`` in a *child process* with a
``crash`` rule on the ``store.commit`` injection site — between the
tempfile fsync and the rename — so the parent can assert what a real
mid-commit death leaves behind (nothing visible, one sweepable
tempfile).
"""

import json
import multiprocessing
import sys

import pytest

from repro.errors import StoreError
from repro.faultinject import (
    FaultSpec,
    corrupt_entry_crc,
    inject,
    skew_entry_code,
    tear_entry,
)
from repro.store import ResultStore, digest

META = {
    "kind": "campaign-row",
    "benchmark": "mcf",
    "config": "c" * 16,
    "workload": "w" * 16,
    "code": "v" * 16,
}
PAYLOAD = {"reads": 7, "writes": 3}
KEY = digest(META)


def meta_for(benchmark, code="v" * 16):
    return dict(META, benchmark=benchmark, code=code)


@pytest.fixture(autouse=True)
def no_leftover_fault_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "cache")


def entry_path(store, key=KEY):
    return store.objects_dir / key[:2] / f"{key}.json"


# -- basic get/put -------------------------------------------------------


def test_miss_then_put_then_hit(store):
    events = []
    store.on_event = lambda name, **details: events.append(name)
    assert store.get(KEY, META, benchmark="mcf") is None
    store.put(KEY, META, PAYLOAD, benchmark="mcf")
    assert store.get(KEY, META, benchmark="mcf") == PAYLOAD
    assert events == ["store.miss", "store.hit"]
    assert store.counters["misses"] == 1
    assert store.counters["hits"] == 1
    assert store.counters["puts"] == 1


def test_persists_across_reopen(store, tmp_path):
    store.put(KEY, META, PAYLOAD)
    reopened = ResultStore(tmp_path / "cache")
    assert reopened.get(KEY, META) == PAYLOAD
    assert reopened.stats()["entries"] == 1


def test_rejects_file_as_root(tmp_path):
    rootfile = tmp_path / "not-a-dir"
    rootfile.write_text("x")
    with pytest.raises(StoreError):
        ResultStore(rootfile)


def test_rejects_nonpositive_bound(tmp_path):
    with pytest.raises(StoreError):
        ResultStore(tmp_path / "cache", max_bytes=0)


# -- self-healing reads --------------------------------------------------


@pytest.mark.parametrize(
    "corruptor, reason",
    [
        (tear_entry, "torn"),
        (corrupt_entry_crc, "crc"),
        (skew_entry_code, "skew"),
    ],
)
def test_corrupt_entry_quarantined_and_missed(store, corruptor, reason):
    store.put(KEY, META, PAYLOAD, benchmark="mcf")
    corruptor(entry_path(store))
    events = []
    store.on_event = lambda name, **details: events.append((name, details))
    assert store.get(KEY, META, benchmark="mcf") is None
    assert [name for name, _ in events] == ["store.corrupt", "store.miss"]
    assert events[0][1]["reason"] == reason
    assert store.counters["corrupt"] == 1
    quarantined = list(store.quarantine_dir.glob("*.json"))
    assert [p.name for p in quarantined] == [f"{KEY}.{reason}.json"]
    assert not entry_path(store).exists()
    # Self-healing: a re-put serves cleanly again.
    store.put(KEY, META, PAYLOAD, benchmark="mcf")
    assert store.get(KEY, META, benchmark="mcf") == PAYLOAD


def test_quarantine_name_collisions_get_serials(store):
    for _ in range(3):
        store.put(KEY, META, PAYLOAD)
        tear_entry(entry_path(store))
        assert store.get(KEY, META) is None
    names = sorted(p.name for p in store.quarantine_dir.glob("*.json"))
    assert names == [
        f"{KEY}.torn.1.json",
        f"{KEY}.torn.2.json",
        f"{KEY}.torn.json",
    ]


def test_renamed_entry_is_skew(store):
    """A hand-renamed object file must not be served under the new key."""
    store.put(KEY, META, PAYLOAD)
    other_meta = meta_for("gcc")
    other_key = digest(other_meta)
    target = entry_path(store, other_key)
    target.parent.mkdir(parents=True, exist_ok=True)
    entry_path(store).rename(target)
    assert store.get(other_key, other_meta) is None
    assert list(store.quarantine_dir.glob(f"{other_key}.skew*"))


# -- LRU eviction --------------------------------------------------------


def test_lru_eviction_under_byte_bound(tmp_path):
    store = ResultStore(tmp_path / "cache", max_bytes=1)  # evict all-but-one
    events = []
    store.on_event = lambda name, **details: events.append(name)
    first, second = meta_for("bwaves"), meta_for("gcc")
    store.put(digest(first), first, PAYLOAD)
    store.put(digest(second), second, PAYLOAD)
    assert events.count("store.evict") == 1
    assert store.counters["evictions"] == 1
    # The newest entry survives its own commit even over-budget.
    assert store.get(digest(second), second) == PAYLOAD
    assert store.get(digest(first), first) is None


def test_touch_protects_recently_read(tmp_path):
    metas = [meta_for(name) for name in ("bwaves", "gcc", "mcf")]
    store = ResultStore(tmp_path / "cache")
    for meta in metas:
        store.put(digest(meta), meta, PAYLOAD)
    size = store.index.size_of(digest(metas[0]))
    store.get(digest(metas[0]), metas[0])  # bwaves is now most recent
    store.max_bytes = 2 * size + 1
    newest = meta_for("milc")
    store.put(digest(newest), newest, PAYLOAD)
    survivors = {
        name
        for name in ("bwaves", "gcc", "mcf", "milc")
        if store.get(digest(meta_for(name)), meta_for(name)) is not None
    }
    assert survivors == {"bwaves", "milc"}


# -- crash during commit -------------------------------------------------


def _crashing_put(root):
    store = ResultStore(root)
    with inject(
        FaultSpec(kind="crash", benchmark="mcf", site="store.commit")
    ):
        store.put(KEY, META, PAYLOAD, benchmark="mcf")


def test_crash_during_commit_leaves_no_entry(tmp_path):
    root = tmp_path / "cache"
    ResultStore(root)  # create the layout up front
    ctx = multiprocessing.get_context(
        "fork" if sys.platform != "win32" else "spawn"
    )
    child = ctx.Process(target=_crashing_put, args=(root,))
    child.start()
    child.join(timeout=60)
    assert child.exitcode not in (0, None)  # the injected crash fired
    # The rename never happened: no visible entry, only a stray tmp.
    store = ResultStore(root)
    strays = list(store.objects_dir.rglob("*.tmp"))
    assert strays == []  # reopen swept the wreckage
    assert store.get(KEY, META) is None
    assert store.stats()["entries"] == 0
    # And the store still works.
    store.put(KEY, META, PAYLOAD)
    assert store.get(KEY, META) == PAYLOAD


# -- verify / gc / invalidate -------------------------------------------


def test_verify_clean_and_after_damage(store):
    metas = [meta_for(name) for name in ("bwaves", "gcc")]
    for meta in metas:
        store.put(digest(meta), meta, PAYLOAD)
    assert store.verify() == {"checked": 2, "ok": 2, "corrupt": []}
    tear_entry(entry_path(store, digest(metas[0])))
    report = store.verify()
    assert report["checked"] == 2 and report["ok"] == 1
    assert report["corrupt"] == [{"key": digest(metas[0]), "reason": "torn"}]
    # verify healed: the damage is quarantined, a rescan is clean.
    assert store.verify() == {"checked": 1, "ok": 1, "corrupt": []}


def test_gc_drops_other_code_versions(store, monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "v" * 16)
    stale = meta_for("gcc", code="0" * 16)
    store.put(KEY, META, PAYLOAD)
    store.put(digest(stale), stale, PAYLOAD)
    report = store.gc()
    assert report["removed"] == 1
    assert report["freed_bytes"] > 0
    assert store.get(KEY, META) == PAYLOAD
    assert store.get(digest(stale), stale) is None


def test_gc_prune_quarantine(store):
    store.put(KEY, META, PAYLOAD)
    tear_entry(entry_path(store))
    store.get(KEY, META)
    assert list(store.quarantine_dir.glob("*.json"))
    report = store.gc(prune_quarantine=True)
    assert report["quarantine_pruned"] == 1
    assert not list(store.quarantine_dir.glob("*.json"))


def test_invalidate_by_benchmark_and_kind(store):
    metas = [meta_for(name) for name in ("bwaves", "gcc")]
    verdict = dict(meta_for("bwaves"), kind="check-verdict")
    for meta in metas + [verdict]:
        store.put(digest(meta), meta, PAYLOAD)
    assert store.invalidate(benchmark="bwaves", kind="campaign-row") == {
        "removed": 1
    }
    assert store.get(digest(metas[0]), metas[0]) is None
    assert store.get(digest(verdict), verdict) == PAYLOAD
    assert store.invalidate(everything=True)["removed"] == 2
    assert store.stats()["entries"] == 0
    assert store.counters["invalidated"] == 3


def test_invalidate_without_selector_refuses(store):
    with pytest.raises(StoreError):
        store.invalidate()


def test_stats_shape(store):
    store.put(KEY, META, PAYLOAD)
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["total_bytes"] > 0
    assert stats["max_bytes"] is None
    assert stats["quarantined"] == 0
    assert stats["counters"]["puts"] == 1


def test_unreadable_root_warns_not_raises(tmp_path):
    """Index damage is healed, not fatal: journal deleted mid-life."""
    store = ResultStore(tmp_path / "cache")
    store.put(KEY, META, PAYLOAD)
    (tmp_path / "cache" / "index.jsonl").write_text("garbage\n")
    reopened = ResultStore(tmp_path / "cache")
    assert reopened.get(KEY, META) == PAYLOAD


def test_entry_file_is_single_json_document(store):
    store.put(KEY, META, PAYLOAD)
    document = json.loads(entry_path(store).read_text())
    assert document["key"] == KEY
    assert document["payload"] == PAYLOAD
