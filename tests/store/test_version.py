"""Code-version fingerprinting: the store's invalidation lever."""

import pytest

from repro.store import code_version
from repro.store import version as version_mod
from repro.store.version import ENV_CODE_VERSION, VERSION_LENGTH


@pytest.fixture(autouse=True)
def no_ambient_override(monkeypatch):
    monkeypatch.delenv(ENV_CODE_VERSION, raising=False)


def fresh_version(root):
    """The version is memoized per (root, paths); drop it to recompute."""
    version_mod._cache.clear()
    return code_version(root=root)


def test_version_shape_and_stability():
    first = code_version()
    assert len(first) == VERSION_LENGTH
    assert all(c in "0123456789abcdef" for c in first)
    assert code_version() == first  # memoized and deterministic


def test_env_override_wins(monkeypatch):
    computed = code_version()
    monkeypatch.setenv(ENV_CODE_VERSION, "deadbeefcafef00d")
    assert code_version() == "deadbeefcafef00d"
    assert code_version() != computed
    monkeypatch.delenv(ENV_CODE_VERSION)
    assert code_version() == computed


def test_env_override_truncated_to_uniform_length(monkeypatch):
    monkeypatch.setenv(ENV_CODE_VERSION, "x" * 100)
    assert len(code_version()) == VERSION_LENGTH


def test_version_drifts_when_source_changes(tmp_path):
    """Editing result-bearing source must rotate the version."""
    pkg = tmp_path / "pkg"
    (pkg / "core").mkdir(parents=True)
    (pkg / "errors.py").write_text("class ReproError(Exception): pass\n")
    (pkg / "core" / "ctrl.py").write_text("X = 1\n")
    before = fresh_version(pkg)
    (pkg / "core" / "ctrl.py").write_text("X = 2\n")
    assert fresh_version(pkg) != before


def test_version_ignores_result_free_paths(tmp_path):
    """Only RESULT_CODE_PATHS feed the digest; docs/obs edits do not."""
    pkg = tmp_path / "pkg"
    (pkg / "core").mkdir(parents=True)
    (pkg / "obs").mkdir()
    (pkg / "core" / "ctrl.py").write_text("X = 1\n")
    before = fresh_version(pkg)
    (pkg / "obs" / "telemetry.py").write_text("Y = 9\n")
    assert fresh_version(pkg) == before


def test_estimator_surface_is_independent(tmp_path):
    """Controller edits rotate campaign keys only; power-model edits
    rotate estimation keys only — the two caches invalidate apart."""
    pkg = tmp_path / "pkg"
    (pkg / "core").mkdir(parents=True)
    (pkg / "power").mkdir()
    (pkg / "core" / "ctrl.py").write_text("X = 1\n")
    (pkg / "power" / "energy.py").write_text("E = 1\n")
    version_mod._cache.clear()
    campaign_before = code_version(root=pkg)
    estimator_before = code_version(
        root=pkg, paths=version_mod.ESTIMATOR_CODE_PATHS
    )
    assert campaign_before != estimator_before

    (pkg / "core" / "ctrl.py").write_text("X = 2\n")
    version_mod._cache.clear()
    assert code_version(root=pkg) != campaign_before
    assert (
        code_version(root=pkg, paths=version_mod.ESTIMATOR_CODE_PATHS)
        == estimator_before
    )

    campaign_mid = code_version(root=pkg)
    (pkg / "power" / "energy.py").write_text("E = 2\n")
    version_mod._cache.clear()
    assert code_version(root=pkg) == campaign_mid
    assert (
        code_version(root=pkg, paths=version_mod.ESTIMATOR_CODE_PATHS)
        != estimator_before
    )
