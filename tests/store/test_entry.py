"""Entry codec: every corruption mode maps to a classified refusal."""

import json

import pytest

from repro.errors import StoreIntegrityError
from repro.store import (
    FORMAT_NAME,
    SCHEMA_VERSION,
    decode_entry,
    digest,
    encode_entry,
    entry_header,
    payload_crc,
)

META = {
    "kind": "campaign-row",
    "benchmark": "mcf",
    "config": "c" * 16,
    "workload": "w" * 16,
    "code": "v" * 16,
}
PAYLOAD = {"reads": 100, "writes": 40, "nested": {"hits": [1, 2, 3]}}
KEY = digest(META)


def encoded():
    return encode_entry(KEY, META, PAYLOAD)


def reason_of(call):
    with pytest.raises(StoreIntegrityError) as err:
        call()
    return err.value.reason


def test_roundtrip():
    text = encoded()
    assert text.endswith("\n")
    assert decode_entry(text, "t", key=KEY, meta=META) == PAYLOAD
    header = entry_header(text, "t")
    assert header == {"key": KEY, "meta": META}


def test_torn_truncation():
    text = encoded()
    for cut in (0, 1, len(text) // 2, len(text) - 3):
        assert (
            reason_of(lambda t=text[:cut]: decode_entry(t, "t", key=KEY))
            == "torn"
        )


def test_torn_non_object():
    assert reason_of(lambda: decode_entry('["list"]', "t")) == "torn"


def test_torn_missing_sections():
    document = json.loads(encoded())
    del document["payload"]
    text = json.dumps(document)
    assert reason_of(lambda: decode_entry(text, "t")) == "torn"
    assert reason_of(lambda: entry_header(text, "t")) == "torn"


def test_schema_wrong_format_and_version():
    for field, value in (("format", "other-store"), ("schema", 999)):
        document = json.loads(encoded())
        document[field] = value
        text = json.dumps(document)
        assert reason_of(lambda t=text: decode_entry(t, "t")) == "schema"
        assert reason_of(lambda t=text: entry_header(t, "t")) == "schema"


def test_skew_key_mismatch():
    assert (
        reason_of(lambda: decode_entry(encoded(), "t", key="0" * 64))
        == "skew"
    )


def test_skew_meta_mismatch_names_drifted_fields():
    expected = dict(META, code="f" * 16)
    with pytest.raises(StoreIntegrityError) as err:
        decode_entry(encoded(), "t", key=KEY, meta=expected)
    assert err.value.reason == "skew"
    assert "code" in str(err.value)


def test_crc_detects_payload_damage():
    document = json.loads(encoded())
    document["payload"]["reads"] = 999  # header CRC now stale
    text = json.dumps(document)
    assert reason_of(lambda: decode_entry(text, "t", key=KEY)) == "crc"
    assert reason_of(lambda: entry_header(text, "t")) == "crc"


def test_crc_is_canonical_not_textual():
    """Key-order changes in the payload JSON must not change the CRC."""
    assert payload_crc({"a": 1, "b": 2}) == payload_crc({"b": 2, "a": 1})


def test_format_constants_pinned():
    document = json.loads(encoded())
    assert document["format"] == FORMAT_NAME == "repro8t-result"
    assert document["schema"] == SCHEMA_VERSION == 1
