"""The `repro-8t cache` command group and campaign `--result-cache` flag."""

import pytest

from repro.cli import main
from repro.faultinject import tear_entry
from repro.store import ResultStore, digest

META = {
    "kind": "campaign-row",
    "benchmark": "mcf",
    "config": "c" * 16,
    "workload": "w" * 16,
    "code": "v" * 16,
}
PAYLOAD = {"reads": 1}


@pytest.fixture
def cache(tmp_path):
    store = ResultStore(tmp_path / "cache")
    store.put(digest(META), META, PAYLOAD, benchmark="mcf")
    return tmp_path / "cache"


def test_cache_stats(cache, capsys):
    assert main(["cache", "stats", str(cache)]) == 0
    output = capsys.readouterr().out
    assert "entries" in output and "code_version" in output


def test_cache_verify_clean(cache, capsys):
    assert main(["cache", "verify", str(cache)]) == 0
    assert "1 ok" in capsys.readouterr().out


def test_cache_verify_corrupt_exits_3(cache, capsys):
    store = ResultStore(cache)
    (entry,) = store.objects_dir.rglob("*.json")
    tear_entry(entry)
    assert main(["cache", "verify", str(cache)]) == 3
    output = capsys.readouterr().out
    assert "torn" in output
    # Verify healed the damage: a second pass is clean.
    assert main(["cache", "verify", str(cache)]) == 0


def test_cache_gc(cache, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CODE_VERSION", "something-else")
    assert main(["cache", "gc", str(cache)]) == 0
    assert "removed 1" in capsys.readouterr().out


def test_cache_invalidate_requires_selector(cache, capsys):
    assert main(["cache", "invalidate", str(cache)]) == 2
    assert main(["cache", "invalidate", str(cache), "--all"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", str(cache)]) == 0
    assert ResultStore(cache).stats()["entries"] == 0


def test_figure_with_result_cache_flag(tmp_path, capsys):
    cache = tmp_path / "cache"
    args = [
        "figure",
        "fig9",
        "--benchmarks",
        "bwaves",
        "--accesses",
        "800",
        "--result-cache",
        str(cache),
    ]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert warm == cold  # bit-identical table either way
    store = ResultStore(cache)
    assert store.stats()["entries"] == 1
