"""Unit tests for phase timing parameters."""

import pytest

from repro.sram.timing import PhaseTiming


class TestDefaults:
    def test_rmw_is_serial_read_plus_write(self):
        timing = PhaseTiming()
        assert timing.rmw_cycles == (
            timing.array_read_cycles
            + timing.array_write_cycles
            + timing.rmw_extra_cycles
        )

    def test_buffer_faster_than_array(self):
        """Section 5.5 premise: Set-Buffer access beats array access."""
        timing = PhaseTiming()
        assert timing.set_buffer_cycles < timing.rmw_cycles
        assert timing.set_buffer_cycles <= timing.array_read_cycles


class TestValidation:
    def test_zero_read_rejected(self):
        with pytest.raises(ValueError):
            PhaseTiming(array_read_cycles=0)

    def test_negative_rmw_extra_rejected(self):
        with pytest.raises(ValueError):
            PhaseTiming(rmw_extra_cycles=-1)

    def test_slow_buffer_rejected(self):
        with pytest.raises(ValueError, match="Set-Buffer"):
            PhaseTiming(array_read_cycles=2, set_buffer_cycles=3)

    def test_custom_values(self):
        timing = PhaseTiming(
            array_read_cycles=3,
            array_write_cycles=4,
            rmw_extra_cycles=2,
            set_buffer_cycles=1,
        )
        assert timing.rmw_cycles == 9
