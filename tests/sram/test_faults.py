"""Unit tests for the soft-error injection model."""

import pytest

from repro.sram.ecc import InterleavedRowLayout
from repro.sram.faults import FaultInjector, ReliabilityReport, mean_burst_width
from repro.utils.rng import DeterministicRNG


class TestBurstWidthCurve:
    def test_widens_as_voltage_drops(self):
        assert mean_burst_width(400.0) > mean_burst_width(700.0)
        assert mean_burst_width(700.0) > mean_burst_width(1000.0)

    def test_nominal_near_single_cell(self):
        assert 1.0 <= mean_burst_width(1000.0) <= 1.5

    def test_low_voltage_multi_cell(self):
        assert mean_burst_width(400.0) > 3.0

    def test_range_checked(self):
        with pytest.raises(ValueError):
            mean_burst_width(100.0)


class TestInjection:
    def test_every_strike_classified(self):
        layout = InterleavedRowLayout(words=8)
        injector = FaultInjector(layout, DeterministicRNG(1))
        report = injector.inject(500, vdd_mv=600.0)
        assert report.corrected + report.uncorrectable == 500
        assert 0.0 <= report.uncorrectable_fraction <= 1.0

    def test_interleaving_helps(self):
        rng = DeterministicRNG(2)
        interleaved = FaultInjector(
            InterleavedRowLayout(words=16), rng.fork("a")
        ).inject(4000, vdd_mv=500.0)
        flat = FaultInjector(
            InterleavedRowLayout(words=1, bits_per_word=16 * 72), rng.fork("b")
        ).inject(4000, vdd_mv=500.0)
        assert interleaved.uncorrectable_fraction < flat.uncorrectable_fraction / 3

    def test_low_voltage_is_worse(self):
        layout = InterleavedRowLayout(words=2)
        rng = DeterministicRNG(3)
        high = FaultInjector(layout, rng.fork("high")).inject(4000, 1000.0)
        low = FaultInjector(layout, rng.fork("low")).inject(4000, 400.0)
        assert low.uncorrectable_fraction > high.uncorrectable_fraction

    def test_wide_interleave_nearly_perfect_at_nominal(self):
        layout = InterleavedRowLayout(words=16)
        report = FaultInjector(layout, DeterministicRNG(4)).inject(4000, 1000.0)
        assert report.uncorrectable_fraction < 0.01

    def test_deterministic(self):
        layout = InterleavedRowLayout(words=4)
        a = FaultInjector(layout, DeterministicRNG(5)).inject(1000, 600.0)
        b = FaultInjector(layout, DeterministicRNG(5)).inject(1000, 600.0)
        assert a == b

    def test_report_fields(self):
        layout = InterleavedRowLayout(words=4)
        report = FaultInjector(layout, DeterministicRNG(6)).inject(100, 800.0)
        assert isinstance(report, ReliabilityReport)
        assert report.vdd_mv == 800.0
        assert report.interleaved
        assert report.corrected_fraction == pytest.approx(
            1.0 - report.uncorrectable_fraction
        )

    def test_strikes_positive(self):
        layout = InterleavedRowLayout(words=4)
        with pytest.raises(ValueError):
            FaultInjector(layout, DeterministicRNG(7)).inject(0, 800.0)


class TestReliabilityAnalysis:
    def test_figure_shape(self):
        from repro.analysis.reliability import reliability_vs_voltage

        result = reliability_vs_voltage(strikes=2000)
        assert len(result.rows) == 4
        # Interleaved column always (weakly) better.
        for row in result.rows:
            assert row[1] <= row[2]
        # Non-interleaved degrades sharply at low voltage.
        assert (
            result.summary["flat_uncorrectable_400mv"]
            > result.summary["flat_uncorrectable_1000mv"]
        )
