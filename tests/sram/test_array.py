"""Unit tests for the behavioural SRAM array (paper Figure 2 semantics)."""

import pytest

from repro.sram.array import HalfSelectViolation, SRAMArray
from repro.sram.geometry import ArrayGeometry


@pytest.fixture
def array():
    return SRAMArray(ArrayGeometry(rows=8, words_per_row=4))


@pytest.fixture
def flat_array():
    """Non-interleaved array (Chang et al. style)."""
    return SRAMArray(ArrayGeometry(rows=8, words_per_row=4, interleaved=False))


class TestReads:
    def test_read_row(self, array):
        array.load_row(2, [10, 20, 30, 40])
        assert array.read_row(2) == [10, 20, 30, 40]
        assert array.events.row_reads == 1
        assert array.events.words_routed == 4

    def test_read_words_muxes_selection(self, array):
        array.load_row(1, [5, 6, 7, 8])
        assert array.read_words(1, [3, 0]) == [8, 5]
        assert array.events.row_reads == 1
        assert array.events.words_routed == 2

    def test_read_row_returns_copy(self, array):
        array.load_row(0, [1, 2, 3, 4])
        data = array.read_row(0)
        data[0] = 99
        assert array.peek_word(0, 0) == 1

    def test_row_bounds(self, array):
        with pytest.raises(ValueError, match="row"):
            array.read_row(8)

    def test_column_bounds(self, array):
        with pytest.raises(ValueError, match="word index"):
            array.read_words(0, [4])


class TestWrites:
    def test_full_row_write_legal(self, array):
        array.write_row(3, [1, 2, 3, 4])
        assert array.peek_row(3) == [1, 2, 3, 4]
        assert array.events.row_writes == 1
        assert array.events.words_driven == 4

    def test_wrong_width_rejected(self, array):
        with pytest.raises(ValueError, match="words"):
            array.write_row(0, [1, 2])

    def test_partial_write_raises_on_interleaved(self, array):
        """The column-selection hazard the whole paper exists for."""
        with pytest.raises(HalfSelectViolation, match="half-selected"):
            array.write_words(0, {1: 42})

    def test_partial_write_legal_on_non_interleaved(self, flat_array):
        flat_array.load_row(0, [1, 2, 3, 4])
        flat_array.write_words(0, {1: 42})
        assert flat_array.peek_row(0) == [1, 42, 3, 4]
        assert flat_array.events.row_writes == 1
        assert flat_array.events.words_driven == 1


class TestRMW:
    def test_rmw_preserves_half_selected_columns(self, array):
        """Morita's sequence: unselected words survive a partial update."""
        array.load_row(5, [100, 200, 300, 400])
        array.read_modify_write(5, {2: 999})
        assert array.peek_row(5) == [100, 200, 999, 400]

    def test_rmw_returns_latched_row(self, array):
        array.load_row(0, [7, 8, 9, 10])
        latched = array.read_modify_write(0, {0: 0})
        assert latched == [7, 8, 9, 10]

    def test_rmw_costs_read_plus_write(self, array):
        array.read_modify_write(0, {0: 1})
        assert array.events.row_reads == 1
        assert array.events.row_writes == 1
        assert array.events.rmw_operations == 1
        assert array.events.array_accesses == 2

    def test_rmw_multi_word_update(self, array):
        array.load_row(1, [0, 0, 0, 0])
        array.read_modify_write(1, {0: 1, 3: 4})
        assert array.peek_row(1) == [1, 0, 0, 4]

    def test_rmw_bad_column(self, array):
        with pytest.raises(ValueError):
            array.read_modify_write(0, {9: 1})


class TestLoadAndPeek:
    def test_load_produces_no_events(self, array):
        array.load_row(0, [1, 1, 1, 1])
        assert array.events.array_accesses == 0

    def test_peek_produces_no_events(self, array):
        array.peek_row(0)
        array.peek_word(0, 0)
        assert array.events.array_accesses == 0

    def test_load_wrong_width(self, array):
        with pytest.raises(ValueError):
            array.load_row(0, [1])
