"""Unit and property tests for the banked sub-array organisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sram.array import SRAMArray
from repro.sram.banked import BankedSRAMArray
from repro.sram.geometry import ArrayGeometry

GEOMETRY = ArrayGeometry(rows=16, words_per_row=4)


@pytest.fixture
def banked():
    return BankedSRAMArray(GEOMETRY, banks=4)


class TestConstruction:
    def test_valid(self, banked):
        assert banked.banks == 4
        assert banked.geometry.rows == 16

    def test_banks_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            BankedSRAMArray(GEOMETRY, banks=3)

    def test_banks_bounded_by_rows(self):
        with pytest.raises(ValueError, match="exceed rows"):
            BankedSRAMArray(GEOMETRY, banks=32)


class TestRouting:
    def test_low_order_striping(self, banked):
        """Consecutive rows land in different banks (the property
        Park's scheme needs to overlap accesses)."""
        assert banked.bank_of(0) == 0
        assert banked.bank_of(1) == 1
        assert banked.bank_of(4) == 0
        assert banked.bank_of(7) == 3

    def test_row_bounds(self, banked):
        with pytest.raises(ValueError):
            banked.bank_of(16)


class TestFlatEquivalence:
    _ops = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.dictionaries(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=99),
                min_size=1,
                max_size=4,
            ),
        ),
        max_size=30,
    )

    @settings(max_examples=40, deadline=None)
    @given(operations=_ops)
    def test_matches_flat_array(self, operations):
        """Same RMW stream, same final contents as an unbanked array."""
        banked = BankedSRAMArray(GEOMETRY, banks=4)
        flat = SRAMArray(GEOMETRY)
        for row, updates in operations:
            banked.read_modify_write(row, updates)
            flat.read_modify_write(row, updates)
        for row in range(GEOMETRY.rows):
            assert banked.peek_row(row) == flat.peek_row(row)

    @settings(max_examples=40, deadline=None)
    @given(operations=_ops)
    def test_aggregate_events_match_flat(self, operations):
        banked = BankedSRAMArray(GEOMETRY, banks=2)
        flat = SRAMArray(GEOMETRY)
        for row, updates in operations:
            banked.read_modify_write(row, updates)
            flat.read_modify_write(row, updates)
        assert banked.events.array_accesses == flat.events.array_accesses
        assert banked.events.rmw_operations == flat.events.rmw_operations


class TestPerBankObservation:
    def test_events_attributed_to_the_right_bank(self, banked):
        banked.read_modify_write(1, {0: 5})  # bank 1
        assert banked.bank_events(1).rmw_operations == 1
        assert banked.bank_events(0).rmw_operations == 0

    def test_striped_sweep_balances_load(self, banked):
        for row in range(16):
            banked.read_row(row)
        balance = banked.load_balance()
        assert balance == [4, 4, 4, 4]

    def test_data_operations(self, banked):
        banked.write_row(5, [1, 2, 3, 4])
        assert banked.read_row(5) == [1, 2, 3, 4]
        assert banked.read_words(5, [2]) == [3]
        banked.load_row(6, [9, 9, 9, 9])
        assert banked.peek_row(6) == [9, 9, 9, 9]
