"""Unit tests for 6T/8T cell behaviour — the paper's Figures 1 motivation."""

import pytest

from repro.sram.cell import (
    SNM_FAILURE_THRESHOLD_MV,
    SRAMCell6T,
    SRAMCell8T,
    read_snm_mv,
)


class TestCell6T:
    def test_write_read(self):
        cell = SRAMCell6T()
        cell.write(1)
        assert cell.read() == 1
        cell.write(0)
        assert cell.read() == 0

    def test_half_select_is_safe(self):
        cell = SRAMCell6T(initial=1)
        assert cell.half_select_during_write() == 1
        assert cell.read() == 1
        assert cell.half_select_safe

    def test_one_bit_only(self):
        with pytest.raises(ValueError):
            SRAMCell6T(initial=2)
        with pytest.raises(ValueError):
            SRAMCell6T().write(5)

    def test_transistor_count(self):
        assert SRAMCell6T.transistors == 6


class TestCell8T:
    def test_write_read(self):
        cell = SRAMCell8T()
        cell.write(1)
        assert cell.read() == 1

    def test_rbl_discharges_on_zero(self):
        # Paper Section 2: "If the cell holds zero (Q=0), M7 turns on
        # and RBL discharges" — and keeps its charge for Q=1.
        assert SRAMCell8T(initial=0).read_rbl(rbl_precharged=True) is True
        assert SRAMCell8T(initial=1).read_rbl(rbl_precharged=True) is False

    def test_read_requires_precharge(self):
        with pytest.raises(ValueError, match="precharged"):
            SRAMCell8T().read_rbl(rbl_precharged=False)

    def test_read_is_nondestructive(self):
        cell = SRAMCell8T(initial=1)
        for _ in range(5):
            cell.read()
        assert cell.q == 1

    def test_half_select_corrupts(self):
        """The column-selection hazard: a half-selected 8T cell takes
        whatever the shared write bit lines carry."""
        cell = SRAMCell8T(initial=1)
        cell.half_select_during_write(wbl_value=0)
        assert cell.read() == 0  # data destroyed — hence RMW
        assert not cell.half_select_safe

    def test_transistor_count(self):
        assert SRAMCell8T.transistors == 8


class TestSNMModel:
    def test_8t_beats_6t_at_every_voltage(self):
        for vdd in (400, 600, 800, 1000, 1200):
            assert read_snm_mv("8T", vdd) > read_snm_mv("6T", vdd)

    def test_snm_shrinks_with_voltage(self):
        assert read_snm_mv("6T", 1000) > read_snm_mv("6T", 600)
        assert read_snm_mv("8T", 1000) > read_snm_mv("8T", 600)

    def test_8t_stable_where_6t_fails(self):
        """At some low Vdd the 6T margin is unsafe while 8T's is fine —
        the paper's voltage-scaling motivation."""
        vdd = 400.0
        assert read_snm_mv("6T", vdd) < SNM_FAILURE_THRESHOLD_MV
        assert read_snm_mv("8T", vdd) >= SNM_FAILURE_THRESHOLD_MV

    def test_never_negative(self):
        assert read_snm_mv("6T", 300) >= 0.0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            read_snm_mv("10T", 800)

    def test_voltage_range_checked(self):
        with pytest.raises(ValueError):
            read_snm_mv("6T", 100)
