"""Unit tests for the SRAM event log."""

from repro.sram.events import SRAMEventLog


class TestRecording:
    def test_row_read(self):
        log = SRAMEventLog()
        log.record_row_read(words_routed=1)
        assert log.row_reads == 1
        assert log.precharges == 1
        assert log.rwl_pulses == 1
        assert log.words_routed == 1
        assert log.row_writes == 0

    def test_row_write(self):
        log = SRAMEventLog()
        log.record_row_write(words_driven=16)
        assert log.row_writes == 1
        assert log.wwl_pulses == 1
        assert log.words_driven == 16

    def test_rmw_is_read_plus_write(self):
        log = SRAMEventLog()
        log.record_rmw(row_words=16)
        assert log.rmw_operations == 1
        assert log.row_reads == 1
        assert log.row_writes == 1
        assert log.array_accesses == 2

    def test_buffer_events_do_not_count_as_array_accesses(self):
        log = SRAMEventLog()
        log.record_set_buffer_read(3)
        log.record_set_buffer_write(2)
        assert log.array_accesses == 0
        assert log.set_buffer_reads == 3
        assert log.set_buffer_writes == 2


class TestCombinators:
    def test_merge(self):
        a = SRAMEventLog()
        a.record_row_read(1)
        b = SRAMEventLog()
        b.record_row_write(16)
        merged = a.merge(b)
        assert merged.row_reads == 1
        assert merged.row_writes == 1
        # Originals untouched.
        assert a.row_writes == 0

    def test_copy_is_independent(self):
        log = SRAMEventLog()
        log.record_row_read(1)
        copy = log.copy()
        log.record_row_read(1)
        assert copy.row_reads == 1
        assert log.row_reads == 2
