"""Unit tests for the SRAM event log."""

from repro.sram.events import SRAMEventLog


class TestRecording:
    def test_row_read(self):
        log = SRAMEventLog()
        log.record_row_read(words_routed=1)
        assert log.row_reads == 1
        assert log.precharges == 1
        assert log.rwl_pulses == 1
        assert log.words_routed == 1
        assert log.row_writes == 0

    def test_row_write(self):
        log = SRAMEventLog()
        log.record_row_write(words_driven=16)
        assert log.row_writes == 1
        assert log.wwl_pulses == 1
        assert log.words_driven == 16

    def test_rmw_is_read_plus_write(self):
        log = SRAMEventLog()
        log.record_rmw(row_words=16)
        assert log.rmw_operations == 1
        assert log.row_reads == 1
        assert log.row_writes == 1
        assert log.array_accesses == 2

    def test_buffer_events_do_not_count_as_array_accesses(self):
        log = SRAMEventLog()
        log.record_set_buffer_read(3)
        log.record_set_buffer_write(2)
        assert log.array_accesses == 0
        assert log.set_buffer_reads == 3
        assert log.set_buffer_writes == 2


class TestCombinators:
    def test_merge(self):
        a = SRAMEventLog()
        a.record_row_read(1)
        b = SRAMEventLog()
        b.record_row_write(16)
        merged = a.merge(b)
        assert merged.row_reads == 1
        assert merged.row_writes == 1
        # Originals untouched.
        assert a.row_writes == 0

    def test_copy_is_independent(self):
        log = SRAMEventLog()
        log.record_row_read(1)
        copy = log.copy()
        log.record_row_read(1)
        assert copy.row_reads == 1
        assert log.row_reads == 2

    def test_add_matches_merge(self):
        a = SRAMEventLog()
        a.record_rmw(row_words=16)
        b = SRAMEventLog()
        b.record_row_read(4)
        b.record_set_buffer_write(2)
        assert (a + b) == a.merge(b)
        # Originals untouched.
        assert b.row_reads == 1

    def test_add_rejects_non_logs(self):
        import pytest

        with pytest.raises(TypeError):
            SRAMEventLog() + 3

    def test_sum_folds_logs(self):
        logs = []
        for words in (1, 2, 3):
            log = SRAMEventLog()
            log.record_row_read(words)
            logs.append(log)
        total = sum(logs)  # __radd__ handles the int 0 start
        assert total.row_reads == 3
        assert total.words_routed == 6

    def test_sum_of_nothing_is_zero(self):
        assert sum([], SRAMEventLog()) == SRAMEventLog()

    def test_merge_is_associative(self):
        def make(reads, writes):
            log = SRAMEventLog()
            for _ in range(reads):
                log.record_row_read(1)
            for _ in range(writes):
                log.record_row_write(8)
            return log

        a, b, c = make(1, 0), make(2, 3), make(0, 5)
        assert (a + b) + c == a + (b + c)

    def test_iadd_accumulates_in_place(self):
        total = SRAMEventLog()
        part = SRAMEventLog()
        part.record_row_write(8)
        total += part
        total += part
        assert total.row_writes == 2
        assert part.row_writes == 1

    def test_to_dict_round_trip(self):
        log = SRAMEventLog()
        log.record_rmw(row_words=4)
        assert SRAMEventLog(**log.to_dict()) == log
