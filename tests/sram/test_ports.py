"""Unit tests for the 1R/1W port tracker."""

import pytest

from repro.sram.ports import PortKind, PortTracker


class TestAcquire:
    def test_free_port_starts_immediately(self):
        ports = PortTracker()
        assert ports.acquire(PortKind.READ, 10, 2) == 10
        assert ports.free_at[PortKind.READ] == 12

    def test_busy_port_delays(self):
        ports = PortTracker()
        ports.acquire(PortKind.READ, 0, 5)
        start = ports.acquire(PortKind.READ, 2, 3)
        assert start == 5
        assert ports.conflicts[PortKind.READ] == 1

    def test_ports_independent(self):
        """The 8T selling point: one read and one write in parallel."""
        ports = PortTracker()
        ports.acquire(PortKind.READ, 0, 4)
        start = ports.acquire(PortKind.WRITE, 0, 4)
        assert start == 0
        assert ports.conflicts[PortKind.WRITE] == 0

    def test_busy_cycles_accumulate(self):
        ports = PortTracker()
        ports.acquire(PortKind.WRITE, 0, 3)
        ports.acquire(PortKind.WRITE, 10, 2)
        assert ports.busy_cycles[PortKind.WRITE] == 5

    def test_zero_duration(self):
        ports = PortTracker()
        assert ports.acquire(PortKind.READ, 7, 0) == 7
        assert ports.is_free(PortKind.READ, 7)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PortTracker().acquire(PortKind.READ, 0, -1)


class TestQueries:
    def test_is_free(self):
        ports = PortTracker()
        ports.acquire(PortKind.READ, 0, 5)
        assert not ports.is_free(PortKind.READ, 4)
        assert ports.is_free(PortKind.READ, 5)

    def test_utilisation(self):
        ports = PortTracker()
        ports.acquire(PortKind.READ, 0, 25)
        assert ports.utilisation(PortKind.READ, 100) == pytest.approx(0.25)
        assert ports.utilisation(PortKind.READ, 0) == 0.0
        assert ports.utilisation(PortKind.READ, 10) == 1.0  # clamped


class TestReserve:
    """reserve() is the no-stall acquire: conflicts raise instead of wait."""

    def test_free_port_reserved_at_requested_cycle(self):
        from repro.errors import PortConflictError  # noqa: F401 - documented pair

        ports = PortTracker()
        assert ports.reserve(PortKind.WRITE, 4, 3) == 4
        assert ports.free_at[PortKind.WRITE] == 7
        assert ports.busy_cycles[PortKind.WRITE] == 3

    def test_busy_port_raises_port_conflict(self):
        from repro.errors import PortConflictError

        ports = PortTracker()
        ports.reserve(PortKind.WRITE, 0, 5)
        with pytest.raises(PortConflictError, match="busy until cycle 5"):
            ports.reserve(PortKind.WRITE, 3, 1)
        assert ports.conflicts[PortKind.WRITE] == 1
        # The failed reservation must not extend the busy window.
        assert ports.free_at[PortKind.WRITE] == 5

    def test_back_to_back_reservations_legal(self):
        ports = PortTracker()
        ports.reserve(PortKind.READ, 0, 2)
        assert ports.reserve(PortKind.READ, 2, 2) == 2

    def test_ports_independent(self):
        ports = PortTracker()
        ports.reserve(PortKind.WRITE, 0, 4)
        assert ports.reserve(PortKind.READ, 0, 4) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PortTracker().reserve(PortKind.READ, 0, -1)
