"""Unit tests for the ECC-protected array with scrubbing."""

import pytest

from repro.sram.ecc import CODEWORD_BITS
from repro.sram.geometry import ArrayGeometry
from repro.sram.protected import ECCProtectedArray


@pytest.fixture
def array():
    return ECCProtectedArray(ArrayGeometry(rows=4, words_per_row=4))


class TestDataPath:
    def test_roundtrip(self, array):
        array.write_word(1, 2, 0xCAFEBABE)
        assert array.read_word(1, 2) == 0xCAFEBABE

    def test_initial_zeros(self, array):
        assert array.read_word(0, 0) == 0
        assert array.corrected_reads == 0

    def test_write_row(self, array):
        array.write_row(2, [10, 20, 30, 40])
        assert [array.read_word(2, i) for i in range(4)] == [10, 20, 30, 40]

    def test_write_uses_rmw(self, array):
        before = array.events.rmw_operations
        array.write_word(0, 0, 5)
        assert array.events.rmw_operations == before + 1


class TestFaultHandling:
    def test_single_flip_corrected_on_read(self, array):
        array.write_word(0, 1, 777)
        array.inject_bit_flips(0, [(1, 13)])
        assert array.read_word(0, 1) == 777
        assert array.corrected_reads == 1

    def test_read_repair_fixes_stored_codeword(self, array):
        array.write_word(0, 1, 777)
        array.inject_bit_flips(0, [(1, 13)])
        array.read_word(0, 1)
        # A second read needs no correction: the first read repaired.
        array.read_word(0, 1)
        assert array.corrected_reads == 1

    def test_double_flip_uncorrectable(self, array):
        array.write_word(0, 0, 9)
        array.inject_bit_flips(0, [(0, 3), (0, 40)])
        with pytest.raises(ValueError, match="uncorrectable"):
            array.read_word(0, 0)
        assert array.uncorrectable_reads == 1

    def test_flips_in_different_words_both_corrected(self, array):
        """The interleaving promise at array level: one bit per word is
        always recoverable."""
        array.write_row(3, [1, 2, 3, 4])
        array.inject_bit_flips(3, [(0, 5), (1, 5), (2, 5), (3, 5)])
        assert [array.read_word(3, i) for i in range(4)] == [1, 2, 3, 4]
        assert array.corrected_reads == 4

    def test_bit_index_validated(self, array):
        with pytest.raises(ValueError):
            array.inject_bit_flips(0, [(0, CODEWORD_BITS)])


class TestScrubbing:
    def test_clean_array_scrubs_clean(self, array):
        report = array.scrub()
        assert report.clean
        assert report.rows_scrubbed == 4
        assert report.corrected_words == 0

    def test_scrub_repairs_single_flips(self, array):
        array.write_word(1, 1, 42)
        array.inject_bit_flips(1, [(1, 7)])
        report = array.scrub()
        assert report.corrected_words == 1
        assert report.clean
        assert array.read_word(1, 1) == 42
        # Nothing left to fix.
        assert array.scrub().corrected_words == 0

    def test_scrub_reports_uncorrectable(self, array):
        array.inject_bit_flips(2, [(3, 0), (3, 1)])
        report = array.scrub()
        assert not report.clean
        assert report.uncorrectable_words == 1
        assert (2, 3) in report.failed_positions

    def test_scrub_prevents_error_accumulation(self, array):
        """The operational argument for scrubbing: two strikes to the
        same word are fatal unless a scrub lands between them."""
        array.write_word(0, 0, 123)
        array.inject_bit_flips(0, [(0, 10)])
        array.scrub()  # repairs the first strike
        array.inject_bit_flips(0, [(0, 20)])
        assert array.read_word(0, 0) == 123  # second strike also survivable

        # Counterfactual without the scrub: both flips present at once.
        unlucky = ECCProtectedArray(ArrayGeometry(rows=1, words_per_row=4))
        unlucky.write_word(0, 0, 123)
        unlucky.inject_bit_flips(0, [(0, 10)])
        unlucky.inject_bit_flips(0, [(0, 20)])
        with pytest.raises(ValueError):
            unlucky.read_word(0, 0)
