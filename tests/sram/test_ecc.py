"""Unit and property tests for SEC-DED ECC and bit interleaving."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sram.ecc import (
    CODEWORD_BITS,
    DATA_BITS,
    InterleavedRowLayout,
    decode,
    encode,
)

_words = st.integers(min_value=0, max_value=(1 << DATA_BITS) - 1)


class TestEncodeDecode:
    def test_clean_roundtrip_simple(self):
        for data in (0, 1, 0xDEADBEEF, (1 << 64) - 1):
            result = decode(encode(data))
            assert result.status == "clean"
            assert result.data == data

    @given(data=_words)
    @settings(max_examples=60, deadline=None)
    def test_clean_roundtrip_property(self, data):
        result = decode(encode(data))
        assert result.status == "clean"
        assert result.data == data

    @given(
        data=_words,
        flip=st.integers(min_value=0, max_value=CODEWORD_BITS - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_bit_error_corrected(self, data, flip):
        corrupted = encode(data) ^ (1 << flip)
        result = decode(corrupted)
        assert result.status == "corrected"
        assert result.data == data

    @given(
        data=_words,
        flips=st.sets(
            st.integers(min_value=0, max_value=CODEWORD_BITS - 1),
            min_size=2,
            max_size=2,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_double_bit_error_detected(self, data, flips):
        corrupted = encode(data)
        for flip in flips:
            corrupted ^= 1 << flip
        result = decode(corrupted)
        assert result.status == "uncorrectable"
        assert not result.ok

    def test_range_validation(self):
        with pytest.raises(ValueError):
            encode(1 << DATA_BITS)
        with pytest.raises(ValueError):
            decode(1 << CODEWORD_BITS)


class TestInterleavedLayout:
    def test_adjacent_columns_are_different_words(self):
        layout = InterleavedRowLayout(words=16)
        word_a, _ = layout.logical_position(10)
        word_b, _ = layout.logical_position(11)
        assert word_a != word_b

    def test_non_interleaved_adjacent_same_word(self):
        layout = InterleavedRowLayout(words=1)
        assert layout.logical_position(10)[0] == layout.logical_position(11)[0]

    def test_mapping_is_a_bijection(self):
        layout = InterleavedRowLayout(words=4, bits_per_word=8)
        seen = set()
        for word in range(4):
            for bit in range(8):
                column = layout.physical_column(word, bit)
                assert layout.logical_position(column) == (word, bit)
                seen.add(column)
        assert seen == set(range(layout.columns))

    def test_bounds(self):
        layout = InterleavedRowLayout(words=4, bits_per_word=8)
        with pytest.raises(ValueError):
            layout.physical_column(4, 0)
        with pytest.raises(ValueError):
            layout.logical_position(layout.columns)


class TestUpsetBursts:
    def test_interleaving_spreads_a_burst(self):
        """The paper's point: a multi-cell strike becomes one bit per
        word under interleaving — correctable by SEC-DED."""
        layout = InterleavedRowLayout(words=16)
        assert layout.burst_correctable(first_column=100, width=16)
        assert layout.max_correctable_burst() == 16

    def test_without_interleaving_bursts_kill_a_word(self):
        layout = InterleavedRowLayout(words=1)
        assert not layout.burst_correctable(first_column=0, width=2)
        assert layout.max_correctable_burst() == 1

    def test_burst_wider_than_interleave_uncorrectable(self):
        layout = InterleavedRowLayout(words=4)
        assert layout.burst_correctable(0, 4)
        assert not layout.burst_correctable(0, 5)

    def test_errors_per_word_counts(self):
        layout = InterleavedRowLayout(words=4)
        counts = layout.errors_per_word(first_column=0, width=6)
        assert counts == {0: 2, 1: 2, 2: 1, 3: 1}

    def test_burst_truncated_at_row_edge(self):
        layout = InterleavedRowLayout(words=2, bits_per_word=4)
        hits = layout.upset_burst(first_column=6, width=10)
        assert len(hits) == 2  # columns 6 and 7 only

    @given(
        words=st.sampled_from([2, 4, 8, 16]),
        start=st.integers(min_value=0, max_value=200),
        width=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_correctability_criterion_property(self, words, start, width):
        layout = InterleavedRowLayout(words=words)
        start = start % layout.columns
        expected = all(
            count <= 1 for count in layout.errors_per_word(start, width).values()
        )
        assert layout.burst_correctable(start, width) == expected
