"""Hypothesis property tests on the SRAM array and the protected array."""

from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sram.array import SRAMArray
from repro.sram.geometry import ArrayGeometry
from repro.sram.protected import ECCProtectedArray

ROWS, WORDS = 4, 4

# Operations: ("rmw", row, {col: value}) | ("write_row", row, values)
# | ("read", row)
_rmw_ops = st.tuples(
    st.just("rmw"),
    st.integers(min_value=0, max_value=ROWS - 1),
    st.dictionaries(
        st.integers(min_value=0, max_value=WORDS - 1),
        st.integers(min_value=0, max_value=999),
        min_size=1,
        max_size=WORDS,
    ),
)
_row_ops = st.tuples(
    st.just("write_row"),
    st.integers(min_value=0, max_value=ROWS - 1),
    st.lists(
        st.integers(min_value=0, max_value=999),
        min_size=WORDS,
        max_size=WORDS,
    ),
)
_ops = st.lists(st.one_of(_rmw_ops, _row_ops), max_size=40)


class TestArrayVsDictModel:
    @settings(max_examples=60, deadline=None)
    @given(operations=_ops)
    def test_array_contents_match_model(self, operations):
        """RMW and full-row writes behave exactly like a 2D dict."""
        array = SRAMArray(ArrayGeometry(rows=ROWS, words_per_row=WORDS))
        model: List[List[int]] = [[0] * WORDS for _ in range(ROWS)]
        for operation in operations:
            if operation[0] == "rmw":
                _, row, updates = operation
                array.read_modify_write(row, updates)
                for column, value in updates.items():
                    model[row][column] = value
            else:
                _, row, values = operation
                array.write_row(row, values)
                model[row] = list(values)
        for row in range(ROWS):
            assert array.peek_row(row) == model[row]

    @settings(max_examples=40, deadline=None)
    @given(operations=_ops)
    def test_event_accounting_is_exact(self, operations):
        """row_reads/row_writes follow directly from the op mix."""
        array = SRAMArray(ArrayGeometry(rows=ROWS, words_per_row=WORDS))
        rmw_count = sum(1 for op in operations if op[0] == "rmw")
        row_write_count = sum(1 for op in operations if op[0] == "write_row")
        for operation in operations:
            if operation[0] == "rmw":
                array.read_modify_write(operation[1], operation[2])
            else:
                array.write_row(operation[1], operation[2])
        assert array.events.rmw_operations == rmw_count
        assert array.events.row_reads == rmw_count
        assert array.events.row_writes == rmw_count + row_write_count


class TestProtectedArrayProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=ROWS - 1),
                st.integers(min_value=0, max_value=WORDS - 1),
                st.integers(min_value=0, max_value=2**40),
            ),
            max_size=20,
        ),
        flip=st.tuples(
            st.integers(min_value=0, max_value=ROWS - 1),
            st.integers(min_value=0, max_value=WORDS - 1),
            st.integers(min_value=0, max_value=71),
        ),
    )
    def test_any_single_flip_is_transparent(self, writes, flip):
        """After arbitrary writes, one bit flip anywhere never changes
        the value a read returns."""
        array = ECCProtectedArray(ArrayGeometry(rows=ROWS, words_per_row=WORDS))
        model: Dict[Tuple[int, int], int] = {}
        for row, word, value in writes:
            array.write_word(row, word, value)
            model[(row, word)] = value
        flip_row, flip_word, flip_bit = flip
        array.inject_bit_flips(flip_row, [(flip_word, flip_bit)])
        for row in range(ROWS):
            for word in range(WORDS):
                assert array.read_word(row, word) == model.get((row, word), 0)

    @settings(max_examples=30, deadline=None)
    @given(
        flips=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=ROWS - 1),
                st.integers(min_value=0, max_value=WORDS - 1),
                st.integers(min_value=0, max_value=71),
            ),
            unique=True,
            max_size=12,
        )
    )
    def test_scrub_heals_one_flip_per_word(self, flips):
        """A scrub repairs any fault pattern with <= 1 flip per word."""
        # Keep at most one flip per (row, word).
        unique_words = {}
        for row, word, bit in flips:
            unique_words.setdefault((row, word), bit)
        array = ECCProtectedArray(ArrayGeometry(rows=ROWS, words_per_row=WORDS))
        for (row, word), bit in unique_words.items():
            array.inject_bit_flips(row, [(word, bit)])
        report = array.scrub()
        assert report.clean
        assert report.corrected_words == len(unique_words)
        # And the data is intact (all zeros initially).
        for row in range(ROWS):
            for word in range(WORDS):
                assert array.read_word(row, word) == 0
