"""Unit tests for SRAM array geometry."""

import pytest

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.errors import ConfigurationError
from repro.sram.geometry import ArrayGeometry, BITS_PER_WORD


class TestShape:
    def test_basic(self):
        geometry = ArrayGeometry(rows=512, words_per_row=16)
        assert geometry.columns == 16 * BITS_PER_WORD
        assert geometry.total_cells == 512 * 1024
        assert geometry.interleaved

    def test_interleave_factor(self):
        assert ArrayGeometry(4, 8).interleave_factor == 8
        assert ArrayGeometry(4, 8, interleaved=False).interleave_factor == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArrayGeometry(rows=3, words_per_row=4)
        with pytest.raises(ConfigurationError):
            ArrayGeometry(rows=4, words_per_row=0)


class TestForCache:
    def test_baseline_mapping(self):
        array = ArrayGeometry.for_cache(BASELINE_GEOMETRY)
        # One row per set; a row holds the whole set (4 ways x 4 words).
        assert array.rows == 512
        assert array.words_per_row == 16

    def test_row_capacity_equals_set_bytes(self):
        for geometry in (
            BASELINE_GEOMETRY,
            CacheGeometry(32 * 1024, 4, 64),
            CacheGeometry(128 * 1024, 4, 32),
        ):
            array = ArrayGeometry.for_cache(geometry)
            assert array.words_per_row * 8 == geometry.set_bytes

    def test_non_interleaved_variant(self):
        array = ArrayGeometry.for_cache(BASELINE_GEOMETRY, interleaved=False)
        assert not array.interleaved
