"""Differential suite: scalar vs batched vs columnar must be bit-identical.

The batched and columnar engines exist purely for throughput — they
must never change a number.  Every test here replays the *same*
randomized trace through ``engine="scalar"``, ``engine="batched"`` and
(when NumPy is installed) ``engine="columnar"``, and asserts that the
:class:`SRAMEventLog`, :class:`OperationCounts`, :class:`CacheStats`
and the final :class:`FunctionalMemory` contents (after flushing every
dirty line) are equal, across techniques, geometries, controller knobs
and batch boundaries.
"""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.core.registry import ALL_CONTROLLER_NAMES, CONTROLLER_NAMES, make_controller
from repro.engine.batch import iter_batches
from repro.engine.columnar import HAVE_NUMPY
from repro.sim.simulator import Simulator

from tests.conftest import make_random_trace

GEOMETRIES = {
    "tiny": CacheGeometry(size_bytes=512, associativity=2, block_bytes=32),
    "small": CacheGeometry(size_bytes=4 * 1024, associativity=4, block_bytes=32),
    "wide": CacheGeometry(size_bytes=32 * 1024, associativity=8, block_bytes=64),
}


def run_engine(trace, technique, geometry, engine, batch_size=None, **kwargs):
    """One full run; returns (result, post-flush memory snapshot)."""
    simulator = Simulator(
        technique, geometry, engine=engine, batch_size=batch_size, **kwargs
    )
    simulator.feed(trace)
    result = simulator.finish()
    # Flushing every dirty line folds the cache's data arrays and dirty
    # bits into the memory image, so the snapshot comparison also
    # proves the *cache contents* agree, not just the counters.
    simulator.cache.flush_all_dirty()
    return result, simulator.memory.snapshot()


def assert_identical(trace, technique, geometry, batch_size=None, **kwargs):
    scalar, scalar_memory = run_engine(
        trace, technique, geometry, "scalar", **kwargs
    )
    engines = ["batched"] + (["columnar"] if HAVE_NUMPY else [])
    for engine in engines:
        candidate, candidate_memory = run_engine(
            trace, technique, geometry, engine, batch_size=batch_size, **kwargs
        )
        assert candidate.requests == scalar.requests, engine
        assert candidate.events == scalar.events, engine
        assert candidate.counts == scalar.counts, engine
        assert candidate.cache_stats == scalar.cache_stats, engine
        assert candidate_memory == scalar_memory, engine


class TestAllTechniques:
    @pytest.mark.parametrize("technique", ALL_CONTROLLER_NAMES)
    @pytest.mark.parametrize("geometry", GEOMETRIES.values(), ids=GEOMETRIES)
    def test_bit_identical(self, technique, geometry):
        trace = make_random_trace(3_000, seed=11, word_span=700)
        assert_identical(trace, technique, geometry)

    @pytest.mark.parametrize("technique", CONTROLLER_NAMES)
    def test_with_miss_traffic_accounting(self, technique, tiny_geometry):
        trace = make_random_trace(2_000, seed=12, word_span=400)
        assert_identical(
            trace, technique, tiny_geometry, count_miss_traffic=True
        )

    @pytest.mark.parametrize("technique", CONTROLLER_NAMES)
    def test_read_only_and_write_only(self, technique, tiny_geometry):
        reads = make_random_trace(800, seed=13, write_share=0.0)
        writes = make_random_trace(800, seed=14, write_share=1.0)
        assert_identical(reads, technique, tiny_geometry)
        assert_identical(writes, technique, tiny_geometry)


class TestBatchBoundaries:
    """A same-set write run split across batches must merge identically."""

    @pytest.mark.parametrize("technique", ("conventional", "wg", "wg_rb"))
    @pytest.mark.parametrize("batch_size", (1, 3, 7, 64, 4096))
    def test_write_runs_split_across_batches(
        self, technique, batch_size, tiny_geometry
    ):
        # Write-heavy + compact footprint: long consecutive same-set
        # write runs that every batch size except 4096 will split.
        trace = make_random_trace(
            1_500, seed=15, word_span=64, write_share=0.85
        )
        assert_identical(trace, technique, tiny_geometry, batch_size=batch_size)

    @pytest.mark.parametrize("technique", ("wg", "wg_rb"))
    @pytest.mark.parametrize("batch_size", (2, 3, 4))
    def test_same_set_run_spans_boundary_with_dirty_buffer(
        self, technique, batch_size, tiny_geometry
    ):
        """Pinned corner: a same-set write run crosses a batch boundary
        while the Set-Buffer is dirty from the records before the cut.

        The batched engine must treat the post-boundary writes as a
        continuation of the buffered run — re-filling (or prematurely
        flushing) at the boundary would change write-back counts and,
        with a lost modification, the final memory image.
        """
        from repro.trace.record import AccessType, MemoryAccess

        g = tiny_geometry
        stride = 1 << (g.offset_bits + g.index_bits)

        def addr(tag, word):
            return tag * stride + word * 8  # set 0 throughout

        trace = []
        icount = 0
        # Ten dirty writes into set 0 across two tags: whatever the
        # batch size in (2, 3, 4), at least one boundary lands inside
        # this run with modifications pending in the Set-Buffer.
        for i in range(10):
            icount += 1
            trace.append(
                MemoryAccess(
                    icount=icount,
                    kind=AccessType.WRITE,
                    address=addr(i % 2, i % g.words_per_block),
                    value=100 + i,
                )
            )
        # Then a read of a buffered word and an eviction-forcing fill.
        icount += 1
        trace.append(
            MemoryAccess(
                icount=icount, kind=AccessType.READ, address=addr(0, 0)
            )
        )
        icount += 1
        trace.append(
            MemoryAccess(
                icount=icount,
                kind=AccessType.WRITE,
                address=addr(5, 0),
                value=999,
            )
        )
        assert_identical(trace, technique, g, batch_size=batch_size)

    def test_single_record_trace(self, tiny_geometry):
        trace = make_random_trace(1, seed=16)
        for technique in CONTROLLER_NAMES:
            assert_identical(trace, technique, tiny_geometry)

    def test_empty_trace(self, tiny_geometry):
        for technique in CONTROLLER_NAMES:
            assert_identical([], technique, tiny_geometry)


class TestControllerKnobs:
    @pytest.mark.parametrize("technique", ("wg", "wg_rb"))
    @pytest.mark.parametrize("entries", (2, 3))
    def test_multi_entry_tag_buffer(self, technique, entries, tiny_geometry):
        trace = make_random_trace(2_000, seed=17, word_span=256, write_share=0.6)
        assert_identical(trace, technique, tiny_geometry, entries=entries)

    @pytest.mark.parametrize("technique", ("wg", "wg_rb"))
    def test_silent_detection_off(self, technique, tiny_geometry):
        trace = make_random_trace(2_000, seed=18, word_span=256, silent_share=0.6)
        assert_identical(
            trace, technique, tiny_geometry, detect_silent_writes=False
        )


class TestFallbackPaths:
    """Configurations the fast paths must refuse — and still match."""

    @pytest.mark.parametrize("replacement", ("fifo", "random", "plru"))
    def test_non_lru_replacement_falls_back(self, replacement, tiny_geometry):
        trace = make_random_trace(1_500, seed=19, word_span=400)
        results = []
        for use_batches in (False, True):
            cache = SetAssociativeCache(tiny_geometry, replacement=replacement)
            assert not cache.engine_fast_ok
            controller = make_controller("wg", cache)
            if use_batches:
                for batch in iter_batches(trace, tiny_geometry, 128):
                    controller.process_batch(batch)
            else:
                for access in trace:
                    controller.process(access)
            controller.finalize()
            results.append((controller.events, controller.counts, cache.stats))
        assert results[0] == results[1]

    def test_telemetry_forces_scalar_path_same_results(self, tiny_geometry):
        from repro.obs.registry import MetricsRegistry
        from repro.obs.telemetry import Telemetry

        trace = make_random_trace(1_000, seed=20, word_span=200)
        plain, plain_memory = run_engine(trace, "wg", tiny_geometry, "scalar")
        telemetry = Telemetry(registry=MetricsRegistry())
        instrumented = Simulator(
            "wg", tiny_geometry, telemetry=telemetry, engine="batched"
        )
        instrumented.feed(trace)
        result = instrumented.finish()
        instrumented.cache.flush_all_dirty()
        assert result.events == plain.events
        assert result.counts == plain.counts
        assert instrumented.memory.snapshot() == plain_memory
        # The per-access instrumentation really ran.
        assert telemetry.registry.value("ctrl.wg.read_requests") > 0

    def test_geometry_mismatch_rejected(self, tiny_geometry, small_geometry):
        trace = make_random_trace(10, seed=21)
        cache = SetAssociativeCache(tiny_geometry)
        controller = make_controller("conventional", cache)
        batch = next(iter_batches(trace, small_geometry))
        with pytest.raises(ValueError, match="batch decoded for"):
            controller.process_batch(batch)
