"""Smoke tests for the hot-path benchmark harness."""

import pytest

from repro.cache.config import CacheGeometry
from repro.engine.bench import BenchResult, bench_report, run_hotpath_bench


@pytest.fixture(scope="module")
def results():
    geometry = CacheGeometry(size_bytes=4 * 1024, associativity=4, block_bytes=32)
    return run_hotpath_bench(
        techniques=("conventional", "wg"),
        accesses=2_000,
        geometry=geometry,
        repeats=1,
    )


class TestRunHotpathBench:
    def test_measures_both_engines(self, results):
        assert [r.technique for r in results] == ["conventional", "wg"]
        for result in results:
            assert result.accesses == 2_000
            assert result.scalar_seconds > 0
            assert result.batched_seconds > 0
            assert result.scalar_aps > 0
            assert result.batched_aps > 0
            assert result.speedup > 0

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_hotpath_bench(repeats=0)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_hotpath_bench(engines=("scalar", "vectorised"))

    def test_columnar_unmeasured_by_default(self, results):
        for result in results:
            assert result.columnar_seconds is None
            assert result.columnar_aps == 0.0
            assert result.columnar_speedup == 0.0
            assert "columnar_seconds" not in result.to_dict()


class TestColumnarTier:
    def test_columnar_engine_measured(self):
        pytest.importorskip("numpy")
        geometry = CacheGeometry(
            size_bytes=4 * 1024, associativity=4, block_bytes=32
        )
        results = run_hotpath_bench(
            techniques=("conventional",),
            accesses=2_000,
            geometry=geometry,
            repeats=1,
            engines=("scalar", "batched", "columnar"),
        )
        (result,) = results
        assert result.columnar_seconds is not None
        assert result.columnar_seconds > 0
        assert result.columnar_aps > 0
        assert result.columnar_speedup > 0
        doc = result.to_dict()
        assert doc["columnar_seconds"] == result.columnar_seconds
        assert doc["columnar_speedup"] == result.columnar_speedup
        # The ledger copies the columnar fields through additively.
        from repro.obs.perf.ledger import run_record

        record = run_record(
            results, "bwaves", geometry.describe(), 2_000, seed=1, repeats=1,
            env={}, timestamp="2026-01-01T00:00:00Z",
        )
        assert "columnar_speedup" in record["results"][0]


class TestBenchReport:
    def test_document_shape(self, results):
        report = bench_report(
            results,
            "bwaves",
            CacheGeometry(size_bytes=4 * 1024, associativity=4, block_bytes=32),
        )
        assert report["benchmark"] == "bwaves"
        assert len(report["results"]) == 2
        for row in report["results"]:
            assert set(row) == {
                "technique",
                "accesses",
                "scalar_seconds",
                "batched_seconds",
                "scalar_accesses_per_second",
                "batched_accesses_per_second",
                "speedup",
            }
        assert report["regressions"] == []

    def test_floor_violations_listed(self):
        fake = BenchResult(
            technique="conventional",
            accesses=100,
            scalar_seconds=1.0,
            batched_seconds=0.9,  # speedup 1.11x
        )
        geometry = CacheGeometry(size_bytes=512, associativity=2, block_bytes=32)
        report = bench_report(
            [fake], "bwaves", geometry, floors={"conventional": 3.0}
        )
        assert report["regressions"] == [
            {
                "technique": "conventional",
                "speedup": pytest.approx(1.0 / 0.9),
                "floor": 3.0,
            }
        ]

    def test_unfloored_techniques_ignored(self):
        fake = BenchResult(
            technique="wg", accesses=100, scalar_seconds=1.0, batched_seconds=1.0
        )
        geometry = CacheGeometry(size_bytes=512, associativity=2, block_bytes=32)
        report = bench_report([fake], "bwaves", geometry, floors={"rmw": 3.0})
        assert report["regressions"] == []
