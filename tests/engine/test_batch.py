"""Unit tests for the struct-of-arrays batch decoder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.address import AddressMapper
from repro.cache.config import CacheGeometry
from repro.engine.batch import AccessBatch, DEFAULT_BATCH_SIZE, iter_batches
from repro.trace.record import AccessType, MemoryAccess

from tests.conftest import make_random_trace

_addresses = st.integers(min_value=0, max_value=2**40).map(lambda x: x * 8)


class TestAddressSplit:
    @given(address=_addresses)
    def test_fields_match_the_address_mapper(self, address):
        geometry = CacheGeometry(size_bytes=4 * 1024, associativity=4, block_bytes=32)
        mapper = AddressMapper(geometry)
        access = MemoryAccess(icount=0, kind=AccessType.READ, address=address)
        batch = AccessBatch.from_accesses([access], geometry)
        assert batch.set_indices[0] == mapper.set_index(address)
        assert batch.tags[0] == mapper.tag(address)
        assert batch.word_offsets[0] == mapper.word_offset(address)

    def test_codec_is_geometry_specific(self):
        a = CacheGeometry(size_bytes=512, associativity=2, block_bytes=32)
        b = CacheGeometry(size_bytes=64 * 1024, associativity=4, block_bytes=32)
        access = MemoryAccess(icount=0, kind=AccessType.READ, address=0x1F38)
        split_a = AccessBatch.from_accesses([access], a)
        split_b = AccessBatch.from_accesses([access], b)
        assert (split_a.set_indices, split_a.tags) != (
            split_b.set_indices,
            split_b.tags,
        )


class TestRoundTrip:
    def test_accesses_reconstruct_the_trace(self, tiny_geometry):
        trace = make_random_trace(500, seed=1)
        batch = AccessBatch.from_accesses(trace, tiny_geometry)
        assert len(batch) == 500
        assert list(batch.accesses()) == trace
        assert batch.access(7) == trace[7]

    def test_kind_encoding_matches_binary_format(self, tiny_geometry):
        trace = [
            MemoryAccess(icount=0, kind=AccessType.READ, address=0),
            MemoryAccess(icount=1, kind=AccessType.WRITE, address=8, value=3),
        ]
        batch = AccessBatch.from_accesses(trace, tiny_geometry)
        assert batch.kinds == [0, 1]

    def test_all_columns_same_length(self, tiny_geometry):
        batch = AccessBatch.from_accesses(
            make_random_trace(37, seed=2), tiny_geometry
        )
        lengths = {
            len(column)
            for column in (
                batch.icounts,
                batch.kinds,
                batch.addresses,
                batch.values,
                batch.set_indices,
                batch.tags,
                batch.word_offsets,
            )
        }
        assert lengths == {37}


class TestIterBatches:
    def test_chunking(self, tiny_geometry):
        trace = make_random_trace(10, seed=3)
        batches = list(iter_batches(trace, tiny_geometry, batch_size=4))
        assert [len(batch) for batch in batches] == [4, 4, 2]
        flattened = [a for batch in batches for a in batch.accesses()]
        assert flattened == trace

    def test_exact_multiple_has_no_empty_tail(self, tiny_geometry):
        trace = make_random_trace(8, seed=4)
        batches = list(iter_batches(trace, tiny_geometry, batch_size=4))
        assert [len(batch) for batch in batches] == [4, 4]

    def test_empty_trace_yields_nothing(self, tiny_geometry):
        assert list(iter_batches([], tiny_geometry)) == []

    def test_default_batch_size(self, tiny_geometry):
        trace = make_random_trace(DEFAULT_BATCH_SIZE + 1, seed=5)
        batches = list(iter_batches(trace, tiny_geometry))
        assert [len(batch) for batch in batches] == [DEFAULT_BATCH_SIZE, 1]

    @pytest.mark.parametrize("bad", (0, -3))
    def test_invalid_batch_size_rejected(self, bad, tiny_geometry):
        with pytest.raises(ValueError, match="batch_size"):
            list(iter_batches([], tiny_geometry, batch_size=bad))

    def test_streaming_does_not_materialize(self, tiny_geometry):
        # A generator trace must be consumable batch by batch.
        def generate():
            for access in make_random_trace(6, seed=6):
                yield access

        batches = iter_batches(generate(), tiny_geometry, batch_size=2)
        assert len(next(batches)) == 2
        assert len(next(batches)) == 2
