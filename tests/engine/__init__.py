"""Tests for the batched execution engine (:mod:`repro.engine`)."""
