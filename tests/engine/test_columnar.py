"""Columnar engine suite: kernels, gating, fallbacks, adversarial fuzz.

Everything here needs NumPy (the ``columnar`` extra); on a bare
interpreter the whole module skips — the numpy-less contract (engine
construction raising :class:`ValidationError`) is enforced inside
:mod:`repro.engine.columnar` and exercised by the CI matrix instead.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.check.differential import run_differential
from repro.check.fuzz import SCENARIO_NAMES, TraceFuzzer
from repro.core.registry import CONTROLLER_NAMES, make_controller
from repro.engine.batch import iter_batches
from repro.engine.columnar import (
    ColumnarChunk,
    iter_chunks,
    process_chunk,
)
from repro.errors import StateError, ValidationError
from repro.sim.simulator import Simulator

from tests.conftest import make_random_trace
from tests.engine.test_differential import GEOMETRIES, assert_identical


def run_columnar_direct(trace, technique, geometry, batch_size=None, **kwargs):
    """Drive process_chunk by hand (no Simulator); returns run artefacts."""
    cache = SetAssociativeCache(geometry)
    controller = make_controller(technique, cache, **kwargs)
    consumed = 0
    for chunk in iter_chunks(trace, geometry, batch_size):
        consumed += process_chunk(controller, chunk)
    controller.finalize()
    cache.flush_all_dirty()
    return controller, cache, consumed


def run_scalar_direct(trace, technique, geometry, **kwargs):
    cache = SetAssociativeCache(geometry)
    controller = make_controller(technique, cache, **kwargs)
    for access in trace:
        controller.process(access)
    controller.finalize()
    cache.flush_all_dirty()
    return controller, cache


def assert_runs_equal(scalar, columnar):
    s_controller, s_cache = scalar
    c_controller, c_cache = columnar[:2]
    assert c_controller.events == s_controller.events
    assert c_controller.counts == s_controller.counts
    assert c_cache.stats == s_cache.stats
    assert c_cache.memory.snapshot() == s_cache.memory.snapshot()


class TestKernelEquality:
    """The columnar kernels must be bit-identical to scalar execution."""

    @pytest.mark.parametrize("technique", CONTROLLER_NAMES)
    @pytest.mark.parametrize("geometry", GEOMETRIES.values(), ids=GEOMETRIES)
    def test_bit_identical(self, technique, geometry):
        trace = make_random_trace(3_000, seed=31, word_span=700)
        assert_identical(trace, technique, geometry)

    @pytest.mark.parametrize("technique", CONTROLLER_NAMES)
    def test_miss_traffic_accounting(self, technique, tiny_geometry):
        trace = make_random_trace(2_000, seed=32, word_span=400)
        scalar = run_scalar_direct(
            trace, technique, tiny_geometry, count_miss_traffic=True
        )
        columnar = run_columnar_direct(
            trace, technique, tiny_geometry, count_miss_traffic=True
        )
        assert_runs_equal(scalar, columnar)

    @pytest.mark.parametrize("technique", CONTROLLER_NAMES)
    @pytest.mark.parametrize("batch_size", (1, 3, 64, 4096))
    def test_chunk_boundaries(self, technique, batch_size, tiny_geometry):
        trace = make_random_trace(1_500, seed=33, word_span=64, write_share=0.85)
        scalar = run_scalar_direct(trace, technique, tiny_geometry)
        columnar = run_columnar_direct(
            trace, technique, tiny_geometry, batch_size=batch_size
        )
        assert_runs_equal(scalar, columnar)
        assert columnar[2] == len(trace)

    @pytest.mark.parametrize("technique", CONTROLLER_NAMES)
    def test_read_only_and_write_only(self, technique, tiny_geometry):
        for seed, share in ((34, 0.0), (35, 1.0)):
            trace = make_random_trace(800, seed=seed, write_share=share)
            assert_runs_equal(
                run_scalar_direct(trace, technique, tiny_geometry),
                run_columnar_direct(trace, technique, tiny_geometry),
            )

    def test_empty_chunk_is_noop(self, tiny_geometry):
        cache = SetAssociativeCache(tiny_geometry)
        controller = make_controller("conventional", cache)
        from repro.engine.batch import AccessBatch

        empty = ColumnarChunk.from_access_batch(
            AccessBatch(geometry=tiny_geometry)
        )
        assert len(empty) == 0
        assert process_chunk(controller, empty) == 0
        controller.finalize()
        assert controller.counts.read_requests == 0


class TestAdversarialScenarios:
    """The fuzzer's adversarial scenarios, replayed four ways.

    ``run_differential`` includes the columnar leg whenever NumPy is
    installed (which it is, or this module would have skipped), so each
    case below is an oracle↔scalar↔batched↔columnar comparison.
    """

    @pytest.mark.parametrize("scenario_index", range(len(SCENARIO_NAMES)))
    @pytest.mark.parametrize("technique", CONTROLLER_NAMES)
    def test_fuzz_scenarios(self, scenario_index, technique):
        fuzzer = TraceFuzzer(seed=99, max_accesses=300)
        # case(i) cycles scenarios; i and i + len(SCENARIO_NAMES) give
        # two independent cases of the same scenario.
        for iteration in (
            scenario_index,
            scenario_index + len(SCENARIO_NAMES),
        ):
            case = fuzzer.case(iteration)
            assert case.scenario == SCENARIO_NAMES[scenario_index]
            divergences = run_differential(
                case.trace,
                technique,
                case.geometry,
                batch_size=case.batch_size,
                count_miss_traffic=case.count_miss_traffic,
                detect_silent_writes=case.detect_silent_writes,
                entries=case.entries,
            )
            assert divergences == []


class TestFallbacks:
    """Configurations the columnar kernels refuse — and still match."""

    @pytest.mark.parametrize("technique", ("wg", "wg_rb"))
    @pytest.mark.parametrize("entries", (2, 3))
    def test_multi_entry_falls_back(self, technique, entries, tiny_geometry):
        trace = make_random_trace(1_200, seed=36, word_span=256, write_share=0.6)
        assert_runs_equal(
            run_scalar_direct(
                trace, technique, tiny_geometry, entries=entries
            ),
            run_columnar_direct(
                trace, technique, tiny_geometry, entries=entries
            ),
        )

    @pytest.mark.parametrize("replacement", ("fifo", "random", "plru"))
    def test_non_lru_replacement_falls_back(self, replacement, tiny_geometry):
        trace = make_random_trace(1_000, seed=37, word_span=400)
        results = []
        for use_chunks in (False, True):
            cache = SetAssociativeCache(tiny_geometry, replacement=replacement)
            assert not cache.engine_fast_ok
            controller = make_controller("wg", cache)
            if use_chunks:
                for chunk in iter_chunks(trace, tiny_geometry, 128):
                    process_chunk(controller, chunk)
            else:
                for access in trace:
                    controller.process(access)
            controller.finalize()
            results.append((controller.events, controller.counts, cache.stats))
        assert results[0] == results[1]

    def test_telemetry_forces_fallback_same_results(self, tiny_geometry):
        from repro.obs.registry import MetricsRegistry
        from repro.obs.telemetry import Telemetry

        trace = make_random_trace(1_000, seed=38, word_span=200)
        plain = run_scalar_direct(trace, "wg", tiny_geometry)
        telemetry = Telemetry(registry=MetricsRegistry())
        instrumented = Simulator(
            "wg", tiny_geometry, telemetry=telemetry, engine="columnar"
        )
        instrumented.feed(trace)
        result = instrumented.finish()
        instrumented.cache.flush_all_dirty()
        assert result.events == plain[0].events
        assert result.counts == plain[0].counts
        assert instrumented.memory.snapshot() == plain[1].memory.snapshot()
        # The per-access instrumentation really ran (fallback to scalar).
        assert telemetry.registry.value("ctrl.wg.read_requests") > 0


class TestGates:
    def test_finalized_controller_rejected(self, tiny_geometry):
        trace = make_random_trace(4, seed=39)
        cache = SetAssociativeCache(tiny_geometry)
        controller = make_controller("conventional", cache)
        chunk = next(iter_chunks(trace, tiny_geometry))
        controller.finalize()
        with pytest.raises(StateError, match="already finalized"):
            process_chunk(controller, chunk)

    def test_geometry_mismatch_rejected(self, tiny_geometry, small_geometry):
        trace = make_random_trace(10, seed=40)
        cache = SetAssociativeCache(tiny_geometry)
        controller = make_controller("conventional", cache)
        chunk = next(iter_chunks(trace, small_geometry))
        with pytest.raises(ValidationError, match="decoded for"):
            process_chunk(controller, chunk)

    def test_unknown_engine_rejected(self, tiny_geometry):
        with pytest.raises(ValidationError, match="unknown engine"):
            Simulator("conventional", tiny_geometry, engine="vectorised")


class TestChunkRoundTrip:
    def test_batch_chunk_batch_round_trip(self, tiny_geometry):
        trace = make_random_trace(257, seed=41, word_span=120)
        for batch in iter_batches(trace, tiny_geometry, 64):
            again = ColumnarChunk.from_access_batch(batch).to_access_batch()
            assert again == batch

    def test_grouped_projection_is_cached(self, tiny_geometry):
        trace = make_random_trace(100, seed=42)
        chunk = next(iter_chunks(trace, tiny_geometry))
        first = chunk.grouped()
        assert chunk.grouped() is first

    def test_grouped_projection_counts_writes(self, tiny_geometry):
        trace = make_random_trace(500, seed=43, write_share=0.5)
        chunk = next(iter_chunks(trace, tiny_geometry, 4096))
        writes = chunk.grouped()[-1]
        assert writes == sum(1 for access in trace if access.is_write)
