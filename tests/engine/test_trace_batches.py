"""Tests for the batch-decoding trace readers (binio/textio)."""

import pytest

from repro.errors import TraceFormatError
from repro.faultinject import flip_bit, truncate_file
from repro.trace.binio import (
    read_binary_trace,
    read_binary_trace_batches,
    write_binary_trace,
)
from repro.trace.textio import (
    read_text_trace,
    read_text_trace_batches,
    write_text_trace,
)

from tests.conftest import make_random_trace


def flatten(batches):
    return [access for batch in batches for access in batch.accesses()]


class TestBinaryBatches:
    @pytest.mark.parametrize("crc", (False, True))
    def test_matches_scalar_reader(self, tmp_path, tiny_geometry, crc):
        trace = make_random_trace(300, seed=1)
        path = tmp_path / "t.bin"
        write_binary_trace(path, trace, crc=crc)
        scalar = list(read_binary_trace(path))
        batched = flatten(read_binary_trace_batches(path, tiny_geometry, 64))
        assert batched == scalar == trace

    def test_batch_sizing_and_geometry(self, tmp_path, tiny_geometry):
        trace = make_random_trace(10, seed=2)
        path = tmp_path / "t.bin"
        write_binary_trace(path, trace)
        batches = list(read_binary_trace_batches(path, tiny_geometry, 4))
        assert [len(batch) for batch in batches] == [4, 4, 2]
        assert all(batch.geometry == tiny_geometry for batch in batches)

    def test_empty_file(self, tmp_path, tiny_geometry):
        path = tmp_path / "t.bin"
        write_binary_trace(path, [])
        assert list(read_binary_trace_batches(path, tiny_geometry)) == []

    def test_bad_kind_byte_keeps_record_index(self, tmp_path, tiny_geometry):
        import struct

        from repro.trace.binio import MAGIC

        path = tmp_path / "kind.bin"
        good = struct.pack("<QBQQ", 0, 1, 8, 0)
        bad = struct.pack("<QBQQ", 1, 7, 8, 0)
        path.write_bytes(MAGIC + good + bad)
        with pytest.raises(
            TraceFormatError, match=r"record #1 at byte offset 33"
        ):
            flatten(read_binary_trace_batches(path, tiny_geometry))

    def test_crc_bit_rot_detected(self, tmp_path, tiny_geometry):
        trace = make_random_trace(5, seed=3)
        path = tmp_path / "t.bin"
        write_binary_trace(path, trace, crc=True)
        flip_bit(path, byte_offset=8 + 29 + 2, bit=5)
        with pytest.raises(TraceFormatError, match=r"CRC mismatch in record #1"):
            flatten(read_binary_trace_batches(path, tiny_geometry))

    def test_truncated_record_detected(self, tmp_path, tiny_geometry):
        trace = make_random_trace(5, seed=4)
        path = tmp_path / "t.bin"
        write_binary_trace(path, trace)
        truncate_file(path, keep_bytes=8 + 25 * 2 + 10)
        with pytest.raises(TraceFormatError, match="truncated"):
            flatten(read_binary_trace_batches(path, tiny_geometry))

    def test_records_before_corruption_still_readable(
        self, tmp_path, tiny_geometry
    ):
        trace = make_random_trace(5, seed=5)
        path = tmp_path / "t.bin"
        write_binary_trace(path, trace, crc=True)
        flip_bit(path, byte_offset=-1, bit=0)  # last record's CRC
        reader = read_binary_trace_batches(path, tiny_geometry, 2)
        assert list(next(reader).accesses()) == trace[:2]
        assert list(next(reader).accesses()) == trace[2:4]
        with pytest.raises(TraceFormatError):
            next(reader)

    def test_crc_mismatch_message_pins_record_and_offset(
        self, tmp_path, tiny_geometry
    ):
        # Pins the exact record-index/byte-offset text across the
        # single-pass restructure of the RPTRACE2 chunk loop.
        trace = make_random_trace(5, seed=3)
        path = tmp_path / "t.bin"
        write_binary_trace(path, trace, crc=True)
        flip_bit(path, byte_offset=8 + 29 + 2, bit=5)
        with pytest.raises(
            TraceFormatError,
            match=r"CRC mismatch in record #1 at byte offset 37: "
            r"stored 0x[0-9a-f]{8}, computed 0x[0-9a-f]{8}",
        ):
            flatten(read_binary_trace_batches(path, tiny_geometry))

    def test_crc_message_identical_to_scalar_reader(
        self, tmp_path, tiny_geometry
    ):
        trace = make_random_trace(5, seed=3)
        path = tmp_path / "t.bin"
        write_binary_trace(path, trace, crc=True)
        flip_bit(path, byte_offset=8 + 2 * 29 + 4, bit=1)
        with pytest.raises(TraceFormatError) as scalar_exc:
            list(read_binary_trace(path))
        with pytest.raises(TraceFormatError) as batch_exc:
            flatten(read_binary_trace_batches(path, tiny_geometry))
        assert str(batch_exc.value) == str(scalar_exc.value)

    def test_kind_byte_message_identical_across_readers(
        self, tmp_path, tiny_geometry
    ):
        import struct

        from repro.trace.binio import MAGIC

        path = tmp_path / "kind.bin"
        good = struct.pack("<QBQQ", 0, 1, 8, 0)
        bad = struct.pack("<QBQQ", 1, 7, 8, 0)
        path.write_bytes(MAGIC + good + bad)
        with pytest.raises(TraceFormatError) as scalar_exc:
            list(read_binary_trace(path))
        with pytest.raises(TraceFormatError) as batch_exc:
            flatten(read_binary_trace_batches(path, tiny_geometry))
        assert str(batch_exc.value) == str(scalar_exc.value)
        assert "bad kind byte 7" in str(batch_exc.value)

    def test_crc_checked_before_kind_within_chunk(
        self, tmp_path, tiny_geometry
    ):
        # A chunk holding both a bad kind byte (record #0) and a CRC
        # mismatch (record #1) must still report the CRC error first:
        # the chunk verifies every record's CRC before decoding any.
        import struct
        import zlib

        from repro.trace.binio import MAGIC_CRC

        body0 = struct.pack("<QBQQ", 0, 7, 8, 0)  # bad kind, valid CRC
        rec0 = body0 + struct.pack("<I", zlib.crc32(body0) & 0xFFFFFFFF)
        body1 = struct.pack("<QBQQ", 1, 1, 8, 0)
        rec1 = body1 + struct.pack("<I", (zlib.crc32(body1) ^ 1) & 0xFFFFFFFF)
        path = tmp_path / "both.bin"
        path.write_bytes(MAGIC_CRC + rec0 + rec1)
        with pytest.raises(
            TraceFormatError, match=r"CRC mismatch in record #1"
        ):
            flatten(read_binary_trace_batches(path, tiny_geometry))


class TestTextBatches:
    def test_matches_scalar_reader(self, tmp_path, tiny_geometry):
        trace = make_random_trace(120, seed=6)
        path = tmp_path / "t.trc"
        write_text_trace(path, trace)
        scalar = list(read_text_trace(path))
        batched = flatten(read_text_trace_batches(path, tiny_geometry, 32))
        assert batched == scalar == trace

    def test_malformed_line_reported(self, tmp_path, tiny_geometry):
        path = tmp_path / "bad.trc"
        path.write_text("0 R 0x0\nnot a record\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            flatten(read_text_trace_batches(path, tiny_geometry))
