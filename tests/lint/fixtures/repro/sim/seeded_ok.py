"""RPR102 negative: explicitly seeded randomness is legal."""

import random


def jitter(value: float, seed: int) -> float:
    rng = random.Random(seed)
    return value + rng.random()
