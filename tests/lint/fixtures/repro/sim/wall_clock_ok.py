"""RPR101 negative: measurement clocks are legal in the sim path."""

import time


def measure(work) -> float:
    start = time.perf_counter()
    work()
    return time.perf_counter() - start


def pace() -> float:
    return time.monotonic()
