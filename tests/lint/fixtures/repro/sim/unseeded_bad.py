"""RPR102 positive: an unseeded global-RNG draw in a sim-path module.

This is the acceptance-criteria fixture: a deliberately unseeded
``random.random()`` on the simulation path must be flagged.
"""

import random


def jitter(value: float) -> float:
    return value + random.random()


def fresh_rng():
    # Unseeded constructor: seeds from the wall clock.
    return random.Random()
