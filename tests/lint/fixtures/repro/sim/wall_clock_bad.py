"""RPR101 positive: wall-clock reads inside a sim-path module."""

import time
from datetime import datetime


def stamp_result(value: int) -> dict:
    # Both reads below leak wall-clock state into simulation output.
    return {
        "value": value,
        "at": time.time(),
        "when": datetime.now().isoformat(),
    }
