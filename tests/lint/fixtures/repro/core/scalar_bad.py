"""RPR121 positive: a concrete controller missing the scalar API."""

from repro.core.controller import CacheController


class HalfController(CacheController):
    name = "half"

    def _handle_read(self, access, result):
        return None
    # _handle_write missing: the oracle and scalar fallback would
    # fall through to the abstract base.
