"""RPR121 negatives: complete concrete class, and an abstract base."""

import abc

from repro.core.controller import CacheController


class FullController(CacheController):
    name = "full"

    def _handle_read(self, access, result):
        return None

    def _handle_write(self, access, result):
        return None


class AbstractFamily(CacheController):
    """Abstract intermediates are exempt from the scalar-API check."""

    name = "family"

    @abc.abstractmethod
    def family_knob(self) -> int:
        raise NotImplementedError
