"""RPR122 negatives: a re-stated gate, and a super() delegation."""

from repro.core.controller import CacheController


class GatedController(CacheController):
    name = "gated"

    def _handle_read(self, access, result):
        return None

    def _handle_write(self, access, result):
        return None

    def process_batch(self, batch) -> int:
        if (
            self.cache.engine_fast_ok
            and not self._obs
            and self._invariant_checker is None
        ):
            self._process_batch_fast(batch)
        else:
            for access in batch.accesses():
                self.process(access)
        return len(batch)


class DelegatingController(CacheController):
    name = "delegating"

    def _handle_read(self, access, result):
        return None

    def _handle_write(self, access, result):
        return None

    def process_batch(self, batch) -> int:
        self.prepare(batch)
        return super().process_batch(batch)

    def prepare(self, batch) -> None:
        pass
