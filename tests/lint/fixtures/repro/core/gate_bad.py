"""RPR122 positive: a ``process_batch`` override with no fallback gate.

This is the acceptance-criteria fixture: the override never consults
``engine_fast_ok`` (nor ``_obs``/``_invariant_checker``), so it would
take the fast path with telemetry or debug-mode checks active.
"""

from repro.core.controller import CacheController


class UngatedController(CacheController):
    name = "ungated"

    def _handle_read(self, access, result):
        return None

    def _handle_write(self, access, result):
        return None

    def process_batch(self, batch) -> int:
        for access in batch.accesses():
            self.process(access)
        return len(batch)
