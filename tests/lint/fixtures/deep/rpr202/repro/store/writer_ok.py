"""The same publish done durably — inline fsync, and fsync delegated to
a helper so the link-time discharge path is exercised too."""

import json
import os
import tempfile


def publish(path: str, payload: dict) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def publish_via_helper(path: str, payload: dict) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload))
        _sync(handle)
    os.replace(tmp, path)


def _sync(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())
