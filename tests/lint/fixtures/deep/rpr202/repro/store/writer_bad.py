"""Atomic-rename publish that is missing *only* the fsync."""

import json
import os
import tempfile


def publish(path: str, payload: dict) -> None:
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload))
    os.replace(tmp, path)  # RPR202: no fsync between write and replace
