"""Silent-degradation fixtures: one swallowing handler, three legal
shapes (re-raise, direct emit, emit delegated to a helper)."""

from repro.errors import StoreIntegrityError


def load_bad(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except StoreIntegrityError:
        return ""  # RPR205: degradation invisible to operators


def load_strict(path: str) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except StoreIntegrityError:
        raise


def load_noisy(path: str, telem) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except StoreIntegrityError as exc:
        telem.warn("warning.store.damaged", str(exc), path=path)
        return ""


def load_delegating(path: str, telem) -> str:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except StoreIntegrityError:
        _note_damage(telem, path)
        return ""


def _note_damage(telem, path: str) -> None:
    telem.warn("warning.store.damaged", "unreadable entry", path=path)
