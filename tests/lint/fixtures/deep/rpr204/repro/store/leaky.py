"""Resource-escape fixtures for the durability paths."""


def header_bad(path: str) -> str:
    handle = open(path, "r", encoding="utf-8")
    return handle.readline()  # RPR204: handle is never closed


def header_ok(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.readline()


def header_closed(path: str) -> str:
    handle = open(path, "r", encoding="utf-8")
    try:
        return handle.readline()
    finally:
        handle.close()


def open_for_caller(path: str):
    # Ownership transfer: returning the handle is a legal escape.
    return open(path, "r", encoding="utf-8")
