"""Unfenced helpers: direct wall-clock use is legal here (RPR101 only
fences repro.core/engine/sim/check), but the effect still propagates
into any fenced caller's closure."""

import time


def stamped(step: int) -> float:
    return _with_clock(step)


def _with_clock(step: int) -> float:
    return step + _now()


def _now() -> float:
    return time.time()


def scale(step: int) -> float:
    return step * 2.0
