"""Fenced module that leaks wall clock only *transitively*.

No direct ``time.*`` call appears here (RPR101 stays silent); the taint
arrives through a two-deep helper chain in the unfenced ``helpers``
package, which only the interprocedural tier can see.
"""

from repro.helpers import chain


def run_step(step: int) -> float:
    """RPR201: chain.stamped's closure reaches time.time()."""
    return chain.stamped(step)


def run_clean(step: int) -> float:
    """Silent: chain.scale is pure."""
    return chain.scale(step)
