"""Lock-set fixtures: one racy class, one that follows the
lock-held-helper idiom RPR203's fixpoint exists to permit."""

import threading
from typing import List


class RacyCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: List[str] = []

    def add(self, item: str) -> None:
        with self._lock:
            self._items.append(item)

    def reset(self) -> None:
        self._items = []  # RPR203: naked write to lock-guarded state


class SafeCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: List[str] = []

    def add(self, item: str) -> None:
        with self._lock:
            self._items.append(item)

    def drain(self) -> List[str]:
        with self._lock:
            out = list(self._items)
            self._wipe_locked()
            return out

    def _wipe_locked(self) -> None:
        # Exempt: every intra-class call site holds the lock.
        self._items.clear()
