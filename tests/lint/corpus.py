"""Inline fixture corpus for the package-agnostic lint rules.

Each entry is one rule exercised through ``lint_source`` with a
synthetic library path: ``bad`` must produce at least one finding under
exactly that rule id (and no other), ``good`` must produce none.
Package-scoped rules (determinism, controllers, telemetry) live in the
on-disk tree under ``tests/lint/fixtures/`` instead, because they need
a real ``__init__.py`` module chain or a metric catalogue.
"""

from textwrap import dedent

#: rule id -> (synthetic path, bad source, good source)
INLINE_CORPUS = {
    "RPR111": (
        "src/repro/fake/module.py",
        dedent(
            """
            def check(value):
                if value < 0:
                    raise ValueError(f"bad value {value}")
            """
        ),
        dedent(
            """
            from repro.errors import ValidationError

            def check(value):
                if value < 0:
                    raise ValidationError(f"bad value {value}")

            def stub():
                raise NotImplementedError

            def convert(text):
                # argparse's callback contract: dotted, so not builtin.
                raise argparse.ArgumentTypeError(text)

            def reraise(exc):
                try:
                    risky()
                except ReproError:
                    raise
            """
        ),
    ),
    "RPR112": (
        "src/repro/fake/module.py",
        dedent(
            """
            def swallow(work):
                try:
                    work()
                except:
                    pass
            """
        ),
        dedent(
            """
            from repro.errors import ReproError

            def contain(work):
                try:
                    work()
                except ReproError:
                    pass
            """
        ),
    ),
    "RPR141": (
        "src/repro/fake/module.py",
        dedent(
            """
            def report(rows):
                for row in rows:
                    print(row)
            """
        ),
        dedent(
            """
            def report(rows):
                return "\\n".join(str(row) for row in rows)
            """
        ),
    ),
    "RPR142": (
        "src/repro/fake/module.py",
        dedent(
            """
            def collect(item, into=[]):
                into.append(item)
                return into

            def index(key, table={}):
                return table.setdefault(key, len(table))
            """
        ),
        dedent(
            """
            def collect(item, into=None):
                into = [] if into is None else into
                into.append(item)
                return into

            def window(bounds=(0, 1)):
                return bounds
            """
        ),
    ),
    "RPR143": (
        "src/repro/fake/module.py",
        dedent(
            """
            def install(layout):
                assert layout.columns > 0, "layout collapsed"
                return layout
            """
        ),
        dedent(
            """
            from repro.errors import InvariantViolation

            def install(layout):
                if layout.columns <= 0:
                    raise InvariantViolation("layout collapsed")
                return layout
            """
        ),
    ),
}

#: Non-library paths where RPR141/RPR143 must stay silent on the same
#: source that fails above.
EXEMPT_PATHS = (
    "src/repro/cli.py",
    "scripts/make_figures.py",
    "benchmarks/bench_hotpath.py",
    "tests/sim/test_campaign.py",
)
