"""Units for the deep tier's call-graph builder and effect closure."""

import ast

from repro.lint import effects as fx
from repro.lint.callgraph import ModuleSummary, link, summarize_module


def summarize(module, source, path=None):
    path = path or module.replace(".", "/") + ".py"
    return summarize_module(path, source, module, ast.parse(source))


class TestResolution:
    def test_cross_module_project_call_becomes_an_edge(self):
        a = summarize(
            "repro.a",
            "from repro import b\n\ndef caller():\n    return b.helper()\n",
        )
        b = summarize("repro.b", "def helper():\n    return 1\n")
        linked = link([a, b])
        callees = {c for c, _l, _c in linked.edges.get("repro.a.caller", ())}
        assert "repro.b.helper" in callees

    def test_from_import_of_function(self):
        a = summarize(
            "repro.a",
            "from repro.b import helper\n\ndef caller():\n"
            "    return helper()\n",
        )
        b = summarize("repro.b", "def helper():\n    return 1\n")
        linked = link([a, b])
        callees = {c for c, _l, _c in linked.edges.get("repro.a.caller", ())}
        assert "repro.b.helper" in callees

    def test_method_resolution_through_self(self):
        mod = summarize(
            "repro.m",
            "class Box:\n"
            "    def outer(self):\n"
            "        return self._inner()\n"
            "    def _inner(self):\n"
            "        return 1\n",
        )
        linked = link([mod])
        callees = {
            c for c, _l, _c in linked.edges.get("repro.m.Box.outer", ())
        }
        assert "repro.m.Box._inner" in callees

    def test_reexport_chased_through_package_init(self):
        init = summarize(
            "repro.pkg",
            "from repro.pkg.impl import helper\n",
            path="repro/pkg/__init__.py",
        )
        impl = summarize("repro.pkg.impl", "def helper():\n    return 1\n")
        caller = summarize(
            "repro.user",
            "from repro.pkg import helper\n\ndef go():\n"
            "    return helper()\n",
        )
        linked = link([init, impl, caller])
        callees = {c for c, _l, _c in linked.edges.get("repro.user.go", ())}
        assert "repro.pkg.impl.helper" in callees

    def test_dynamic_callee_lands_in_the_unresolved_bucket(self):
        mod = summarize(
            "repro.m",
            "def go(fn):\n    return fn()\n",
        )
        linked = link([mod])
        reasons = {entry["reason"] for entry in linked.unresolved}
        assert "dynamic-callee" in reasons

    def test_unmatched_project_name_is_reported_not_guessed(self):
        mod = summarize(
            "repro.m",
            "from repro import ghost\n\ndef go():\n"
            "    return ghost.missing()\n",
        )
        linked = link([mod])
        assert any(
            entry["reason"] == "unmatched-project-name"
            for entry in linked.unresolved
        )
        assert not linked.edges.get("repro.m.go")


class TestEffects:
    def test_direct_wall_clock_effect(self):
        mod = summarize(
            "repro.m", "import time\n\ndef now():\n    return time.time()\n"
        )
        linked = link([mod])
        assert fx.WALL_CLOCK in linked.closure["repro.m.now"]

    def test_effect_propagates_two_levels(self):
        mod = summarize(
            "repro.m",
            "import time\n\n"
            "def top():\n    return mid()\n\n"
            "def mid():\n    return leaf()\n\n"
            "def leaf():\n    return time.time()\n",
        )
        linked = link([mod])
        assert fx.WALL_CLOCK in linked.closure["repro.m.top"]
        chain = fx.origin_chain(linked.closure, "repro.m.top", fx.WALL_CLOCK)
        assert chain[-1] == "time.time()"
        assert any("leaf" in hop for hop in chain)

    def test_measurement_plane_barrier_blocks_determinism_taint(self):
        telem = summarize(
            "repro.obs.telemetry",
            "import time\n\ndef stamp():\n    return time.time()\n",
        )
        user = summarize(
            "repro.sim.user",
            "from repro.obs import telemetry\n\ndef go():\n"
            "    return telemetry.stamp()\n",
        )
        linked = link([telem, user])
        assert fx.WALL_CLOCK in linked.closure["repro.obs.telemetry.stamp"]
        assert fx.WALL_CLOCK not in linked.closure.get(
            "repro.sim.user.go", {}
        )

    def test_fsync_and_raise_effects_recorded(self):
        mod = summarize(
            "repro.m",
            "import os\n"
            "from repro.errors import StoreIntegrityError\n\n"
            "def commit(fd):\n"
            "    os.fsync(fd)\n"
            "    raise StoreIntegrityError('x')\n",
        )
        linked = link([mod])
        closure = linked.closure["repro.m.commit"]
        assert fx.FSYNC in closure
        assert fx.raise_effect("StoreIntegrityError") in closure

    def test_seeded_rng_is_not_an_effect(self):
        mod = summarize(
            "repro.m",
            "import random\n\ndef draw(seed):\n"
            "    return random.Random(seed).random()\n",
        )
        linked = link([mod])
        assert fx.UNSEEDED_RNG not in linked.closure.get("repro.m.draw", {})


class TestSummaryRoundTrip:
    def test_to_dict_from_dict_links_identically(self):
        source = (
            "import time\n\n"
            "def top():\n    return leaf()\n\n"
            "def leaf():\n    return time.time()\n"
        )
        fresh = summarize("repro.m", source)
        thawed = ModuleSummary.from_dict(fresh.to_dict())
        for summary in (fresh, thawed):
            linked = link([summary])
            assert fx.WALL_CLOCK in linked.closure["repro.m.top"]
        assert fresh.to_dict() == thawed.to_dict()
