"""Every rule proves itself against its fixture corpus.

Two corpora: inline sources for the package-agnostic rules (each bad
snippet fires exactly its rule; each good sibling is silent), and the
on-disk ``fixtures/`` package tree for the module-scoped rules, linted
through the real ``run_lint`` path discovery so module-name derivation
is exercised too.
"""

import os

import pytest

from repro.lint import lint_source, run_lint

from tests.lint.corpus import EXEMPT_PATHS, INLINE_CORPUS

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


@pytest.mark.parametrize("rule_id", sorted(INLINE_CORPUS))
class TestInlineCorpus:
    def test_bad_source_fires_only_its_rule(self, rule_id):
        path, bad, _good = INLINE_CORPUS[rule_id]
        findings = lint_source(bad, path=path)
        assert findings, f"{rule_id} fixture produced no findings"
        assert {f.rule_id for f in findings} == {rule_id}

    def test_good_source_is_clean(self, rule_id):
        path, _bad, good = INLINE_CORPUS[rule_id]
        assert lint_source(good, path=path) == []


@pytest.mark.parametrize("path", EXEMPT_PATHS)
@pytest.mark.parametrize("rule_id", ["RPR141", "RPR143"])
def test_hygiene_rules_exempt_non_library_paths(rule_id, path):
    _path, bad, _good = INLINE_CORPUS[rule_id]
    assert lint_source(bad, path=path) == []


class TestFixtureTree:
    """The on-disk corpus, linted exactly like a user would."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_lint([FIXTURES])

    def test_expected_findings(self, report):
        by_file = {}
        for finding in report.findings:
            key = os.path.basename(finding.path)
            by_file.setdefault(key, []).append(finding.rule_id)
        assert by_file == {
            "wall_clock_bad.py": ["RPR101", "RPR101"],
            "unseeded_bad.py": ["RPR102", "RPR102"],
            "gate_bad.py": ["RPR122"],
            "scalar_bad.py": ["RPR121"],
        }

    def test_unseeded_random_draw_is_flagged(self, report):
        """Acceptance: random.random() on a sim path must be caught."""
        hits = [
            f
            for f in report.findings
            if f.rule_id == "RPR102" and "random.random" in f.message
        ]
        assert len(hits) == 1
        assert hits[0].path.endswith(
            os.path.join("repro", "sim", "unseeded_bad.py")
        )

    def test_ungated_fast_path_is_flagged(self, report):
        """Acceptance: a process_batch override must name its gate."""
        (hit,) = [f for f in report.findings if f.rule_id == "RPR122"]
        assert "engine_fast_ok" in hit.message
        assert hit.path.endswith(os.path.join("repro", "core", "gate_bad.py"))

    def test_ok_files_are_clean(self, report):
        flagged = {os.path.basename(f.path) for f in report.findings}
        assert not any(name.endswith("_ok.py") for name in flagged)

    def test_module_scoping_respected(self, report):
        # The same wall-clock source outside the determinism packages
        # is legal: module=None puts it out of scope.
        with open(
            os.path.join(FIXTURES, "repro", "sim", "wall_clock_bad.py"),
            encoding="utf-8",
        ) as handle:
            source = handle.read()
        assert lint_source(source, path="src/elsewhere/module.py") == []
