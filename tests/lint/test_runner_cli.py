"""File discovery, module naming, rule selection, and the CLI surface.

Includes the acceptance pin: the shipped tree lints clean — exit 0 with
no baseline — so every rule's policy is enforced, not aspirational.
"""

import json
import os

import pytest

from repro.cli import main
from repro.errors import LintConfigError
from repro.lint import discover_files, module_name_for, run_lint

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
DEEP_FIXTURES = os.path.join(FIXTURES, "deep")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


class TestDiscovery:
    def test_walks_directories_and_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "a.py").write_text(
            "x = 1\n", encoding="utf-8"
        )
        (tmp_path / "pkg" / ".hidden").mkdir()
        (tmp_path / "pkg" / ".hidden" / "b.py").write_text(
            "x = 1\n", encoding="utf-8"
        )
        (tmp_path / "pkg" / "notes.txt").write_text("nope", encoding="utf-8")
        files = discover_files([str(tmp_path)])
        assert files == [str(tmp_path / "pkg" / "a.py")]

    def test_deduplicates_overlapping_paths(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n", encoding="utf-8")
        files = discover_files([str(tmp_path), str(target)])
        assert files == [str(target)]

    def test_missing_path_is_config_error(self):
        with pytest.raises(LintConfigError):
            discover_files(["definitely/not/a/path"])

    def test_lint_needs_paths(self):
        with pytest.raises(LintConfigError):
            run_lint([])


class TestModuleNames:
    def test_package_chain(self):
        path = os.path.join(FIXTURES, "repro", "sim", "unseeded_bad.py")
        assert module_name_for(path) == "repro.sim.unseeded_bad"

    def test_init_names_the_package(self):
        path = os.path.join(FIXTURES, "repro", "sim", "__init__.py")
        assert module_name_for(path) == "repro.sim"

    def test_outside_any_package(self, tmp_path):
        target = tmp_path / "loose.py"
        target.write_text("x = 1\n", encoding="utf-8")
        assert module_name_for(str(target)) is None


class TestSelection:
    def test_select_narrows_the_run(self):
        report = run_lint([FIXTURES], select=["RPR102"])
        assert {f.rule_id for f in report.findings} == {"RPR102"}
        assert report.rules_run == ("RPR102",)

    def test_ignore_subtracts(self):
        report = run_lint([FIXTURES], ignore=["RPR101", "RPR102"])
        assert {f.rule_id for f in report.findings} == {"RPR121", "RPR122"}

    def test_unknown_id_rejected(self):
        with pytest.raises(LintConfigError):
            run_lint([FIXTURES], select=["RPR777"])

    def test_ids_are_case_insensitive(self):
        report = run_lint([FIXTURES], select=["rpr102"])
        assert {f.rule_id for f in report.findings} == {"RPR102"}

    def test_provided_id_selectable(self):
        # RPR132 is reported by the RPR131 rule instance (also_provides);
        # selecting it alone must still work.
        report = run_lint([FIXTURES], select=["RPR132"])
        assert report.rules_run == ("RPR132",)
        assert report.ok  # fixtures declare no METRIC_NAMES


class TestCli:
    def test_dirty_tree_exits_1(self, capsys):
        assert main(["lint", FIXTURES]) == 1
        out = capsys.readouterr().out
        assert "RPR102" in out and "finding(s)" in out

    def test_shipped_tree_lints_clean(self, capsys):
        """Acceptance: `repro-8t lint src/repro` exits 0, no baseline."""
        assert main(["lint", SRC_REPRO]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert main(["lint", FIXTURES, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is False
        rules = {finding["rule"] for finding in payload["findings"]}
        assert {"RPR101", "RPR102", "RPR121", "RPR122"} <= rules

    def test_baseline_workflow(self, tmp_path, capsys):
        baseline = str(tmp_path / "lint-baseline.json")
        assert main(["lint", FIXTURES, "--write-baseline", baseline]) == 0
        assert os.path.isfile(baseline)
        assert main(["lint", FIXTURES, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_select_flag(self, capsys):
        assert main(["lint", FIXTURES, "--select", "RPR121"]) == 1
        out = capsys.readouterr().out
        assert "RPR121" in out and "RPR102" not in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR101", "RPR111", "RPR121", "RPR131", "RPR141"):
            assert rule_id in out

    def test_unknown_rule_is_config_exit(self):
        assert main(["lint", FIXTURES, "--select", "RPR777"]) == 2


class TestDeepCli:
    def test_deep_finds_rpr2xx(self, capsys):
        case = os.path.join(DEEP_FIXTURES, "rpr202")
        assert main(["lint", case, "--deep", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "RPR202" in out and "deep:" in out

    def test_without_deep_the_same_tree_is_clean(self, capsys):
        case = os.path.join(DEEP_FIXTURES, "rpr202")
        assert main(["lint", case]) == 0
        assert "deep:" not in capsys.readouterr().out

    def test_shipped_tree_is_deep_clean(self, capsys):
        """Acceptance: `repro-8t lint src/repro --deep` exits 0 with an
        empty baseline on the shipped tree."""
        assert main(["lint", SRC_REPRO, "--deep", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "ok:" in out and "deep:" in out

    def test_selecting_deep_rule_without_deep_is_config_exit(self):
        assert main(["lint", FIXTURES, "--select", "RPR201"]) == 2

    def test_list_rules_shows_the_deep_tier(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR201", "RPR202", "RPR203", "RPR204", "RPR205"):
            assert rule_id in out
        assert "deep" in out

    def test_cache_path_flag_writes_the_cache(self, tmp_path, capsys):
        case = os.path.join(DEEP_FIXTURES, "rpr204")
        cache = str(tmp_path / "c" / "summaries.json")
        main(["lint", case, "--deep", "--cache-path", cache])
        assert os.path.isfile(cache)

    def test_timing_table_goes_to_stderr(self, tmp_path, capsys):
        case = os.path.join(DEEP_FIXTURES, "rpr201")
        assert main(["lint", case, "--deep", "--no-cache", "--timing"]) == 1
        captured = capsys.readouterr()
        assert "rule timing:" in captured.err
        assert "deep:link" in captured.err
        assert "rule timing:" not in captured.out

    def test_timing_out_writes_machine_readable_json(self, tmp_path, capsys):
        case = os.path.join(DEEP_FIXTURES, "rpr201")
        out_path = str(tmp_path / "lint-timing.json")
        main(["lint", case, "--deep", "--no-cache", "--timing-out", out_path])
        with open(out_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert "deep:summarize" in payload["timings"]
        assert any(key.startswith("RPR2") for key in payload["timings"])
        assert payload["deep"]["files"] > 0

    def test_deep_json_format_carries_stats(self, capsys):
        case = os.path.join(DEEP_FIXTURES, "rpr203")
        main(["lint", case, "--deep", "--no-cache", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["deep"]["functions"] > 0
        assert {f["rule"] for f in payload["findings"]} == {"RPR203"}


class TestGithubFormat:
    def test_annotations_one_per_finding(self, capsys):
        case = os.path.join(DEEP_FIXTURES, "rpr205")
        code = main(["lint", case, "--deep", "--no-cache",
                     "--format", "github"])
        assert code == 1
        out = capsys.readouterr().out
        annotations = [
            line for line in out.splitlines() if line.startswith("::error ")
        ]
        assert len(annotations) == 1
        (annotation,) = annotations
        assert "file=" in annotation and "line=" in annotation
        assert "title=RPR205" in annotation

    def test_escaping_of_newlines_and_properties(self):
        from repro.lint.finding import Finding, Severity
        from repro.lint.runner import LintReport

        finding = Finding(
            rule_id="RPR101",
            severity=Severity.ERROR,
            path="src/a,b.py",
            line=3,
            column=1,
            message="bad%thing\nsecond line",
            snippet="x",
        )
        report = LintReport(
            findings=[finding], files_checked=1, suppressed=0,
            baselined=0, rules_run=("RPR101",),
        )
        rendered = report.render_github()
        assert "%25" in rendered      # % in data
        assert "%0A" in rendered      # newline in data
        assert "a%2Cb.py" in rendered  # comma in the file property
        assert "\n" not in rendered.splitlines()[0]

    def test_clean_tree_emits_no_annotations(self, capsys):
        case = os.path.join(DEEP_FIXTURES, "rpr202")
        assert main(["lint", case, "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out
