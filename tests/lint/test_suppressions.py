"""``# repro-lint: disable=`` comment handling."""

from repro.lint import lint_source, run_lint
from repro.lint.suppressions import SuppressionIndex

BAD_RAISE = 'raise ValueError("boom")'


def test_same_line_suppression_silences_the_rule():
    source = f"{BAD_RAISE}  # repro-lint: disable=RPR111\n"
    assert lint_source(source, path="src/repro/m.py") == []


def test_unsuppressed_line_still_fires():
    source = f"{BAD_RAISE}\n"
    findings = lint_source(source, path="src/repro/m.py")
    assert [f.rule_id for f in findings] == ["RPR111"]


def test_wrong_rule_id_does_not_suppress():
    source = f"{BAD_RAISE}  # repro-lint: disable=RPR141\n"
    findings = lint_source(source, path="src/repro/m.py")
    assert [f.rule_id for f in findings] == ["RPR111"]


def test_disable_all():
    source = f"{BAD_RAISE}  # repro-lint: disable=all\n"
    assert lint_source(source, path="src/repro/m.py") == []


def test_comma_separated_ids_and_case():
    source = (
        "def f(x=[]):  # repro-lint: disable=rpr142, RPR999\n"
        "    return x\n"
    )
    assert lint_source(source, path="src/repro/m.py") == []


def test_suppression_is_line_scoped():
    source = (
        "# repro-lint: disable=RPR111\n"
        f"{BAD_RAISE}\n"
    )
    findings = lint_source(source, path="src/repro/m.py")
    assert [f.rule_id for f in findings] == ["RPR111"]


def test_suppressed_count_surfaces_in_report(tmp_path):
    target = tmp_path / "m.py"
    target.write_text(
        f"{BAD_RAISE}  # repro-lint: disable=RPR111\n",
        encoding="utf-8",
    )
    report = run_lint([str(target)])
    assert report.ok
    assert report.suppressed == 1
    assert "suppressed" in report.summary()


class TestStatementSpans:
    """A suppression on the first physical line of a multi-line
    statement covers every line the statement spans (satellite: the
    comment lands where the author writes it — on the decorator of a
    decorated def, on the opening line of a parenthesized call)."""

    def test_parenthesized_call_suppressed_from_opening_line(self):
        source = (
            "import random\n"
            "x = (  # repro-lint: disable=RPR102\n"
            "    random.random()\n"
            ")\n"
        )
        assert lint_source(source, path="m.py", module="repro.sim.m") == []

    def test_parenthesized_call_unsuppressed_still_fires(self):
        source = (
            "import random\n"
            "x = (\n"
            "    random.random()\n"
            ")\n"
        )
        findings = lint_source(source, path="m.py", module="repro.sim.m")
        assert [f.rule_id for f in findings] == ["RPR102"]

    def test_decorated_def_suppressed_from_decorator_line(self):
        source = (
            "@staticmethod  # repro-lint: disable=RPR142\n"
            "def f(x=[]):\n"
            "    return x\n"
        )
        assert lint_source(source, path="src/repro/m.py") == []

    def test_def_line_comment_still_works_under_decorator(self):
        source = (
            "@staticmethod\n"
            "def f(x=[]):  # repro-lint: disable=RPR142\n"
            "    return x\n"
        )
        assert lint_source(source, path="src/repro/m.py") == []

    def test_sibling_statement_not_covered(self):
        # The span is the statement, not the block: a suppression on
        # one statement never bleeds into the next.
        source = (
            "import random\n"
            "x = (  # repro-lint: disable=RPR102\n"
            "    random.random()\n"
            ")\n"
            "y = random.random()\n"
        )
        findings = lint_source(source, path="m.py", module="repro.sim.m")
        assert [(f.rule_id, f.line) for f in findings] == [("RPR102", 5)]

    def test_anchor_map_shape(self):
        import ast

        from repro.lint.suppressions import statement_anchor_map

        tree = ast.parse(
            "@deco(\n"     # 1
            "    1,\n"      # 2
            ")\n"           # 3
            "def f():\n"    # 4
            "    pass\n"    # 5
        )
        anchors = statement_anchor_map(tree)
        # Every spanned line leads back to the decorator's first line.
        assert anchors[4][0] == 1
        assert anchors[2][0] == 1


def test_index_parsing():
    index = SuppressionIndex.from_lines(
        [
            "x = 1",
            "y = 2  # repro-lint: disable=RPR101,RPR102",
            "z = 3  # repro-lint: disable=all",
        ]
    )
    assert not index.is_suppressed("RPR101", 1)
    assert index.is_suppressed("RPR101", 2)
    assert index.is_suppressed("rpr102", 2)
    assert not index.is_suppressed("RPR103", 2)
    assert index.is_suppressed("RPR103", 3)
    assert len(index) == 2
