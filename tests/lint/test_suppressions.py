"""``# repro-lint: disable=`` comment handling."""

from repro.lint import lint_source, run_lint
from repro.lint.suppressions import SuppressionIndex

BAD_RAISE = 'raise ValueError("boom")'


def test_same_line_suppression_silences_the_rule():
    source = f"{BAD_RAISE}  # repro-lint: disable=RPR111\n"
    assert lint_source(source, path="src/repro/m.py") == []


def test_unsuppressed_line_still_fires():
    source = f"{BAD_RAISE}\n"
    findings = lint_source(source, path="src/repro/m.py")
    assert [f.rule_id for f in findings] == ["RPR111"]


def test_wrong_rule_id_does_not_suppress():
    source = f"{BAD_RAISE}  # repro-lint: disable=RPR141\n"
    findings = lint_source(source, path="src/repro/m.py")
    assert [f.rule_id for f in findings] == ["RPR111"]


def test_disable_all():
    source = f"{BAD_RAISE}  # repro-lint: disable=all\n"
    assert lint_source(source, path="src/repro/m.py") == []


def test_comma_separated_ids_and_case():
    source = (
        "def f(x=[]):  # repro-lint: disable=rpr142, RPR999\n"
        "    return x\n"
    )
    assert lint_source(source, path="src/repro/m.py") == []


def test_suppression_is_line_scoped():
    source = (
        "# repro-lint: disable=RPR111\n"
        f"{BAD_RAISE}\n"
    )
    findings = lint_source(source, path="src/repro/m.py")
    assert [f.rule_id for f in findings] == ["RPR111"]


def test_suppressed_count_surfaces_in_report(tmp_path):
    target = tmp_path / "m.py"
    target.write_text(
        f"{BAD_RAISE}  # repro-lint: disable=RPR111\n",
        encoding="utf-8",
    )
    report = run_lint([str(target)])
    assert report.ok
    assert report.suppressed == 1
    assert "suppressed" in report.summary()


def test_index_parsing():
    index = SuppressionIndex.from_lines(
        [
            "x = 1",
            "y = 2  # repro-lint: disable=RPR101,RPR102",
            "z = 3  # repro-lint: disable=all",
        ]
    )
    assert not index.is_suppressed("RPR101", 1)
    assert index.is_suppressed("RPR101", 2)
    assert index.is_suppressed("rpr102", 2)
    assert not index.is_suppressed("RPR103", 2)
    assert index.is_suppressed("RPR103", 3)
    assert len(index) == 2
