"""The per-file summary cache: hit/miss accounting, invalidation, and
the warm-run cost envelope."""

import json
import os
import shutil
import time

from repro.lint import run_lint

HERE = os.path.dirname(os.path.abspath(__file__))
DEEP_FIXTURES = os.path.join(HERE, "fixtures", "deep")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def run_case(case_dir, cache_path, **kwargs):
    return run_lint([case_dir], deep=True, cache_path=cache_path, **kwargs)


class TestCacheAccounting:
    def test_cold_run_misses_everything_warm_run_hits_everything(
        self, tmp_path
    ):
        case = os.path.join(DEEP_FIXTURES, "rpr202")
        cache = str(tmp_path / "cache" / "summaries.json")
        cold = run_case(case, cache)
        assert cold.deep_stats.cache_hits == 0
        assert cold.deep_stats.cache_misses == cold.deep_stats.files > 0
        warm = run_case(case, cache)
        # Acceptance: a second consecutive run re-analyses zero files.
        assert warm.deep_stats.cache_misses == 0
        assert warm.deep_stats.cache_hits == warm.deep_stats.files
        assert [f.render() for f in warm.findings] == [
            f.render() for f in cold.findings
        ]

    def test_changed_file_is_the_only_miss(self, tmp_path):
        target = tmp_path / "case"
        shutil.copytree(os.path.join(DEEP_FIXTURES, "rpr202"), target)
        cache = str(tmp_path / "summaries.json")
        run_case(str(target), cache)
        bad = target / "repro" / "store" / "writer_bad.py"
        bad.write_text(
            bad.read_text(encoding="utf-8") + "\n\nX = 1\n",
            encoding="utf-8",
        )
        second = run_case(str(target), cache)
        assert second.deep_stats.cache_misses == 1
        assert second.deep_stats.cache_hits == second.deep_stats.files - 1

    def test_corrupt_cache_is_rebuilt_not_fatal(self, tmp_path):
        case = os.path.join(DEEP_FIXTURES, "rpr203")
        cache = str(tmp_path / "summaries.json")
        run_case(case, cache)
        with open(cache, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        report = run_case(case, cache)
        assert report.deep_stats.cache_misses == report.deep_stats.files
        assert {f.rule_id for f in report.findings} == {"RPR203"}

    def test_suppressions_survive_cache_hits(self, tmp_path):
        """Anchors ride in the summaries, so a warm run still honours
        in-file suppression comments without re-parsing."""
        target = tmp_path / "case"
        shutil.copytree(os.path.join(DEEP_FIXTURES, "rpr204"), target)
        leaky = target / "repro" / "store" / "leaky.py"
        source = leaky.read_text(encoding="utf-8")
        leaky.write_text(
            source.replace(
                '    handle = open(path, "r", encoding="utf-8")\n'
                "    return handle.readline()  # RPR204",
                '    handle = open(path, "r", encoding="utf-8")'
                "  # repro-lint: disable=RPR204\n"
                "    return handle.readline()  # RPR204",
                1,
            ),
            encoding="utf-8",
        )
        cache = str(tmp_path / "summaries.json")
        cold = run_case(str(target), cache)
        warm = run_case(str(target), cache)
        assert warm.deep_stats.cache_misses == 0
        for report in (cold, warm):
            assert report.ok
            assert report.suppressed == 1

    def test_cache_file_is_versioned_json(self, tmp_path):
        case = os.path.join(DEEP_FIXTURES, "rpr205")
        cache = str(tmp_path / "summaries.json")
        run_case(case, cache)
        with open(cache, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert "version" in payload and "code_version" in payload
        assert payload["files"]


class TestWarmRuntime:
    def test_full_tree_warm_run_stays_inside_the_ci_budget(self, tmp_path):
        """Acceptance: with a warm cache the deep pass re-analyses zero
        files and the whole run (read + digest + link + rules) stays
        well under the CI budget."""
        cache = str(tmp_path / "summaries.json")
        run_lint([SRC_REPRO], deep=True, cache_path=cache)
        start = time.perf_counter()
        warm = run_lint([SRC_REPRO], deep=True, cache_path=cache)
        elapsed = time.perf_counter() - start
        assert warm.deep_stats.cache_misses == 0
        assert warm.deep_stats.cache_hits == warm.deep_stats.files
        assert elapsed < 10.0, f"warm deep lint took {elapsed:.2f}s"
