"""RPR131/RPR132: the metric-name cross-reference, both directions."""

import textwrap

from repro.lint import lint_source, run_lint

CATALOGUE = textwrap.dedent(
    """
    METRIC_NAMES = {
        "ctrl.*.hits": "row hits per controller",
        "span.*.calls": "profiled call count",
        "warning.clock_skew": "wall-clock disagreement",
    }
    """
)


def _make_tree(tmp_path, emitter_source, catalogue=CATALOGUE):
    """A miniature repro package with an obs catalogue and one emitter."""
    pkg = tmp_path / "repro"
    (pkg / "obs").mkdir(parents=True)
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "obs" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "obs" / "names.py").write_text(catalogue, encoding="utf-8")
    (pkg / "emit.py").write_text(
        textwrap.dedent(emitter_source), encoding="utf-8"
    )
    return str(pkg)


def test_declared_emissions_pass(tmp_path):
    report = run_lint(
        [
            _make_tree(
                tmp_path,
                """
                def attach(registry, name, telem):
                    registry.inc(f"ctrl.{name}.hits")
                    telem.warn("clock_skew")

                def span(registry, label):
                    registry.counter("span." + label + ".calls")
                """,
            )
        ],
        select=["RPR131"],
    )
    assert report.ok


def test_undeclared_emission_flagged(tmp_path):
    report = run_lint(
        [
            _make_tree(
                tmp_path,
                """
                def attach(registry):
                    registry.inc("ctrl.wg.bogus_counter")
                """,
            )
        ],
        select=["RPR131"],
    )
    assert [f.rule_id for f in report.findings] == ["RPR131"]
    assert "ctrl.wg.bogus_counter" in report.findings[0].message


def test_unemitted_declaration_flagged_as_warning(tmp_path):
    report = run_lint(
        [
            _make_tree(
                tmp_path,
                """
                def attach(registry, name, telem):
                    registry.inc(f"ctrl.{name}.hits")
                    telem.warn("clock_skew")
                """,
            )
        ],
        select=["RPR132"],
    )
    assert [f.rule_id for f in report.findings] == ["RPR132"]
    finding = report.findings[0]
    assert "span.*.calls" in finding.message
    assert finding.severity.value == "warning"


def test_dynamic_name_passthrough_is_skipped(tmp_path):
    # A bare-variable name is statically unresolvable: the helper body
    # itself must not be flagged (its call sites are judged instead).
    report = run_lint(
        [
            _make_tree(
                tmp_path,
                """
                def emit(registry, name):
                    registry.inc(name)
                """,
            )
        ],
        select=["RPR131"],
    )
    assert report.ok


def test_unrelated_observe_methods_out_of_scope(tmp_path):
    report = run_lint(
        [
            _make_tree(
                tmp_path,
                """
                def feed(stats):
                    stats.observe("not.a.metric")
                """,
            )
        ],
        select=["RPR131"],
    )
    assert report.ok


def test_silent_without_any_catalogue():
    # Linting a lone snippet with no METRIC_NAMES anywhere in sight must
    # not flag every emission.
    # (The path must not sit under a real ``repro`` package dir, or the
    # rule's upward catalogue discovery would find the shipped one.)
    findings = lint_source(
        "def f(registry):\n    registry.inc('ctrl.wg.bogus')\n",
        path="elsewhere/emit.py",
    )
    assert findings == []


def test_helper_prefixes(tmp_path):
    # _emit_point prefixes ctrl.*. and warn prefixes warning.; a name
    # that only matches WITH the prefix proves the prefix was applied.
    report = run_lint(
        [
            _make_tree(
                tmp_path,
                """
                class Controller:
                    def tick(self):
                        self._emit_point("hits")

                def alarm(telemetry):
                    telemetry.warn("hits")
                """,
            )
        ],
        select=["RPR131"],
    )
    # _emit_point("hits") -> ctrl.*.hits: declared.  warn("hits") ->
    # warning.hits: NOT declared.
    assert [f.rule_id for f in report.findings] == ["RPR131"]
    assert "warning.hits" in report.findings[0].message
