"""The RPR2xx rules prove themselves against the deep fixture corpora.

Each case directory under ``fixtures/deep/`` is its own miniature
``repro`` tree, linted separately so module names never collide; the
bad file fires exactly its rule and every ok sibling stays silent.
"""

import os
import shutil

import pytest

from repro.lint import run_lint

HERE = os.path.dirname(os.path.abspath(__file__))
DEEP_FIXTURES = os.path.join(HERE, "fixtures", "deep")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")

#: case dir -> (rule id, basename of the one file that fires)
CASES = {
    "rpr201": ("RPR201", "driver.py"),
    "rpr202": ("RPR202", "writer_bad.py"),
    "rpr203": ("RPR203", "store.py"),
    "rpr204": ("RPR204", "leaky.py"),
    "rpr205": ("RPR205", "ladder.py"),
}


def deep_case(case):
    return run_lint(
        [os.path.join(DEEP_FIXTURES, case)], deep=True, cache_path=None
    )


@pytest.mark.parametrize("case", sorted(CASES))
class TestFixtureCorpora:
    def test_bad_file_fires_exactly_its_rule(self, case):
        rule_id, filename = CASES[case]
        report = deep_case(case)
        hits = [
            (f.rule_id, os.path.basename(f.path)) for f in report.findings
        ]
        assert hits == [(rule_id, filename)]

    def test_fixture_is_shallow_clean(self, case):
        report = run_lint([os.path.join(DEEP_FIXTURES, case)])
        assert report.ok, [f.render() for f in report.findings]


class TestWitnessQuality:
    def test_rpr201_reports_the_full_helper_chain(self):
        (finding,) = deep_case("rpr201").findings
        # Taint reached only through the two-deep chain:
        # driver -> stamped -> _with_clock -> _now -> time.time().
        for hop in ("stamped", "_with_clock", "_now", "time.time"):
            assert hop in finding.message
        assert finding.path.endswith(os.path.join("sim", "driver.py"))

    def test_rpr202_names_the_write_line(self):
        (finding,) = deep_case("rpr202").findings
        assert "os.fsync" in finding.message
        assert "write at line" in finding.message

    def test_rpr203_names_the_locked_witness(self):
        (finding,) = deep_case("rpr203").findings
        assert "_items" in finding.message
        assert "add()" in finding.message  # the under-lock witness site


class TestDeepSelection:
    def test_selecting_deep_rule_without_deep_is_config_error(self):
        from repro.errors import LintConfigError

        with pytest.raises(LintConfigError):
            run_lint([os.path.join(DEEP_FIXTURES, "rpr202")],
                     select=["RPR202"])

    def test_select_narrows_deep_run(self):
        report = run_lint(
            [DEEP_FIXTURES], deep=True, cache_path=None, select=["RPR202"]
        )
        assert {f.rule_id for f in report.findings} == {"RPR202"}

    def test_ignore_subtracts_deep_rule(self):
        report = run_lint(
            [os.path.join(DEEP_FIXTURES, "rpr204")],
            deep=True,
            cache_path=None,
            ignore=["RPR204"],
        )
        assert report.ok


class TestSuppressionAndBaseline:
    def test_deep_finding_is_suppressible(self, tmp_path):
        target = tmp_path / "case"
        shutil.copytree(os.path.join(DEEP_FIXTURES, "rpr202"), target)
        bad = target / "repro" / "store" / "writer_bad.py"
        source = bad.read_text(encoding="utf-8")
        bad.write_text(
            source.replace(
                "    os.replace(tmp, path)",
                "    os.replace(tmp, path)  # repro-lint: disable=RPR202",
            ),
            encoding="utf-8",
        )
        report = run_lint([str(target)], deep=True, cache_path=None)
        assert report.ok
        assert report.suppressed == 1

    def test_shallow_baseline_round_trips_under_deep(self, tmp_path):
        """Satellite: RPR1xx baselines stay valid when --deep is added."""
        from repro.lint.baseline import Baseline

        fixtures = os.path.join(HERE, "fixtures")
        shallow = run_lint([fixtures])
        baseline_path = str(tmp_path / "baseline.json")
        Baseline.from_findings(shallow.raw_findings).save(baseline_path)
        deep = run_lint(
            [fixtures],
            deep=True,
            cache_path=None,
            baseline_path=baseline_path,
        )
        # Every shallow finding is baselined away; only RPR2xx remain.
        assert deep.baselined == len(shallow.raw_findings)
        assert {f.rule_id for f in deep.findings} == set(
            rule for rule, _file in CASES.values()
        )


class TestShippedTree:
    def test_shipped_tree_is_deep_clean(self):
        """Acceptance: `lint --deep` exits clean with an empty baseline."""
        report = run_lint([SRC_REPRO], deep=True, cache_path=None)
        assert report.ok, [f.render() for f in report.findings]
        assert report.deep_stats is not None
        assert report.deep_stats.functions > 500
        assert report.deep_stats.edges > 500
