"""Baseline round-trip, count semantics, and malformed-file handling."""

import json

import pytest

from repro.errors import LintConfigError
from repro.lint import Baseline, lint_source, run_lint

BAD = 'raise ValueError("boom")\n'


def _findings(source=BAD, path="src/repro/m.py"):
    return lint_source(source, path=path)


def test_round_trip(tmp_path):
    findings = _findings()
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    assert baseline.save(str(path)) == 1
    loaded = Baseline.load(str(path))
    fresh, matched = loaded.filter(findings)
    assert fresh == [] and matched == 1


def test_line_shift_does_not_invalidate(tmp_path):
    baseline = Baseline.from_findings(_findings())
    shifted = _findings(source="\n\n\n" + BAD)
    fresh, matched = baseline.filter(shifted)
    assert fresh == [] and matched == 1


def test_new_occurrence_of_same_pattern_still_fails():
    baseline = Baseline.from_findings(_findings())
    doubled = _findings(source=BAD + BAD)
    fresh, matched = baseline.filter(doubled)
    assert matched == 1
    assert [f.rule_id for f in fresh] == ["RPR111"]


def test_different_snippet_is_fresh():
    baseline = Baseline.from_findings(_findings())
    other = _findings(source='raise ValueError("other boom")\n')
    fresh, matched = baseline.filter(other)
    assert matched == 0 and len(fresh) == 1


def test_run_lint_applies_baseline(tmp_path):
    target = tmp_path / "m.py"
    target.write_text(BAD, encoding="utf-8")
    dirty = run_lint([str(target)])
    assert not dirty.ok

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(dirty.raw_findings).save(str(baseline_path))
    clean = run_lint([str(target)], baseline_path=str(baseline_path))
    assert clean.ok
    assert clean.baselined == 1
    # raw_findings still carry the debt for --write-baseline refreshes.
    assert len(clean.raw_findings) == 1


def test_missing_baseline_file_is_empty(tmp_path):
    target = tmp_path / "m.py"
    target.write_text(BAD, encoding="utf-8")
    report = run_lint([str(target)], baseline_path=str(tmp_path / "nope.json"))
    assert not report.ok and report.baselined == 0


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all",
        json.dumps(["wrong", "shape"]),
        json.dumps({"version": 1}),
        json.dumps({"version": 99, "findings": []}),
        json.dumps({"version": 1, "findings": [{"rule": "RPR111"}]}),
    ],
)
def test_malformed_baseline_rejected(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload, encoding="utf-8")
    with pytest.raises(LintConfigError):
        Baseline.load(str(path))


def test_empty_baseline_is_goal_state(tmp_path):
    path = tmp_path / "baseline.json"
    assert Baseline.empty().save(str(path)) == 0
    loaded = Baseline.load(str(path))
    fresh, matched = loaded.filter(_findings())
    assert matched == 0 and len(fresh) == 1
