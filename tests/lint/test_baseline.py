"""Baseline round-trip, count semantics, and malformed-file handling."""

import json

import pytest

from repro.errors import LintConfigError
from repro.lint import Baseline, lint_source, run_lint

BAD = 'raise ValueError("boom")\n'


def _findings(source=BAD, path="src/repro/m.py"):
    return lint_source(source, path=path)


def test_round_trip(tmp_path):
    findings = _findings()
    baseline = Baseline.from_findings(findings)
    path = tmp_path / "baseline.json"
    assert baseline.save(str(path)) == 1
    loaded = Baseline.load(str(path))
    fresh, matched = loaded.filter(findings)
    assert fresh == [] and matched == 1


def test_line_shift_does_not_invalidate(tmp_path):
    baseline = Baseline.from_findings(_findings())
    shifted = _findings(source="\n\n\n" + BAD)
    fresh, matched = baseline.filter(shifted)
    assert fresh == [] and matched == 1


def test_new_occurrence_of_same_pattern_still_fails():
    baseline = Baseline.from_findings(_findings())
    doubled = _findings(source=BAD + BAD)
    fresh, matched = baseline.filter(doubled)
    assert matched == 1
    assert [f.rule_id for f in fresh] == ["RPR111"]


def test_different_snippet_is_fresh():
    baseline = Baseline.from_findings(_findings())
    other = _findings(source='raise ValueError("other boom")\n')
    fresh, matched = baseline.filter(other)
    assert matched == 0 and len(fresh) == 1


def test_run_lint_applies_baseline(tmp_path):
    target = tmp_path / "m.py"
    target.write_text(BAD, encoding="utf-8")
    dirty = run_lint([str(target)])
    assert not dirty.ok

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(dirty.raw_findings).save(str(baseline_path))
    clean = run_lint([str(target)], baseline_path=str(baseline_path))
    assert clean.ok
    assert clean.baselined == 1
    # raw_findings still carry the debt for --write-baseline refreshes.
    assert len(clean.raw_findings) == 1


def test_missing_baseline_file_is_empty(tmp_path):
    target = tmp_path / "m.py"
    target.write_text(BAD, encoding="utf-8")
    report = run_lint([str(target)], baseline_path=str(tmp_path / "nope.json"))
    assert not report.ok and report.baselined == 0


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all",
        json.dumps(["wrong", "shape"]),
        json.dumps({"version": 1}),
        json.dumps({"version": 99, "findings": []}),
        json.dumps({"version": 1, "findings": [{"rule": "RPR111"}]}),
    ],
)
def test_malformed_baseline_rejected(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload, encoding="utf-8")
    with pytest.raises(LintConfigError):
        Baseline.load(str(path))


def _baseline_payload(rule_id):
    return json.dumps(
        {
            "version": 1,
            "findings": [
                {"rule": rule_id, "path": "src/repro/m.py",
                 "snippet": "x = 1", "count": 1}
            ],
        }
    )


class TestForwardCompat:
    """A baseline naming a rule id this build has never heard of (a
    file written by a newer linter) is a classified config error, not
    a silent drop."""

    def test_unknown_rule_id_rejected_when_known_rules_given(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(_baseline_payload("RPR999"), encoding="utf-8")
        with pytest.raises(LintConfigError) as excinfo:
            Baseline.load(str(path), known_rules=frozenset({"RPR111"}))
        assert "RPR999" in str(excinfo.value)

    def test_known_rules_accepts_registered_and_provided_ids(self, tmp_path):
        from repro.lint.runner import known_rule_ids

        known = known_rule_ids()
        # Deep ids and also_provides ids are first-class baseline keys.
        for rule_id in ("RPR001", "RPR132", "RPR201", "RPR205"):
            assert rule_id in known
        path = tmp_path / "baseline.json"
        path.write_text(_baseline_payload("RPR205"), encoding="utf-8")
        assert len(Baseline.load(str(path), known_rules=known)) == 1

    def test_load_without_known_rules_stays_permissive(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(_baseline_payload("RPR999"), encoding="utf-8")
        assert len(Baseline.load(str(path))) == 1

    def test_run_lint_rejects_future_baseline(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n", encoding="utf-8")
        path = tmp_path / "baseline.json"
        path.write_text(_baseline_payload("RPR999"), encoding="utf-8")
        with pytest.raises(LintConfigError):
            run_lint([str(target)], baseline_path=str(path))


def test_empty_baseline_is_goal_state(tmp_path):
    path = tmp_path / "baseline.json"
    assert Baseline.empty().save(str(path)) == 0
    loaded = Baseline.load(str(path))
    fresh, matched = loaded.filter(_findings())
    assert matched == 0 and len(fresh) == 1
