"""Framework mechanics: registry validation, dispatch, parse errors."""

import ast

import pytest

from repro.errors import LintConfigError
from repro.lint import RULE_TYPES, Rule, lint_source, register_rule
from repro.lint.engine import RunContext
from repro.lint.finding import Severity


class CountingRule(Rule):
    """Counts dispatched nodes; proves the single-pass walk."""

    id = "RPR999"
    name = "counting"
    description = "test-only"

    def __init__(self):
        self.calls = 0
        self.names = 0
        self.started = 0
        self.finished_files = 0
        self.finished_run = 0

    def visit_Call(self, node, ctx):
        self.calls += 1

    def visit_Name(self, node, ctx):
        self.names += 1

    def start_file(self, ctx):
        self.started += 1

    def finish_file(self, ctx):
        self.finished_files += 1

    def finish_run(self, run):
        self.finished_run += 1


class TestRegistry:
    def test_malformed_id_rejected(self):
        with pytest.raises(LintConfigError):

            @register_rule
            class BadId(Rule):
                id = "XYZ1"
                name = "bad"
                description = "bad"

    def test_duplicate_id_rejected(self):
        taken = next(iter(RULE_TYPES))
        with pytest.raises(LintConfigError):

            @register_rule
            class Duplicate(Rule):
                id = taken
                name = "dupe"
                description = "dupe"

    def test_description_required(self):
        with pytest.raises(LintConfigError):

            @register_rule
            class NoDoc(Rule):
                id = "RPR998"
                name = "nodoc"
                description = ""

    def test_shipped_catalogue_is_wellformed(self):
        for rule_id, rule_type in RULE_TYPES.items():
            assert rule_id == rule_type.id
            assert rule_type.name and rule_type.description
            assert isinstance(rule_type.severity, Severity)


class TestDispatch:
    def test_visitors_fire_per_node_type(self):
        rule = CountingRule()
        source = "a = f(1)\nb = g(a)\nc = a\n"
        lint_source(source, rules=[rule])
        assert rule.calls == 2
        # Names: f, g, a (arg), a (rhs) and the three store targets.
        assert rule.names == ast.dump(ast.parse(source)).count("Name(")

    def test_lifecycle_hooks(self):
        rule = CountingRule()
        run = RunContext([rule])
        run.check_file("a.py", "x = 1\n", None)
        run.check_file("b.py", "y = 2\n", None)
        run.finish()
        assert rule.started == 2
        assert rule.finished_files == 2
        assert rule.finished_run == 1


class TestParseErrors:
    def test_syntax_error_becomes_rpr001(self):
        findings = lint_source("def broken(:\n", path="src/repro/x.py")
        assert len(findings) == 1
        assert findings[0].rule_id == "RPR001"
        assert findings[0].severity is Severity.ERROR
        assert "does not parse" in findings[0].message

    def test_rules_never_see_unparsable_files(self):
        rule = CountingRule()
        lint_source("def broken(:\n", rules=[rule])
        assert rule.calls == 0 and rule.started == 0


class TestFindingShape:
    def test_render_and_fingerprint(self):
        (finding,) = lint_source(
            "def f(x=[]):\n    return x\n", path="src/repro/m.py"
        )
        assert finding.rule_id == "RPR142"
        rendered = finding.render()
        assert rendered.startswith("src/repro/m.py:1:")
        assert "RPR142" in rendered
        fp = finding.fingerprint()
        assert fp == {
            "rule": "RPR142",
            "path": "src/repro/m.py",
            "snippet": "def f(x=[]):",
        }

    def test_findings_sorted_by_location(self):
        source = "def g(y={}):\n    return y\n\ndef f(x=[]):\n    return x\n"
        findings = lint_source(source, path="src/repro/m.py")
        assert [f.line for f in findings] == sorted(f.line for f in findings)
