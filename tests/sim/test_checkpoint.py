"""Unit tests for the checkpoint journal and serialisation layer."""

import dataclasses
import json

import pytest

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.errors import CheckpointError
from repro.sim.campaign import execute_row
from repro.sim.checkpoint import (
    FORMAT_NAME,
    FORMAT_VERSION,
    CheckpointJournal,
    CheckpointStore,
    as_store,
    comparison_fingerprint,
    config_fingerprint,
    deserialize_row,
    serialize_row,
)
from repro.sim.experiment import ExperimentConfig
from repro.workload import generate_trace, get_profile


def small_config(**overrides):
    defaults = dict(
        geometry=BASELINE_GEOMETRY,
        benchmarks=("bwaves", "mcf"),
        techniques=("rmw", "wg"),
        accesses_per_benchmark=1500,
        seed=11,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestFingerprints:
    def test_stable_across_calls(self):
        config = small_config()
        assert config_fingerprint(config) == config_fingerprint(small_config())

    def test_order_insensitive(self):
        one = small_config(benchmarks=("bwaves", "mcf"), techniques=("rmw", "wg"))
        two = small_config(benchmarks=("mcf", "bwaves"), techniques=("wg", "rmw"))
        assert config_fingerprint(one) == config_fingerprint(two)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"seed": 12},
            {"accesses_per_benchmark": 2000},
            {"benchmarks": ("bwaves",)},
            {
                "geometry": CacheGeometry(
                    size_bytes=16 * 1024, associativity=4, block_bytes=64
                )
            },
        ],
    )
    def test_sensitive_to_config(self, overrides):
        assert config_fingerprint(small_config()) != config_fingerprint(
            small_config(**overrides)
        )

    def test_comparison_fingerprint_hashes_trace(self):
        trace_a = generate_trace(get_profile("bwaves"), 200, seed=1)
        trace_b = generate_trace(get_profile("bwaves"), 200, seed=2)
        fp = comparison_fingerprint(trace_a, BASELINE_GEOMETRY, ("rmw",))
        assert fp == comparison_fingerprint(trace_a, BASELINE_GEOMETRY, ("rmw",))
        assert fp != comparison_fingerprint(trace_b, BASELINE_GEOMETRY, ("rmw",))


class TestRowSerialisation:
    def test_roundtrip_is_exact(self):
        config = small_config()
        row = execute_row("bwaves", config)
        payload = serialize_row(row)
        # Must survive an actual JSON encode/decode, as the journal does.
        restored = deserialize_row(json.loads(json.dumps(payload)))
        assert restored.benchmark == row.benchmark
        assert set(restored.results) == set(row.results)
        for technique, result in row.results.items():
            other = restored.results[technique]
            assert dataclasses.asdict(other.counts) == dataclasses.asdict(
                result.counts
            )
            assert other.events.to_dict() == result.events.to_dict()
            assert dataclasses.asdict(other.cache_stats) == dataclasses.asdict(
                result.cache_stats
            )
            assert other.geometry == result.geometry
            assert other.requests == result.requests


class TestCheckpointJournal:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal.open(path, "campaign", "f" * 64) as journal:
            assert not journal.resumed
            journal.append("mcf", {"x": 1})
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["format"] == FORMAT_NAME
        assert header["version"] == FORMAT_VERSION
        assert header["kind"] == "campaign"
        assert header["fingerprint"] == "f" * 64

    def test_resume_loads_rows(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal.open(path, "campaign", "f" * 64) as journal:
            journal.append("mcf", {"x": 1})
            journal.append("gcc", {"x": 2})
        with CheckpointJournal.open(path, "campaign", "f" * 64) as journal:
            assert journal.resumed
            assert journal.rows == {"mcf": {"x": 1}, "gcc": {"x": 2}}
            assert journal.skipped_records == 0

    def test_stale_fingerprint_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CheckpointJournal.open(path, "campaign", "a" * 64).close()
        with pytest.raises(CheckpointError, match="stale checkpoint"):
            CheckpointJournal.open(path, "campaign", "b" * 64)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        CheckpointJournal.open(path, "comparison", "a" * 64).close()
        with pytest.raises(CheckpointError, match="kind"):
            CheckpointJournal.open(path, "campaign", "a" * 64)

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            CheckpointJournal.open(path, "campaign", "a" * 64)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps(
                {
                    "format": FORMAT_NAME,
                    "version": FORMAT_VERSION + 1,
                    "kind": "campaign",
                    "fingerprint": "a" * 64,
                }
            )
            + "\n"
        )
        with pytest.raises(CheckpointError, match="version"):
            CheckpointJournal.open(path, "campaign", "a" * 64)

    def test_truncated_tail_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal.open(path, "campaign", "f" * 64) as journal:
            journal.append("mcf", {"x": 1})
            journal.append("gcc", {"x": 2})
        # Simulate a writer that died mid-append of the last record.
        text = path.read_text()
        path.write_text(text[: len(text) - 20])
        with CheckpointJournal.open(path, "campaign", "f" * 64) as journal:
            assert journal.rows == {"mcf": {"x": 1}}
            assert journal.skipped_records == 1

    def test_crc_mismatch_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal.open(path, "campaign", "f" * 64) as journal:
            journal.append("mcf", {"x": 1})
        # Flip the payload without updating the CRC.
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["payload"]["x"] = 999
        path.write_text(lines[0] + "\n" + json.dumps(record) + "\n")
        with CheckpointJournal.open(path, "campaign", "f" * 64) as journal:
            assert journal.rows == {}
            assert journal.skipped_records == 1

    def test_append_is_durable_line_at_a_time(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with CheckpointJournal.open(path, "campaign", "f" * 64) as journal:
            journal.append("mcf", {"x": 1})
            # Even before close, the record is fully on disk.
            lines = path.read_text().splitlines()
            assert len(lines) == 2
            assert json.loads(lines[1])["key"] == "mcf"


class TestCheckpointStore:
    def test_file_mode(self, tmp_path):
        store = CheckpointStore(tmp_path / "run.jsonl")
        assert not store.directory_mode
        assert store.journal_path("a" * 64) == tmp_path / "run.jsonl"

    def test_directory_mode_one_journal_per_fingerprint(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts")
        assert store.directory_mode
        path_a = store.journal_path("a" * 64)
        path_b = store.journal_path("b" * 64)
        assert path_a != path_b
        assert path_a.parent == tmp_path / "ckpts"
        assert path_a.name == "a" * 16 + ".jsonl"

    def test_open_campaign_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts")
        config = small_config()
        with store.open_campaign(config) as journal:
            journal.append("mcf", {"x": 1})
        with store.open_campaign(config) as journal:
            assert journal.resumed
            assert "mcf" in journal.rows

    def test_as_store(self, tmp_path):
        assert as_store(None) is None
        store = CheckpointStore(tmp_path)
        assert as_store(store) is store
        built = as_store(str(tmp_path / "x.jsonl"))
        assert isinstance(built, CheckpointStore)
