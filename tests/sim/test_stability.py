"""Unit tests for the seed-stability analysis."""

import pytest

from repro.sim.experiment import ExperimentConfig
from repro.sim.stability import StabilityResult, seed_stability

CONFIG = ExperimentConfig(
    benchmarks=("bwaves", "mcf"),
    techniques=("rmw", "wg", "wg_rb"),
    accesses_per_benchmark=3000,
)


class TestStabilityResult:
    def test_statistics(self):
        result = StabilityResult("wg", (0.2, 0.3, 0.4))
        assert result.mean == pytest.approx(0.3)
        assert result.std == pytest.approx(0.1)
        assert result.spread == pytest.approx(0.2)

    def test_single_seed_std_zero(self):
        assert StabilityResult("wg", (0.25,)).std == 0.0


class TestSeedStability:
    @pytest.fixture(scope="class")
    def stability(self):
        return seed_stability(CONFIG, seeds=(1, 2, 3))

    def test_per_technique_results(self, stability):
        assert set(stability) == {"wg", "wg_rb"}
        for result in stability.values():
            assert len(result.per_seed_means) == 3

    def test_reductions_stable_across_seeds(self, stability):
        """The headline metric moves by at most a few points per seed —
        the repeatability Pin could not offer."""
        for result in stability.values():
            assert result.spread < 0.06

    def test_ordering_stable_across_seeds(self, stability):
        for wg, wgrb in zip(
            stability["wg"].per_seed_means, stability["wg_rb"].per_seed_means
        ):
            assert wgrb >= wg

    def test_missing_baseline_rejected(self):
        config = ExperimentConfig(
            benchmarks=("mcf",),
            techniques=("wg",),
            accesses_per_benchmark=1000,
        )
        with pytest.raises(ValueError, match="missing"):
            seed_stability(config, seeds=(1,))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_stability(CONFIG, seeds=())
