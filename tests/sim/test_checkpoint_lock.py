"""Checkpoint hygiene: parent-dir creation and single-writer locking."""

import os

import pytest

from repro.errors import CheckpointError
from repro.sim.checkpoint import CheckpointJournal, CheckpointStore

FP = "f" * 64


def test_open_creates_missing_parent_dirs(tmp_path):
    path = tmp_path / "deeply" / "nested" / "runs" / "c.jsonl"
    journal = CheckpointJournal.open(path, "campaign", FP)
    try:
        journal.append("mcf", {"x": 1})
    finally:
        journal.close()
    assert path.exists()
    resumed = CheckpointJournal.open(path, "campaign", FP)
    try:
        assert resumed.rows == {"mcf": {"x": 1}}
    finally:
        resumed.close()


def test_store_file_mode_creates_parents(tmp_path):
    store = CheckpointStore(tmp_path / "a" / "b" / "run.jsonl")
    journal = store.open("campaign", FP)
    journal.close()
    assert (tmp_path / "a" / "b" / "run.jsonl").exists()


def test_concurrent_writer_rejected_with_clear_error(tmp_path):
    path = tmp_path / "run.jsonl"
    first = CheckpointJournal.open(path, "campaign", FP)
    try:
        with pytest.raises(CheckpointError) as err:
            CheckpointJournal.open(path, "campaign", FP)
        message = str(err.value)
        assert str(os.getpid()) in message  # names the live owner
        assert ".lock" in message
    finally:
        first.close()
    # close() released the lock: reopening now works.
    second = CheckpointJournal.open(path, "campaign", FP)
    second.close()


def test_stale_lock_from_dead_process_taken_over(tmp_path):
    path = tmp_path / "run.jsonl"
    # Forge a lock owned by a pid that cannot be alive (recycled
    # immediately-reaped child), the shape a crashed run leaves behind.
    dead = os.fork()
    if dead == 0:
        os._exit(0)
    os.waitpid(dead, 0)
    (tmp_path / "run.jsonl.lock").write_text(str(dead))
    journal = CheckpointJournal.open(path, "campaign", FP)
    try:
        journal.append("mcf", {"x": 1})
    finally:
        journal.close()
    assert not (tmp_path / "run.jsonl.lock").exists()


def test_garbage_lock_content_treated_as_stale(tmp_path):
    path = tmp_path / "run.jsonl"
    (tmp_path / "run.jsonl.lock").write_text("not-a-pid")
    journal = CheckpointJournal.open(path, "campaign", FP)
    journal.close()


def test_lock_released_even_when_header_rejects(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = CheckpointJournal.open(path, "campaign", FP)
    journal.close()
    with pytest.raises(CheckpointError, match="stale checkpoint"):
        CheckpointJournal.open(path, "campaign", "0" * 64)
    # The fingerprint rejection must not leave a dangling lock.
    retry = CheckpointJournal.open(path, "campaign", FP)
    retry.close()
