"""Unit tests for multi-technique comparison."""

import pytest

from repro.sim.comparison import compare_techniques

from tests.conftest import make_random_trace


class TestCompareTechniques:
    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.cache.config import CacheGeometry

        geometry = CacheGeometry(512, 2, 32)
        trace = make_random_trace(600, seed=10, word_span=120)
        return compare_techniques(trace, geometry)

    def test_all_techniques_present(self, comparison):
        assert set(comparison.results) == {
            "conventional",
            "rmw",
            "wg",
            "wg_rb",
        }

    def test_reduction_sign_and_order(self, comparison):
        wg = comparison.access_reduction("wg")
        wgrb = comparison.access_reduction("wg_rb")
        assert 0.0 < wg < 1.0
        assert wgrb >= wg

    def test_rmw_overhead_positive(self, comparison):
        assert comparison.rmw_overhead > 0.0

    def test_reduction_vs_self_is_zero(self, comparison):
        assert comparison.access_reduction("rmw") == pytest.approx(0.0)

    def test_reduction_vs_other_baseline(self, comparison):
        vs_conventional = comparison.access_reduction(
            "wg_rb", baseline="conventional"
        )
        vs_rmw = comparison.access_reduction("wg_rb", baseline="rmw")
        assert vs_rmw > vs_conventional

    def test_unknown_technique_rejected(self, comparison):
        with pytest.raises(ValueError, match="not simulated"):
            comparison.result("fancy")

    def test_one_shot_iterator_rejected(self, tiny_geometry):
        with pytest.raises(TypeError, match="reusable"):
            compare_techniques(iter([]), tiny_geometry)

    def test_subset_of_techniques(self, tiny_geometry):
        trace = make_random_trace(100, seed=11)
        comparison = compare_techniques(
            trace, tiny_geometry, techniques=("rmw", "wg")
        )
        assert set(comparison.results) == {"rmw", "wg"}
