"""Unit tests for the campaign runner (kept small and fast)."""

import pytest

from repro.cache.config import CacheGeometry
from repro.sim.campaign import run_campaign, run_geometry_sweep
from repro.sim.experiment import ExperimentConfig

BENCHMARKS = ("bwaves", "mcf", "gcc")


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        benchmarks=BENCHMARKS,
        accesses_per_benchmark=4000,
        seed=7,
    )


@pytest.fixture(scope="module")
def campaign(config):
    return run_campaign(config)


class TestCampaign:
    def test_one_row_per_benchmark(self, campaign):
        assert [row.benchmark for row in campaign.rows] == list(BENCHMARKS)

    def test_row_lookup(self, campaign):
        assert campaign.row("mcf").benchmark == "mcf"
        with pytest.raises(ValueError):
            campaign.row("nope")

    def test_reductions_sane(self, campaign):
        for row in campaign.rows:
            assert 0.0 <= row.access_reduction("wg") < 1.0
            assert row.access_reduction("wg_rb") >= row.access_reduction("wg")

    def test_mean_and_max(self, campaign):
        reductions = [row.access_reduction("wg") for row in campaign.rows]
        assert campaign.mean_reduction("wg") == pytest.approx(
            sum(reductions) / len(reductions)
        )
        assert campaign.max_reduction("wg") == pytest.approx(max(reductions))

    def test_best_benchmark(self, campaign):
        assert campaign.best_benchmark("wg") == "bwaves"

    def test_rmw_overhead_stats(self, campaign):
        assert 0.0 < campaign.mean_rmw_overhead < 1.0
        assert campaign.max_rmw_overhead >= campaign.mean_rmw_overhead

    def test_warmup_excluded_from_requests(self, campaign, config):
        expected = config.accesses_per_benchmark - config.warmup_accesses
        for row in campaign.rows:
            for result in row.results.values():
                assert result.requests == expected


class TestGeometrySweep:
    def test_sweep_keys(self, config):
        geometries = (
            CacheGeometry(32 * 1024, 4, 32),
            CacheGeometry(128 * 1024, 4, 32),
        )
        sweep = run_geometry_sweep(config, geometries)
        assert set(sweep) == {"32KB/4-way/32B", "128KB/4-way/32B"}
        for result in sweep.values():
            assert len(result.rows) == len(BENCHMARKS)
