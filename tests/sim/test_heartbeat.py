"""Worker heartbeats: stalled (frozen) workers die before the wall clock.

The ``freeze`` fault SIGSTOPs the worker — the one failure shape a
wall-clock timeout alone handles badly (you wait the whole budget for
a process that stopped doing anything seconds in).  Heartbeats catch
it at ~4x the beat interval.
"""

import sys
import time

import pytest

from repro.errors import WorkerTimeoutError
from repro.faultinject import FaultSpec, inject
from repro.sim.resilience import RetryPolicy, run_supervised

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="SIGSTOP semantics are POSIX"
)


def _beat_and_return(args):
    time.sleep(0.3)
    return ("done", args)


def _freeze_self(_args):
    from repro.faultinject import maybe_inject

    maybe_inject("worker", "mcf")
    return "never under a freeze rule"


@pytest.fixture(autouse=True)
def no_leftover_fault_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


def test_healthy_worker_beats_and_completes():
    events = []
    result = run_supervised(
        _beat_and_return,
        7,
        timeout_s=30.0,
        heartbeat_interval_s=0.05,
        label="beater",
        on_event=lambda name, **details: events.append(name),
    )
    assert result == ("done", 7)
    assert events.count("worker.heartbeat") >= 2


def test_frozen_worker_killed_as_stalled_before_wall_clock():
    events = []
    start = time.monotonic()
    with inject(FaultSpec(kind="freeze", benchmark="mcf")):
        with pytest.raises(WorkerTimeoutError, match="stalled"):
            run_supervised(
                _freeze_self,
                None,
                timeout_s=120.0,  # the wall clock alone would hang the test
                heartbeat_interval_s=0.1,
                label="frozen",
                on_event=lambda name, **details: events.append(
                    (name, details)
                ),
            )
    elapsed = time.monotonic() - start
    assert elapsed < 60.0  # stall detection, not the 120 s budget
    timeout_events = [d for n, d in events if n == "worker.timeout"]
    assert timeout_events and timeout_events[0].get("stalled") is True


def test_stall_detection_without_wall_clock_budget():
    """Heartbeats work on their own: no timeout_s configured at all."""
    with inject(FaultSpec(kind="freeze", benchmark="mcf")):
        with pytest.raises(WorkerTimeoutError, match="stalled"):
            run_supervised(
                _freeze_self,
                None,
                heartbeat_interval_s=0.1,
                label="frozen",
            )


def test_heartbeat_interval_validated():
    with pytest.raises(Exception):
        RetryPolicy(heartbeat_interval_s=0.0)
