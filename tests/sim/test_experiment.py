"""Unit tests for ExperimentConfig."""

import pytest

from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry
from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentConfig


class TestDefaults:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.geometry == BASELINE_GEOMETRY
        assert len(config.benchmarks) == 25
        assert "bwaves" in config.benchmarks
        assert config.techniques == ("conventional", "rmw", "wg", "wg_rb")

    def test_warmup_accesses(self):
        config = ExperimentConfig(
            accesses_per_benchmark=1000, warmup_fraction=0.25
        )
        assert config.warmup_accesses == 250


class TestValidation:
    def test_accesses_positive(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(accesses_per_benchmark=0)

    def test_warmup_fraction_bounded(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(warmup_fraction=1.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(warmup_fraction=-0.1)

    def test_techniques_required(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(techniques=())


class TestWithGeometry:
    def test_copy_changes_only_geometry(self):
        base = ExperimentConfig(accesses_per_benchmark=123, seed=77)
        other_geometry = CacheGeometry(32 * 1024, 4, 64)
        copy = base.with_geometry(other_geometry)
        assert copy.geometry == other_geometry
        assert copy.accesses_per_benchmark == 123
        assert copy.seed == 77
        assert copy.benchmarks == base.benchmarks
