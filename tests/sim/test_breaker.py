"""Circuit breakers: trip, refuse, reset — and their campaign wiring."""

import pytest

from repro.errors import BreakerOpenError, SimulationError
from repro.faultinject import FaultSpec, inject
from repro.sim.campaign import run_campaign
from repro.sim.experiment import ExperimentConfig
from repro.sim.resilience import CircuitBreaker, RetryPolicy, retry_call


@pytest.fixture(autouse=True)
def no_leftover_fault_plan(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


FAST = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(threshold=2)
        assert not breaker.record_failure("mcf")  # 1st failure: closed
        assert not breaker.is_open("mcf")
        assert breaker.record_failure("mcf")  # 2nd: the opening trip
        assert breaker.is_open("mcf")
        assert breaker.record_failure("mcf") is False  # already open
        assert breaker.open_targets() == ["mcf"]

    def test_targets_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("mcf")
        assert breaker.is_open("mcf")
        assert not breaker.is_open("gcc")

    def test_success_resets_closed_breaker_only(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("mcf")
        breaker.record_success("mcf")
        assert breaker.failures("mcf") == 0
        breaker.record_failure("gcc")
        breaker.record_failure("gcc")
        breaker.record_success("gcc")  # too late: stays open
        assert breaker.is_open("gcc")

    def test_threshold_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)


class TestRetryCallWithBreaker:
    def test_open_breaker_refuses_up_front(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("mcf")
        calls = []
        with pytest.raises(BreakerOpenError):
            retry_call(
                lambda attempt: calls.append(attempt),
                FAST,
                name="mcf",
                breaker=breaker,
            )
        assert calls == []  # never even attempted

    def test_failures_feed_breaker_and_trip_mid_retry(self):
        breaker = CircuitBreaker(threshold=2)
        events = []

        def always_fails(attempt):
            raise SimulationError(f"attempt {attempt}")

        with pytest.raises(BreakerOpenError):
            retry_call(
                always_fails,
                FAST,
                name="mcf",
                breaker=breaker,
                on_event=lambda name, **details: events.append(name),
            )
        # Two failures opened the breaker; the third attempt never ran.
        assert breaker.failures("mcf") == 2
        assert "breaker.open" in events

    def test_success_records_into_breaker(self):
        breaker = CircuitBreaker(threshold=3)

        def flaky(attempt):
            if attempt == 1:
                raise SimulationError("once")
            return "fine"

        assert (
            retry_call(flaky, FAST, name="mcf", breaker=breaker) == "fine"
        )
        assert breaker.failures("mcf") == 0  # reset on success


class TestCampaignBreaker:
    def test_breaker_skip_quarantines_and_accounts(self):
        config = ExperimentConfig(
            benchmarks=("bwaves", "mcf"),
            techniques=("conventional",),
            accesses_per_benchmark=500,
            seed=7,
        )
        retry = RetryPolicy(
            max_attempts=5, base_delay_s=0.0, jitter=0.0, breaker_threshold=2
        )
        with inject(
            FaultSpec(kind="transient", benchmark="mcf", until_attempt=99)
        ):
            result = run_campaign(config, retry=retry)
        assert [row.benchmark for row in result.rows] == ["bwaves"]
        (failure,) = result.failed_rows
        assert failure.benchmark == "mcf"
        assert failure.breaker_skipped
        assert failure.attempts == 2  # threshold, not the retry budget
        assert "breaker" in failure.describe()
        health = result.health
        assert health.breaker_skipped == 1
        assert health.recomputed == 1
        assert health.consistent

    def test_no_breaker_without_threshold(self):
        config = ExperimentConfig(
            benchmarks=("bwaves",),
            techniques=("conventional",),
            accesses_per_benchmark=500,
            seed=7,
        )
        with inject(
            FaultSpec(kind="transient", benchmark="bwaves", until_attempt=99)
        ):
            result = run_campaign(config, retry=FAST)
        (failure,) = result.failed_rows
        assert not failure.breaker_skipped
        assert failure.attempts == FAST.max_attempts
