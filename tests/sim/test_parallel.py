"""Unit tests for the parallel campaign runner."""

import pytest

from repro.faultinject import FaultSpec, inject
from repro.sim.campaign import run_campaign
from repro.sim.experiment import ExperimentConfig
from repro.sim.parallel import run_campaign_parallel

CONFIG = ExperimentConfig(
    benchmarks=("bwaves", "mcf", "gcc"),
    techniques=("rmw", "wg"),
    accesses_per_benchmark=2500,
)


class TestParallelCampaign:
    def test_matches_sequential_exactly(self):
        """Parallel execution must be bit-identical to sequential."""
        sequential = run_campaign(CONFIG)
        parallel = run_campaign_parallel(CONFIG, processes=2)
        for seq_row, par_row in zip(sequential.rows, parallel.rows):
            assert seq_row.benchmark == par_row.benchmark
            for technique in CONFIG.techniques:
                assert (
                    seq_row.results[technique].array_accesses
                    == par_row.results[technique].array_accesses
                )
                assert (
                    seq_row.results[technique].counts
                    == par_row.results[technique].counts
                )

    def test_single_process_fallback(self):
        result = run_campaign_parallel(CONFIG, processes=1)
        assert len(result.rows) == 3
        assert result.mean_reduction("wg") > 0

    def test_row_order_preserved(self):
        result = run_campaign_parallel(CONFIG, processes=2)
        assert [row.benchmark for row in result.rows] == list(CONFIG.benchmarks)

    def test_row_order_pinned_against_scheduling(self):
        """Completion order must not leak into row order.

        An injected delay makes the *first* benchmark finish last; the
        rows must still come back in config order.
        """
        with inject(
            FaultSpec(
                kind="delay", benchmark="bwaves", seconds=0.4, until_attempt=99
            )
        ):
            result = run_campaign_parallel(CONFIG, processes=3)
        assert [row.benchmark for row in result.rows] == list(CONFIG.benchmarks)

    def test_row_lookup_is_cached(self):
        result = run_campaign_parallel(CONFIG, processes=2)
        assert result.row("mcf") is result.row("mcf")
        assert result._rows_by_benchmark is result._rows_by_benchmark

    def test_processes_validated(self):
        with pytest.raises(ValueError):
            run_campaign_parallel(CONFIG, processes=0)


class TestWorkerMetricsAggregation:
    def _run_with_metrics(self, processes=2):
        from repro.obs.registry import MetricsRegistry
        from repro.obs.telemetry import Telemetry

        telem = Telemetry(registry=MetricsRegistry())
        result = run_campaign_parallel(CONFIG, processes=processes, telemetry=telem)
        return result, telem.registry

    def test_aggregate_is_bit_identical_sum_of_worker_counters(self):
        """--metrics-out must reflect all workers, exactly.

        For every counter any worker reported, the campaign aggregate
        equals the sum over the per-worker breakdowns — bit-identical
        float equality, not approx.  Parent-only counters (supervision,
        degradations) ride on top and are excluded by construction.
        """
        _, registry = self._run_with_metrics()
        worker_states = {
            worker_id: registry.worker_state(worker_id)
            for worker_id in registry.worker_ids()
        }
        assert worker_states, "campaign with telemetry produced no workers"
        counter_names = set()
        for state in worker_states.values():
            counter_names.update(state["counters"])
        assert counter_names, "workers reported no counters"
        for name in counter_names:
            expected = sum(
                state["counters"].get(name, 0)
                for state in worker_states.values()
            )
            assert registry.value(name) == expected, name

    def test_worker_ids_are_deterministic_benchmark_labels(self):
        _, registry = self._run_with_metrics()
        assert registry.worker_ids() == [
            f"worker:{benchmark}" for benchmark in CONFIG.benchmarks
        ]

    def test_supervised_completions_are_counted(self):
        _, registry = self._run_with_metrics()
        if registry.value("warning.parallel.pool_fallback"):
            pytest.skip("process creation unavailable; no supervision")
        # One worker.complete per benchmark: the reconciliation anchor
        # for the per-worker breakdown.
        assert registry.value("worker.complete") == len(CONFIG.benchmarks)

    def test_metrics_out_payload_carries_the_breakdown(self):
        _, registry = self._run_with_metrics()
        state = registry.state_dict()
        assert set(state["workers"]) == {
            f"worker:{benchmark}" for benchmark in CONFIG.benchmarks
        }

    def test_worker_counters_match_isolated_sequential_runs(self):
        """Each worker's counters equal an isolated in-process run.

        Workers are per-benchmark processes with private registries, so
        every worker's deterministic counters must be bit-identical to
        running that benchmark alone through execute_row with a fresh
        registry.  (A *shared* sequential registry is not comparable:
        each benchmark's warm-up reset wipes the previous benchmark's
        ctrl.* counters — exactly the lossiness the labelled merge
        fixes.)
        """
        from repro.obs.registry import MetricsRegistry
        from repro.obs.telemetry import Telemetry
        from repro.sim.campaign import execute_row

        _, par_registry = self._run_with_metrics()
        for benchmark in CONFIG.benchmarks:
            telem = Telemetry(registry=MetricsRegistry())
            execute_row(benchmark, CONFIG, telem)
            expected = telem.registry.state_dict()["counters"]
            actual = par_registry.worker_state(f"worker:{benchmark}")["counters"]
            for name, value in expected.items():
                if name.startswith("span."):  # wall-clock durations
                    continue
                assert actual.get(name) == value, (benchmark, name)
