"""Unit tests for the parallel campaign runner."""

import pytest

from repro.faultinject import FaultSpec, inject
from repro.sim.campaign import run_campaign
from repro.sim.experiment import ExperimentConfig
from repro.sim.parallel import run_campaign_parallel

CONFIG = ExperimentConfig(
    benchmarks=("bwaves", "mcf", "gcc"),
    techniques=("rmw", "wg"),
    accesses_per_benchmark=2500,
)


class TestParallelCampaign:
    def test_matches_sequential_exactly(self):
        """Parallel execution must be bit-identical to sequential."""
        sequential = run_campaign(CONFIG)
        parallel = run_campaign_parallel(CONFIG, processes=2)
        for seq_row, par_row in zip(sequential.rows, parallel.rows):
            assert seq_row.benchmark == par_row.benchmark
            for technique in CONFIG.techniques:
                assert (
                    seq_row.results[technique].array_accesses
                    == par_row.results[technique].array_accesses
                )
                assert (
                    seq_row.results[technique].counts
                    == par_row.results[technique].counts
                )

    def test_single_process_fallback(self):
        result = run_campaign_parallel(CONFIG, processes=1)
        assert len(result.rows) == 3
        assert result.mean_reduction("wg") > 0

    def test_row_order_preserved(self):
        result = run_campaign_parallel(CONFIG, processes=2)
        assert [row.benchmark for row in result.rows] == list(CONFIG.benchmarks)

    def test_row_order_pinned_against_scheduling(self):
        """Completion order must not leak into row order.

        An injected delay makes the *first* benchmark finish last; the
        rows must still come back in config order.
        """
        with inject(
            FaultSpec(
                kind="delay", benchmark="bwaves", seconds=0.4, until_attempt=99
            )
        ):
            result = run_campaign_parallel(CONFIG, processes=3)
        assert [row.benchmark for row in result.rows] == list(CONFIG.benchmarks)

    def test_row_lookup_is_cached(self):
        result = run_campaign_parallel(CONFIG, processes=2)
        assert result.row("mcf") is result.row("mcf")
        assert result._rows_by_benchmark is result._rows_by_benchmark

    def test_processes_validated(self):
        with pytest.raises(ValueError):
            run_campaign_parallel(CONFIG, processes=0)
