"""Unit tests for the simulation runner."""

import pytest

from repro.sim.simulator import Simulator, run_simulation

from tests.conftest import make_random_trace


class TestRunSimulation:
    def test_basic_result(self, tiny_geometry):
        trace = make_random_trace(200, seed=1)
        result = run_simulation(trace, "rmw", tiny_geometry)
        assert result.technique == "rmw"
        assert result.requests == 200
        assert result.array_accesses > 200  # writes cost double
        assert result.cache_stats.accesses == 200

    def test_accesses_per_request(self, tiny_geometry):
        trace = make_random_trace(100, seed=2, write_share=0.0)
        result = run_simulation(trace, "rmw", tiny_geometry)
        assert result.accesses_per_request == pytest.approx(1.0)

    def test_controller_kwargs_forwarded(self, tiny_geometry):
        trace = make_random_trace(100, seed=3)
        result = run_simulation(
            trace, "wg", tiny_geometry, detect_silent_writes=False
        )
        assert result.counts.silent_writes_detected == 0

    def test_events_are_snapshot(self, tiny_geometry):
        simulator = Simulator("rmw", tiny_geometry)
        simulator.feed(make_random_trace(50, seed=4))
        result = simulator.finish()
        before = result.events.array_accesses
        # Further mutation of the controller must not affect the result.
        simulator.controller.events.record_row_read(1)
        assert result.events.array_accesses == before


class TestWarmupReset:
    def test_reset_zeroes_counters_keeps_state(self, tiny_geometry):
        # Footprint (48 words) fits the tiny cache (64 words), so the
        # warmed cache can serve the replayed slice almost entirely.
        trace = make_random_trace(300, seed=5, word_span=48)
        simulator = Simulator("wg", tiny_geometry)
        simulator.feed(trace[:150])
        warm_hits = simulator.cache.stats.hits
        assert warm_hits > 0
        simulator.reset_measurements()
        assert simulator.cache.stats.hits == 0
        assert simulator.controller.array_accesses == 0
        # Cache content survived: replaying the same slice now hits a lot.
        simulator.feed(trace[:150])
        result = simulator.finish()
        assert result.cache_stats.hit_rate > 0.9

    def test_warmup_changes_measured_counts(self, tiny_geometry):
        trace = make_random_trace(300, seed=6)
        cold = Simulator("rmw", tiny_geometry)
        cold.feed(trace)
        cold_result = cold.finish()
        warm = Simulator("rmw", tiny_geometry)
        warm.feed(trace[:100])
        warm.reset_measurements()
        warm.feed(trace[100:])
        warm_result = warm.finish()
        assert warm_result.requests == 200
        assert warm_result.array_accesses < cold_result.array_accesses
