"""Unit tests for the simulation runner."""

import pytest

from repro.engine.batch import iter_batches
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.sim.simulator import Simulator, run_simulation

from tests.conftest import make_random_trace


class TestRunSimulation:
    def test_basic_result(self, tiny_geometry):
        trace = make_random_trace(200, seed=1)
        result = run_simulation(trace, "rmw", tiny_geometry)
        assert result.technique == "rmw"
        assert result.requests == 200
        assert result.array_accesses > 200  # writes cost double
        assert result.cache_stats.accesses == 200

    def test_accesses_per_request(self, tiny_geometry):
        trace = make_random_trace(100, seed=2, write_share=0.0)
        result = run_simulation(trace, "rmw", tiny_geometry)
        assert result.accesses_per_request == pytest.approx(1.0)

    def test_controller_kwargs_forwarded(self, tiny_geometry):
        trace = make_random_trace(100, seed=3)
        result = run_simulation(
            trace, "wg", tiny_geometry, detect_silent_writes=False
        )
        assert result.counts.silent_writes_detected == 0

    def test_events_are_snapshot(self, tiny_geometry):
        simulator = Simulator("rmw", tiny_geometry)
        simulator.feed(make_random_trace(50, seed=4))
        result = simulator.finish()
        before = result.events.array_accesses
        # Further mutation of the controller must not affect the result.
        simulator.controller.events.record_row_read(1)
        assert result.events.array_accesses == before


class TestEngines:
    def test_unknown_engine_rejected(self, tiny_geometry):
        with pytest.raises(ValueError, match="unknown engine"):
            Simulator("rmw", tiny_geometry, engine="vectorized")

    @pytest.mark.parametrize("engine", ("scalar", "batched"))
    def test_engines_agree(self, tiny_geometry, engine):
        trace = make_random_trace(400, seed=7)
        reference = run_simulation(trace, "wg", tiny_geometry, engine="scalar")
        result = run_simulation(trace, "wg", tiny_geometry, engine=engine)
        assert result.events == reference.events
        assert result.counts == reference.counts
        assert result.cache_stats == reference.cache_stats

    def test_feed_batches(self, tiny_geometry):
        trace = make_random_trace(300, seed=8)
        direct = Simulator("rmw", tiny_geometry)
        direct.feed(trace)
        via_batches = Simulator("rmw", tiny_geometry)
        via_batches.feed_batches(iter_batches(trace, tiny_geometry, 64))
        assert via_batches.finish().events == direct.finish().events

    def test_requests_counted_across_batches(self, tiny_geometry):
        simulator = Simulator("conventional", tiny_geometry, batch_size=16)
        simulator.feed(make_random_trace(100, seed=9))
        assert simulator.finish().requests == 100


class TestWarmupReset:
    def test_reset_zeroes_counters_keeps_state(self, tiny_geometry):
        # Footprint (48 words) fits the tiny cache (64 words), so the
        # warmed cache can serve the replayed slice almost entirely.
        trace = make_random_trace(300, seed=5, word_span=48)
        simulator = Simulator("wg", tiny_geometry)
        simulator.feed(trace[:150])
        warm_hits = simulator.cache.stats.hits
        assert warm_hits > 0
        simulator.reset_measurements()
        assert simulator.cache.stats.hits == 0
        assert simulator.controller.array_accesses == 0
        # Cache content survived: replaying the same slice now hits a lot.
        simulator.feed(trace[:150])
        result = simulator.finish()
        assert result.cache_stats.hit_rate > 0.9

    def test_warmup_changes_measured_counts(self, tiny_geometry):
        trace = make_random_trace(300, seed=6)
        cold = Simulator("rmw", tiny_geometry)
        cold.feed(trace)
        cold_result = cold.finish()
        warm = Simulator("rmw", tiny_geometry)
        warm.feed(trace[:100])
        warm.reset_measurements()
        warm.feed(trace[100:])
        warm_result = warm.finish()
        assert warm_result.requests == 200
        assert warm_result.array_accesses < cold_result.array_accesses

    def test_reset_zeroes_prebound_telemetry_counters(self, tiny_geometry):
        # Regression: reset_measurements used to replace the events/
        # counts objects but leave the controller's pre-bound registry
        # counters holding the warm-up traffic, so the metrics plane
        # disagreed with the measurement plane after a warm-up reset.
        telemetry = Telemetry(registry=MetricsRegistry())
        trace = make_random_trace(300, seed=10)
        simulator = Simulator("rmw", tiny_geometry, telemetry=telemetry)
        simulator.feed(trace[:200])
        assert telemetry.registry.value("ctrl.rmw.read_requests") > 0
        simulator.reset_measurements()
        assert telemetry.registry.value("ctrl.rmw.read_requests") == 0
        assert telemetry.registry.value("ctrl.rmw.write_requests") == 0
        simulator.feed(trace[200:])
        result = simulator.finish()
        reads = telemetry.registry.value("ctrl.rmw.read_requests")
        writes = telemetry.registry.value("ctrl.rmw.write_requests")
        assert reads == result.counts.read_requests
        assert writes == result.counts.write_requests
        assert reads + writes == 100


class TestStreamingRun:
    def test_collect_outcomes_false_returns_none(self, tiny_geometry):
        from repro.cache.cache import SetAssociativeCache
        from repro.core.registry import make_controller

        trace = make_random_trace(200, seed=11)
        collecting = make_controller(
            "wg", SetAssociativeCache(tiny_geometry)
        )
        outcomes = collecting.run(trace)
        assert outcomes is not None and len(outcomes) == 200
        streaming = make_controller(
            "wg", SetAssociativeCache(tiny_geometry)
        )
        assert streaming.run(trace, collect_outcomes=False) is None
        assert streaming.events == collecting.events
        assert streaming.counts == collecting.counts
