"""Unit tests for retry policies and supervised worker execution."""

import os
import time

import pytest

from repro.errors import (
    ConfigurationError,
    SimulationError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.sim.resilience import (
    ExecutionPolicy,
    FailedRow,
    RetryPolicy,
    active_policy,
    execution_policy,
    retry_call,
    run_supervised,
)


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.worker_timeout_s is None

    def test_none_is_single_attempt(self):
        assert RetryPolicy.none().max_attempts == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"worker_timeout_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3, jitter=0.0
        )
        delays = [policy.backoff_delay(a) for a in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.25)
        one = policy.backoff_delay(1, seed=7, name="mcf")
        two = policy.backoff_delay(1, seed=7, name="mcf")
        assert one == two

    def test_jitter_varies_by_name_and_stays_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.25)
        delays = {
            policy.backoff_delay(1, seed=7, name=name)
            for name in ("mcf", "gcc", "bwaves")
        }
        assert len(delays) == 3
        for delay in delays:
            assert 0.075 <= delay <= 0.125

    def test_with_timeout(self):
        policy = RetryPolicy().with_timeout(2.5)
        assert policy.worker_timeout_s == 2.5


class TestRetryCall:
    def test_retries_repro_errors_then_succeeds(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise SimulationError("transient")
            return "done"

        events = []
        result = retry_call(
            flaky,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
            name="flaky",
            on_event=lambda name, **details: events.append((name, details)),
            sleep=lambda _s: None,
        )
        assert result == "done"
        assert calls == [1, 2, 3]
        assert [name for name, _ in events] == ["retry.attempt", "retry.attempt"]
        assert events[0][1]["target"] == "flaky"

    def test_exhaustion_reraises_last_error(self):
        def always_fails(attempt):
            raise SimulationError(f"attempt {attempt}")

        with pytest.raises(SimulationError, match="attempt 2"):
            retry_call(
                always_fails,
                policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
                sleep=lambda _s: None,
            )

    def test_programming_errors_never_retried(self):
        calls = []

        def broken(attempt):
            calls.append(attempt)
            raise TypeError("bug")

        with pytest.raises(TypeError):
            retry_call(broken, policy=RetryPolicy(max_attempts=5), sleep=lambda _s: None)
        assert calls == [1]

    def test_sleeps_backoff_delays(self):
        slept = []

        def fails_twice(attempt):
            if attempt < 3:
                raise SimulationError("again")
            return attempt

        retry_call(
            fails_twice,
            policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.1, multiplier=2.0, jitter=0.0
            ),
            sleep=slept.append,
        )
        assert slept == [0.1, 0.2]


class TestExecutionPolicy:
    def test_default_policy(self):
        policy = active_policy()
        assert policy.strict is False
        assert policy.checkpoint is None

    def test_stacking(self):
        inner = ExecutionPolicy(strict=True, processes=4)
        with execution_policy(inner) as installed:
            assert installed is inner
            assert active_policy() is inner
            with execution_policy(ExecutionPolicy()):
                assert active_policy().strict is False
            assert active_policy() is inner
        assert active_policy().strict is False

    def test_stack_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with execution_policy(ExecutionPolicy(strict=True)):
                raise RuntimeError("boom")
        assert active_policy().strict is False


# Module-level targets so they survive pickling under spawn contexts.


def _echo(args):
    return ("echo", args)


def _raise_simulation_error(args):
    raise SimulationError(f"injected {args}")


def _exit_hard(args):
    os._exit(29)


def _sleep_forever(_args):
    time.sleep(60)


class TestRunSupervised:
    def test_returns_result(self):
        assert run_supervised(_echo, 42) == ("echo", 42)

    def test_worker_exception_rebuilt(self):
        with pytest.raises(SimulationError, match="injected boom"):
            run_supervised(_raise_simulation_error, "boom")

    def test_crash_raises_worker_crash_error(self):
        events = []
        with pytest.raises(WorkerCrashError, match="exit code 29"):
            run_supervised(
                _exit_hard,
                None,
                label="crashy",
                on_event=lambda name, **details: events.append((name, details)),
            )
        assert events and events[0][0] == "worker.crash"
        assert events[0][1]["exit_code"] == 29

    def test_timeout_kills_and_raises(self):
        events = []
        start = time.monotonic()
        with pytest.raises(WorkerTimeoutError, match="budget"):
            run_supervised(
                _sleep_forever,
                None,
                timeout_s=0.5,
                label="sleepy",
                on_event=lambda name, **details: events.append(name),
            )
        assert time.monotonic() - start < 30.0
        assert "worker.timeout" in events


class TestFailedRow:
    def test_describe(self):
        failure = FailedRow(
            benchmark="mcf", attempts=3, error_type="SimulationError", error="x"
        )
        text = failure.describe()
        assert "mcf" in text and "3" in text and "SimulationError" in text
