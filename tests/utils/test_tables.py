"""Unit tests for text-table rendering."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ("name", "value"), [("alpha", 1), ("b", 22)]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert lines[1].startswith("-")
        assert lines[2].startswith("alpha")

    def test_floats_two_decimals(self):
        text = format_table(("k", "v"), [("pi", 3.14159)])
        assert "3.14" in text
        assert "3.142" not in text

    def test_title(self):
        text = format_table(("a",), [("x",)], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_numbers_right_aligned(self):
        text = format_table(("name", "count"), [("x", 5), ("y", 12345)])
        rows = text.splitlines()[2:]
        # Both number cells end at the same column.
        assert rows[0].rstrip().endswith("5")
        assert rows[1].rstrip().endswith("12345")
        assert len(rows[1].rstrip()) >= len(rows[0].rstrip())

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(("a", "b"), [("only-one",)])

    def test_empty_body(self):
        text = format_table(("a", "b"), [])
        assert len(text.splitlines()) == 2
