"""Unit and property tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_mask,
    extract_bits,
    is_power_of_two,
    log2_exact,
    round_up_pow2,
)


class TestIsPowerOfTwo:
    def test_small_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(value)

    def test_negative(self):
        assert not is_power_of_two(-4)

    def test_bool_is_not_accepted_as_power(self):
        # True == 1 numerically, but sizes should never be bools; the
        # function itself treats it as int(1) which is fine.
        assert is_power_of_two(True) in (True, False)


class TestLog2Exact:
    def test_known_values(self):
        assert log2_exact(1) == 0
        assert log2_exact(2) == 1
        assert log2_exact(32) == 5
        assert log2_exact(65536) == 16

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(24)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_exact(0)

    @given(st.integers(min_value=0, max_value=60))
    def test_roundtrip(self, exponent):
        assert log2_exact(1 << exponent) == exponent


class TestBitMask:
    def test_zero_width(self):
        assert bit_mask(0) == 0

    def test_widths(self):
        assert bit_mask(1) == 0b1
        assert bit_mask(4) == 0b1111
        assert bit_mask(8) == 0xFF

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_mask(-1)

    @given(st.integers(min_value=0, max_value=64))
    def test_mask_has_width_bits(self, width):
        assert bin(bit_mask(width)).count("1") == width


class TestExtractBits:
    def test_documented_example(self):
        assert extract_bits(0b1101_0110, low=2, width=3) == 5

    def test_low_zero(self):
        assert extract_bits(0xABCD, low=0, width=8) == 0xCD

    def test_width_zero(self):
        assert extract_bits(0xFFFF, low=4, width=0) == 0

    def test_negative_low_rejected(self):
        with pytest.raises(ValueError):
            extract_bits(1, low=-1, width=2)

    @given(
        st.integers(min_value=0, max_value=2**48 - 1),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=16),
    )
    def test_matches_shift_and_mask(self, value, low, width):
        assert extract_bits(value, low, width) == (value >> low) & ((1 << width) - 1)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_reassembly(self, value):
        low = extract_bits(value, 0, 16)
        high = extract_bits(value, 16, 16)
        assert (high << 16) | low == value


class TestRoundUpPow2:
    def test_small(self):
        assert round_up_pow2(0) == 1
        assert round_up_pow2(1) == 1
        assert round_up_pow2(2) == 2
        assert round_up_pow2(3) == 4
        assert round_up_pow2(17) == 32

    @given(st.integers(min_value=1, max_value=10**9))
    def test_result_is_power_and_bounds(self, value):
        result = round_up_pow2(value)
        assert is_power_of_two(result)
        assert result >= value
        assert result < 2 * value or value == 1
