"""Unit tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -3)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("n", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="n must be non-negative"):
            check_non_negative("n", -1)


class TestCheckPowerOfTwo:
    def test_accepts(self):
        check_power_of_two("size", 64)

    def test_rejects(self):
        with pytest.raises(ValueError, match="power of two"):
            check_power_of_two("size", 48)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        check_in_range("p", 0.0, 0.0, 1.0)
        check_in_range("p", 1.0, 0.0, 1.0)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"p must be in \[0.*1"):
            check_in_range("p", 1.5, 0.0, 1.0)


class TestCheckType:
    def test_accepts_match(self):
        check_type("name", "hello", str)
        check_type("count", 3, int)

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="count must be int"):
            check_type("count", "3", int)

    def test_bool_rejected_for_int(self):
        with pytest.raises(TypeError, match="got bool"):
            check_type("count", True, int)

    def test_tuple_of_types(self):
        check_type("v", 1.0, (int, float))
        with pytest.raises(TypeError):
            check_type("v", "s", (int, float))
