"""Unit and statistical tests for the deterministic RNG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import DeterministicRNG, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_names_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_name_path_is_unambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


class TestDeterministicRNG:
    def test_requires_int_seed(self):
        with pytest.raises(TypeError):
            DeterministicRNG("not-a-seed")

    def test_same_seed_same_stream(self):
        a = DeterministicRNG(42)
        b = DeterministicRNG(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_forks_are_independent(self):
        root = DeterministicRNG(7)
        child_a = root.fork("a")
        child_b = root.fork("b")
        draws_a = [child_a.uniform() for _ in range(10)]
        draws_b = [child_b.uniform() for _ in range(10)]
        assert draws_a != draws_b

    def test_fork_does_not_disturb_parent(self):
        one = DeterministicRNG(9)
        two = DeterministicRNG(9)
        one.fork("child")
        assert one.randint(0, 10**9) == two.randint(0, 10**9)

    def test_uniform_range(self):
        rng = DeterministicRNG(0)
        for _ in range(100):
            value = rng.uniform()
            assert 0.0 <= value < 1.0

    def test_randint_inclusive(self):
        rng = DeterministicRNG(0)
        draws = {rng.randint(1, 3) for _ in range(200)}
        assert draws == {1, 2, 3}

    def test_choice(self):
        rng = DeterministicRNG(3)
        items = ["x", "y", "z"]
        assert all(rng.choice(items) in items for _ in range(50))

    def test_weighted_choice_respects_zero_weight_items(self):
        rng = DeterministicRNG(5)
        draws = {
            rng.weighted_choice(["a", "b"], [1.0, 1e-12]) for _ in range(100)
        }
        assert "a" in draws

    def test_geometric_mean(self):
        rng = DeterministicRNG(11)
        draws = [rng.geometric(4.0) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 3.5 < mean < 4.5
        assert min(draws) >= 1

    def test_geometric_degenerate(self):
        rng = DeterministicRNG(1)
        assert all(rng.geometric(1.0) == 1 for _ in range(20))
        assert all(rng.geometric(0.5) == 1 for _ in range(20))

    def test_maybe_edges(self):
        rng = DeterministicRNG(2)
        assert not any(rng.maybe(0.0) for _ in range(50))
        assert all(rng.maybe(1.0) for _ in range(50))

    def test_maybe_rate(self):
        rng = DeterministicRNG(13)
        hits = sum(rng.maybe(0.25) for _ in range(8000))
        assert 0.21 < hits / 8000 < 0.29

    def test_sample_bits(self):
        rng = DeterministicRNG(17)
        assert rng.sample_bits(0) == 0
        for _ in range(50):
            assert 0 <= rng.sample_bits(12) < 4096

    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(19)
        items = list(range(30))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    @given(st.integers(min_value=0, max_value=2**32))
    def test_any_seed_works(self, seed):
        rng = DeterministicRNG(seed)
        assert 0.0 <= rng.uniform() < 1.0
