"""Corpus replay through the result store: cached verdicts, code drift.

A cached divergence verdict is only as trustworthy as the checker that
produced it, so verdict keys carry the code-version fingerprint — the
moment the code changes, every cached verdict misses and the corpus is
re-checked for real.
"""

import pytest

from repro.cache.config import CacheGeometry
from repro.check.campaign import replay_corpus
from repro.check.corpus import CorpusEntry, save_entry
from repro.store import ResultStore
from repro.store.version import ENV_CODE_VERSION
from repro.trace.record import AccessType, MemoryAccess

GEOMETRY = CacheGeometry(
    size_bytes=1024, associativity=2, block_bytes=32, address_bits=16
)


def make_entry(value=5):
    trace = (
        MemoryAccess(icount=0, kind=AccessType.WRITE, address=64, value=value),
        MemoryAccess(icount=1, kind=AccessType.READ, address=64, value=0),
    )
    return CorpusEntry(
        technique="wg",
        geometry=GEOMETRY,
        trace=trace,
        batch_size=4,
        knobs={},
        scenario="unit",
        seed=3,
        iteration=1,
    )


@pytest.fixture
def corpus(tmp_path):
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    save_entry(str(corpus_dir), make_entry())
    return str(corpus_dir)


def test_replay_without_cache_unchanged(corpus):
    report = replay_corpus(corpus)
    assert report.ok
    assert report.cases_run == 1
    assert report.cached_cases == 0


def test_second_replay_served_from_store(corpus, tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_CODE_VERSION, "aaaaaaaaaaaaaaaa")
    cache = tmp_path / "cache"
    cold = replay_corpus(corpus, result_cache=cache)
    assert cold.ok and cold.cached_cases == 0
    warm = replay_corpus(corpus, result_cache=cache)
    assert warm.ok
    assert warm.cached_cases == warm.cases_run == 1
    # Both replays reach the same verdict.
    assert warm.accesses_checked == cold.accesses_checked


def test_cached_verdict_invalidates_on_code_change(corpus, tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_CODE_VERSION, "aaaaaaaaaaaaaaaa")
    cache = tmp_path / "cache"
    replay_corpus(corpus, result_cache=cache)
    monkeypatch.setenv(ENV_CODE_VERSION, "bbbbbbbbbbbbbbbb")
    drifted = replay_corpus(corpus, result_cache=cache)
    assert drifted.cached_cases == 0  # code changed: verdicts recomputed
    again = replay_corpus(corpus, result_cache=cache)
    assert again.cached_cases == 1  # stable again under the new version


def test_cached_failure_verdict_roundtrips(tmp_path, monkeypatch):
    """A stored *failing* verdict replays as the same failure."""
    monkeypatch.setenv(ENV_CODE_VERSION, "aaaaaaaaaaaaaaaa")
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    save_entry(str(corpus_dir), make_entry())
    cache = ResultStore(tmp_path / "cache")
    # Poison the verdict to simulate a failure without needing a real
    # divergence: the replay must trust (and report) the cached list.
    document = make_entry().to_document()
    cache.put_verdict(
        document, True, {"divergences": ["synthetic divergence"]}
    )
    report = replay_corpus(str(corpus_dir), result_cache=cache)
    assert report.cached_cases == 1
    assert not report.ok
    assert report.failures[0].divergences == ["synthetic divergence"]


def test_unusable_cache_degrades_to_plain_replay(corpus, tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file, not a directory")
    report = replay_corpus(corpus, result_cache=blocker)
    assert report.ok
    assert report.cached_cases == 0
