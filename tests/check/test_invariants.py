"""Unit tests for the inline invariant checker.

Each corruption test deliberately vandalises live cache or buffer
state and asserts the checker names the broken invariant — proving the
checks detect real damage, not just that healthy runs stay quiet.
"""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.check.invariants import InvariantChecker, check_controller_invariants
from repro.core.registry import CONTROLLER_NAMES, make_controller
from repro.errors import InvariantViolation

from tests.conftest import make_random_trace

TINY = CacheGeometry(size_bytes=512, associativity=2, block_bytes=32)


def run_healthy(technique, accesses=400, **kwargs):
    cache = SetAssociativeCache(TINY)
    controller = make_controller(technique, cache, **kwargs)
    checker = controller.enable_invariant_checks()
    trace = make_random_trace(accesses, seed=41, word_span=120)
    for access in trace:
        controller.process(access)
    return controller, checker


class TestHealthyRuns:
    @pytest.mark.parametrize("technique", CONTROLLER_NAMES)
    def test_no_violation_on_random_trace(self, technique):
        controller, checker = run_healthy(technique)
        assert checker.checks_run == 400

    def test_every_n_checks_sparsely(self):
        cache = SetAssociativeCache(TINY)
        controller = make_controller("wg", cache)
        checker = controller.enable_invariant_checks(every=10)
        for access in make_random_trace(100, seed=42):
            controller.process(access)
        assert checker.checks_run == 10

    def test_disable_stops_checking(self):
        cache = SetAssociativeCache(TINY)
        controller = make_controller("wg", cache)
        checker = controller.enable_invariant_checks()
        controller.disable_invariant_checks()
        for access in make_random_trace(50, seed=43):
            controller.process(access)
        assert checker.checks_run == 0

    def test_bad_every_rejected(self):
        with pytest.raises(ValueError, match="every"):
            InvariantChecker(every=0)


class TestCacheCorruption:
    def _resident_controller(self):
        cache = SetAssociativeCache(TINY)
        controller = make_controller("conventional", cache)
        for access in make_random_trace(200, seed=44, word_span=120):
            controller.process(access)
        return controller, cache

    def _full_set(self, cache):
        for set_index in range(cache.geometry.num_sets):
            tags = [t for t in cache.set_tags(set_index) if t >= 0]
            if len(tags) == cache.geometry.associativity:
                return set_index
        pytest.fail("no fully occupied set to corrupt")

    def test_duplicate_tag_detected(self):
        controller, cache = self._resident_controller()
        set_index = self._full_set(cache)
        slot = cache._tags[set_index]  # noqa: SLF001
        slot[1] = slot[0]
        with pytest.raises(InvariantViolation, match="duplicate tag"):
            check_controller_invariants(controller)

    def test_dirty_invalid_way_detected(self):
        controller, cache = self._resident_controller()
        set_index = self._full_set(cache)
        cache._tags[set_index][0] = -1  # noqa: SLF001
        cache._dirty[set_index][0] = True  # noqa: SLF001
        with pytest.raises(InvariantViolation, match="dirty but invalid"):
            check_controller_invariants(controller)

    def test_stamp_duplication_detected(self):
        controller, cache = self._resident_controller()
        set_index = self._full_set(cache)
        slot = cache._stamps[set_index]  # noqa: SLF001
        slot[1] = slot[0]
        with pytest.raises(InvariantViolation, match="stamp"):
            check_controller_invariants(controller)


class TestBufferCorruption:
    def _buffered_controller(self, technique="wg"):
        cache = SetAssociativeCache(TINY)
        controller = make_controller(technique, cache)
        # Writes establish a valid, dirty Set-Buffer entry.
        for access in make_random_trace(
            60, seed=45, word_span=16, write_share=1.0, silent_share=0.0
        ):
            controller.process(access)
        entry = next(e for e in controller.buffer_entries if e.tag_buffer.valid)
        return controller, entry

    def test_stale_tag_snapshot_detected(self):
        controller, entry = self._buffered_controller()
        tags = list(entry.tag_buffer.tags)
        tags[0] = (tags[0] or 0) ^ 0x1F
        entry.tag_buffer._tags = tuple(tags)  # noqa: SLF001
        with pytest.raises(InvariantViolation, match="stale"):
            check_controller_invariants(controller)

    def test_lost_writeback_detected(self):
        controller, entry = self._buffered_controller()
        assert entry.set_buffer.has_modifications
        entry.tag_buffer.dirty = False
        with pytest.raises(InvariantViolation, match="Dirty bit is clear"):
            check_controller_invariants(controller)

    def test_set_buffer_disagreement_detected(self):
        controller, entry = self._buffered_controller()
        entry.set_buffer.set_index = (entry.set_buffer.set_index + 1) % 8
        with pytest.raises(InvariantViolation, match="Set-Buffer holds"):
            check_controller_invariants(controller)


class TestMonotonicity:
    def test_counter_decrease_detected(self):
        cache = SetAssociativeCache(TINY)
        controller = make_controller("conventional", cache)
        checker = InvariantChecker()
        for access in make_random_trace(20, seed=46):
            controller.process(access)
        checker.check(controller)
        controller.events.row_writes -= 1
        with pytest.raises(InvariantViolation, match="decreased|not row_reads"):
            checker.check(controller)

    def test_negative_counter_detected(self):
        cache = SetAssociativeCache(TINY)
        controller = make_controller("conventional", cache)
        checker = InvariantChecker()
        controller.counts.read_requests = -1
        with pytest.raises(InvariantViolation, match="negative"):
            checker.check(controller)


class TestBatchedPathUnderDebugMode:
    def test_fast_path_disengages_and_results_match(self):
        from repro.engine.batch import iter_batches

        trace = make_random_trace(500, seed=47, word_span=120)
        results = []
        for debug in (False, True):
            cache = SetAssociativeCache(TINY)
            controller = make_controller("wg", cache)
            if debug:
                checker = controller.enable_invariant_checks()
            for batch in iter_batches(trace, TINY, 64):
                controller.process_batch(batch)
            controller.finalize()
            results.append((controller.events, controller.counts, cache.stats))
        assert results[0] == results[1]
        # Debug mode really audited every access despite batched feeding.
        assert checker.checks_run == 500
