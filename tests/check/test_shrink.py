"""Unit tests for ddmin trace shrinking."""

from repro.check.shrink import DEFAULT_SHRINK_BUDGET, shrink_trace


class TestShrinking:
    def test_single_culprit(self):
        trace = list(range(100))
        result = shrink_trace(trace, lambda t: 57 in t)
        assert result == [57]

    def test_pair_of_culprits_order_preserved(self):
        trace = list(range(100))
        result = shrink_trace(trace, lambda t: 13 in t and 80 in t)
        assert result == [13, 80]

    def test_subsequence_dependency(self):
        # Fails only when 3 appears somewhere before 7.
        trace = [1, 3, 5, 7, 9]

        def fails(t):
            return 3 in t and 7 in t and t.index(3) < t.index(7)

        assert shrink_trace(trace, fails) == [3, 7]

    def test_result_is_one_minimal(self):
        trace = list(range(40))
        result = shrink_trace(trace, lambda t: sum(t) >= 100)
        # 1-minimal: removing any single element breaks the predicate.
        assert sum(result) >= 100
        for i in range(len(result)):
            assert sum(result[:i] + result[i + 1:]) < 100

    def test_non_failing_input_returned_unchanged(self):
        trace = [1, 2, 3]
        assert shrink_trace(trace, lambda t: False) == trace

    def test_empty_input(self):
        assert shrink_trace([], lambda t: True) == []

    def test_whole_trace_needed(self):
        trace = [1, 2, 3, 4]
        assert shrink_trace(trace, lambda t: len(t) >= 4) == trace


class TestBudget:
    def test_budget_caps_evaluations(self):
        calls = []

        def fails(t):
            calls.append(1)
            return 999 in t

        trace = list(range(1000)) + [999]
        shrink_trace(trace, fails, budget=25)
        # The initial confirmation plus at most the budget of tries.
        assert len(calls) <= 26

    def test_default_budget_sane(self):
        assert DEFAULT_SHRINK_BUDGET >= 100

    def test_partial_shrink_still_fails(self):
        # Even when the budget stops early, the result must still fail.
        trace = list(range(600))
        result = shrink_trace(trace, lambda t: 300 in t, budget=10)
        assert 300 in result
