"""Unit tests for the deterministic trace fuzzer."""

import pytest

from repro.cache.config import CacheGeometry
from repro.check.fuzz import (
    FUZZ_GEOMETRIES,
    SCENARIO_NAMES,
    FuzzCase,
    TraceFuzzer,
)
from repro.trace.record import WORD_BYTES


class TestDeterminism:
    def test_same_seed_same_case(self):
        a = TraceFuzzer(seed=42).case(7)
        b = TraceFuzzer(seed=42).case(7)
        assert a == b

    def test_different_seeds_differ(self):
        a = TraceFuzzer(seed=1).case(0)
        b = TraceFuzzer(seed=2).case(0)
        assert a.trace != b.trace

    def test_different_iterations_differ(self):
        fuzzer = TraceFuzzer(seed=0)
        # Same scenario slot, different iteration.
        a = fuzzer.case(0)
        b = fuzzer.case(len(SCENARIO_NAMES))
        assert a.scenario == b.scenario
        assert a.trace != b.trace

    def test_case_is_pure(self):
        fuzzer = TraceFuzzer(seed=5)
        first = fuzzer.case(3)
        fuzzer.case(9)  # interleaved generation must not perturb it
        assert fuzzer.case(3) == first


class TestCoverage:
    def test_scenarios_round_robin(self):
        fuzzer = TraceFuzzer(seed=0)
        names = [fuzzer.case(i).scenario for i in range(len(SCENARIO_NAMES))]
        assert names == list(SCENARIO_NAMES)

    def test_icounts_strictly_increase(self):
        for iteration in range(6):
            trace = TraceFuzzer(seed=3).case(iteration).trace
            icounts = [access.icount for access in trace]
            assert icounts == sorted(icounts)
            assert len(set(icounts)) == len(icounts)

    def test_addresses_fit_geometry(self):
        for iteration in range(6):
            case = TraceFuzzer(seed=4).case(iteration)
            limit = 1 << case.geometry.address_bits
            assert all(0 <= a.address < limit for a in case.trace)
            assert all(a.address % WORD_BYTES == 0 for a in case.trace)

    def test_trace_length_bounded(self):
        fuzzer = TraceFuzzer(seed=0, max_accesses=100)
        for iteration in range(12):
            case = fuzzer.case(iteration)
            assert 0 < len(case.trace) <= 100


class TestScenarioBias:
    """Each generator must actually produce the corner it claims."""

    def _case(self, scenario):
        fuzzer = TraceFuzzer(seed=11)
        index = SCENARIO_NAMES.index(scenario)
        return fuzzer.case(index)

    def test_write_runs_are_write_heavy(self):
        case = self._case("write_runs")
        writes = sum(1 for a in case.trace if a.is_write)
        assert writes / len(case.trace) > 0.6

    def test_silent_dirty_repeats_words(self):
        case = self._case("silent_dirty")
        words = {a.word for a in case.trace}
        assert len(words) <= 4

    def test_eviction_storm_overflows_ways(self):
        case = self._case("eviction_storm")
        g = case.geometry
        tags_per_set = {}
        for access in case.trace:
            set_index = (access.address >> g.offset_bits) & (g.num_sets - 1)
            tag = access.address >> (g.offset_bits + g.index_bits)
            tags_per_set.setdefault(set_index, set()).add(tag)
        assert any(len(tags) > g.associativity for tags in tags_per_set.values())

    def test_way_alias_stays_in_one_set(self):
        case = self._case("way_alias")
        g = case.geometry
        sets = {
            (a.address >> g.offset_bits) & (g.num_sets - 1)
            for a in case.trace
        }
        assert len(sets) == 1


class TestConfiguration:
    def test_geometry_restriction_respected(self):
        only = (CacheGeometry(size_bytes=512, associativity=2, block_bytes=32),)
        fuzzer = TraceFuzzer(seed=0, geometries=only)
        assert all(fuzzer.case(i).geometry == only[0] for i in range(8))

    def test_default_geometries(self):
        fuzzer = TraceFuzzer(seed=0)
        assert fuzzer.geometries == FUZZ_GEOMETRIES

    def test_bad_max_accesses_rejected(self):
        with pytest.raises(ValueError, match="max_accesses"):
            TraceFuzzer(max_accesses=0)

    def test_knobs_roundtrip(self):
        case = TraceFuzzer(seed=0).case(0)
        knobs = case.knobs()
        assert set(knobs) == {
            "count_miss_traffic",
            "detect_silent_writes",
            "entries",
        }

    def test_case_is_frozen(self):
        case = TraceFuzzer(seed=0).case(0)
        with pytest.raises(AttributeError):
            case.scenario = "other"
        assert isinstance(case, FuzzCase)
