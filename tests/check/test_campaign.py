"""Campaign tests: clean runs, injected bugs, shrinking, corpus replay.

The injected-bug tests are the acceptance criterion for the whole
subsystem: a deliberate off-by-one planted in the WG batched fast path
must be *caught* by the differential campaign and *shrunk* to a repro
of at most 32 accesses.
"""

import pytest

from repro.check.campaign import replay_corpus, run_check_campaign
from repro.check.corpus import CorpusEntry, iter_corpus, load_entry, save_entry
from repro.check.differential import run_differential
from repro.check.fuzz import TraceFuzzer
from repro.core.registry import CONTROLLER_NAMES
from repro.core.write_grouping import WriteGroupingController
from repro.errors import TraceFormatError


class TestCleanCampaign:
    def test_small_campaign_passes(self):
        report = run_check_campaign(seed=0, iterations=6, max_accesses=120)
        assert report.ok
        assert report.cases_run == 6 * len(CONTROLLER_NAMES)
        assert report.accesses_checked > 0
        assert set(report.scenario_cases) == {
            "mixed",
            "write_runs",
            "silent_dirty",
            "buffered_reads",
            "eviction_storm",
            "way_alias",
        }

    def test_campaign_is_deterministic(self):
        a = run_check_campaign(seed=7, iterations=4, max_accesses=80)
        b = run_check_campaign(seed=7, iterations=4, max_accesses=80)
        assert a.accesses_checked == b.accesses_checked
        assert a.scenario_cases == b.scenario_cases

    def test_unknown_technique_rejected(self):
        with pytest.raises(ValueError, match="cannot model"):
            run_check_campaign(iterations=1, techniques=("warp-drive",))

    def test_summary_mentions_status(self):
        report = run_check_campaign(seed=0, iterations=2, max_accesses=60)
        assert "OK" in report.summary()


class _CounterOffByOne:
    """Deliberate bug: the WG batched path overcounts grouped writes."""

    def __init__(self):
        self._original = WriteGroupingController._process_batch_fast

    def __enter__(self):
        original = self._original

        def buggy(controller, batch):
            original(controller, batch)
            controller.counts.grouped_writes += 1

        WriteGroupingController._process_batch_fast = buggy
        return self

    def __exit__(self, *exc):
        WriteGroupingController._process_batch_fast = self._original
        return False


class _LostWritebackAlias:
    """Deliberate bug: drop one buffered modification per batched flush.

    A realistic data-plane bug (not just a counter): the batched WG
    path 'forgets' one modified word, so a grouped write-back silently
    loses data and the final memory image diverges from the oracle and
    the scalar engine.
    """

    def __init__(self):
        self._original = WriteGroupingController._process_batch_fast

    def __enter__(self):
        original = self._original

        def buggy(controller, batch):
            original(controller, batch)
            for entry in controller.buffer_entries:
                modified = entry.set_buffer._modified  # noqa: SLF001
                if len(modified) > 1:
                    modified.pop()
                    break

        WriteGroupingController._process_batch_fast = buggy
        return self

    def __exit__(self, *exc):
        WriteGroupingController._process_batch_fast = self._original
        return False


class TestInjectedBugs:
    def test_counter_off_by_one_caught_and_shrunk(self):
        """Acceptance criterion: caught, and shrunk to <= 32 accesses."""
        with _CounterOffByOne():
            report = run_check_campaign(
                seed=0, iterations=4, techniques=("wg",), max_accesses=300
            )
        assert not report.ok
        assert len(report.failures) == 4
        for failure in report.failures:
            assert failure.technique == "wg"
            assert any(
                "grouped_writes" in d for d in failure.divergences
            )
            assert len(failure.trace) <= 32
            assert len(failure.trace) <= failure.original_length

    def test_lost_writeback_caught(self):
        with _LostWritebackAlias():
            report = run_check_campaign(
                seed=0,
                iterations=6,
                techniques=("wg",),
                max_accesses=300,
                shrink=False,
            )
        assert not report.ok
        # A dropped modification must surface as a data/counter diff,
        # not slip through as a pure perf difference.
        assert any(
            "memory" in d or "events" in d or "counts" in d
            for failure in report.failures
            for d in failure.divergences
        )

    def test_no_shrink_keeps_original_trace(self):
        with _CounterOffByOne():
            report = run_check_campaign(
                seed=0,
                iterations=1,
                techniques=("wg",),
                max_accesses=200,
                shrink=False,
            )
        failure = report.failures[0]
        assert len(failure.trace) == failure.original_length

    def test_failure_describe_is_replayable(self):
        with _CounterOffByOne():
            report = run_check_campaign(
                seed=0, iterations=1, techniques=("wg",), max_accesses=200
            )
        text = report.failures[0].describe()
        assert "wg" in text
        assert "seed 0" in text
        assert "shrunk to" in text


class TestCorpus:
    def test_roundtrip(self, tmp_path):
        case = TraceFuzzer(seed=3).case(1)
        entry = CorpusEntry(
            technique="wg_rb",
            geometry=case.geometry,
            trace=case.trace,
            batch_size=case.batch_size,
            knobs=case.knobs(),
            scenario=case.scenario,
            seed=3,
            iteration=1,
            divergences=["example divergence"],
        )
        path = save_entry(tmp_path, entry)
        loaded = load_entry(path)
        assert loaded.technique == entry.technique
        assert loaded.geometry == entry.geometry
        assert loaded.trace == entry.trace
        assert loaded.batch_size == entry.batch_size
        assert loaded.knobs == entry.knobs
        assert loaded.divergences == entry.divergences

    def test_malformed_entry_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 1, "technique": "wg"}')
        with pytest.raises(TraceFormatError, match="malformed"):
            load_entry(path)

    def test_unreadable_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all {")
        with pytest.raises(TraceFormatError, match="unreadable"):
            load_entry(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(TraceFormatError, match="version"):
            load_entry(path)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="does not exist"):
            list(iter_corpus(tmp_path / "nope"))


class TestReplay:
    def test_saved_failures_replay_and_pass_once_fixed(self, tmp_path):
        corpus = tmp_path / "corpus"
        with _CounterOffByOne():
            campaign = run_check_campaign(
                seed=0,
                iterations=2,
                techniques=("wg",),
                max_accesses=200,
                corpus_dir=str(corpus),
            )
            assert not campaign.ok
            assert all(f.corpus_path is not None for f in campaign.failures)
            # Bug still present: every saved repro still diverges.
            broken = replay_corpus(str(corpus))
            assert len(broken.failures) == len(campaign.failures)
        # Bug 'fixed' (patch removed): the same corpus must go green.
        fixed = replay_corpus(str(corpus))
        assert fixed.ok
        assert fixed.cases_run == len(campaign.failures)
        assert fixed.techniques == ("wg",)

    def test_replay_checks_shrunk_not_original(self, tmp_path):
        corpus = tmp_path / "corpus"
        with _CounterOffByOne():
            run_check_campaign(
                seed=0,
                iterations=1,
                techniques=("wg",),
                max_accesses=300,
                corpus_dir=str(corpus),
            )
        entries = list(iter_corpus(str(corpus)))
        assert entries
        assert all(len(entry.trace) <= 32 for entry in entries)


class TestDifferentialDirect:
    """run_differential as a library call (what the tests above build on)."""

    @pytest.mark.parametrize("technique", CONTROLLER_NAMES)
    def test_clean_on_fuzzed_case(self, technique):
        case = TraceFuzzer(seed=9).case(2)
        divergences = run_differential(
            case.trace,
            technique,
            case.geometry,
            batch_size=case.batch_size,
            invariants=True,
            **case.knobs(),
        )
        assert divergences == []

    def test_empty_trace_clean(self, tiny_geometry):
        assert run_differential([], "wg", tiny_geometry) == []
