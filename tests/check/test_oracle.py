"""Unit tests for the reference oracle itself.

The oracle's job is to be *obviously* right, so these tests pin its
behaviour against hand-computed micro-scenarios and the simple
sequential-memory helpers in ``conftest`` — never against the engines
(that comparison lives in the differential tests; agreeing with the
engines is exactly what the oracle must not be defined by).
"""

import pytest

from repro.cache.config import CacheGeometry
from repro.check.oracle import ORACLE_TECHNIQUES, ReferenceOracle
from repro.trace.record import AccessType, MemoryAccess, WORD_BYTES

from tests.conftest import (
    make_random_trace,
    oracle_final_memory,
    oracle_read_values,
)

TINY = CacheGeometry(size_bytes=512, associativity=2, block_bytes=32)


def read(icount, address):
    return MemoryAccess(icount=icount, kind=AccessType.READ, address=address)


def write(icount, address, value):
    return MemoryAccess(
        icount=icount, kind=AccessType.WRITE, address=address, value=value
    )


class TestConstruction:
    def test_unknown_technique_rejected(self):
        with pytest.raises(ValueError, match="does not model"):
            ReferenceOracle("8t_all", TINY)

    @pytest.mark.parametrize("technique", ORACLE_TECHNIQUES)
    def test_known_techniques_accepted(self, technique):
        assert ReferenceOracle(technique, TINY).technique == technique


class TestFunctionalSemantics:
    """Whatever the technique, reads must see sequential memory."""

    @pytest.mark.parametrize("technique", ORACLE_TECHNIQUES)
    def test_read_values_follow_sequential_memory(self, technique):
        trace = make_random_trace(500, seed=31, word_span=120)
        run = ReferenceOracle(technique, TINY).run(trace)
        assert run.read_values == oracle_read_values(trace)

    @pytest.mark.parametrize("technique", ORACLE_TECHNIQUES)
    def test_final_memory_after_drain(self, technique):
        trace = make_random_trace(500, seed=32, word_span=120)
        run = ReferenceOracle(technique, TINY).run(trace)
        assert run.memory == oracle_final_memory(trace)

    @pytest.mark.parametrize("technique", ORACLE_TECHNIQUES)
    def test_write_read_same_word(self, technique):
        run = ReferenceOracle(technique, TINY).run(
            [write(1, 0x40, 7), read(2, 0x40)]
        )
        assert run.read_values == [None, 7]
        assert run.memory == {0x40 // WORD_BYTES: 7}


class TestEventAccounting:
    def test_conventional_counts_each_request_as_row_access(self):
        run = ReferenceOracle("conventional", TINY).run(
            [write(1, 0x00, 1), write(2, 0x08, 2), read(3, 0x00)]
        )
        assert run.events["row_writes"] == 2
        assert run.events["row_reads"] == 1

    def test_rmw_write_is_read_plus_write(self):
        run = ReferenceOracle("rmw", TINY).run([write(1, 0x00, 1)])
        assert run.counts["rmw_operations"] == 1
        # An RMW activates the row twice: full-row read + full-row write.
        assert run.events["row_reads"] + run.events["row_writes"] == 2

    def test_wg_groups_same_set_writes(self):
        # Two writes to the same block: buffered, then one grouped
        # write-back on drain.
        run = ReferenceOracle("wg", TINY).run(
            [write(1, 0x00, 1), write(2, 0x08, 2)]
        )
        assert run.counts["set_buffer_fills"] >= 1
        assert run.counts["final_writebacks"] == 1
        assert run.memory == {0: 1, 1: 2}

    def test_wg_detects_silent_write(self):
        run = ReferenceOracle("wg", TINY).run(
            [write(1, 0x00, 5), write(2, 0x00, 5)]
        )
        assert run.counts["silent_writes_detected"] == 1

    def test_wg_silent_detection_off(self):
        run = ReferenceOracle(
            "wg", TINY, detect_silent_writes=False
        ).run([write(1, 0x00, 5), write(2, 0x00, 5)])
        assert run.counts["silent_writes_detected"] == 0

    def test_wg_rb_bypasses_buffered_read(self):
        run = ReferenceOracle("wg_rb", TINY).run(
            [write(1, 0x00, 9), read(2, 0x00)]
        )
        assert run.counts["bypassed_reads"] == 1
        assert run.read_values == [None, 9]

    def test_wg_without_rb_never_bypasses(self):
        run = ReferenceOracle("wg", TINY).run(
            [write(1, 0x00, 9), read(2, 0x00)]
        )
        assert run.counts["bypassed_reads"] == 0
        assert run.read_values == [None, 9]


class TestResidency:
    def test_eviction_of_dirty_block_counted(self):
        # Three distinct tags into a 2-way set force one eviction.
        g = TINY
        stride = 1 << (g.offset_bits + g.index_bits)
        trace = [write(i + 1, tag * stride, tag + 1) for tag, i in
                 zip(range(3), range(3))]
        run = ReferenceOracle("conventional", g).run(trace)
        assert run.stats["write_misses"] == 3
        assert run.stats["evictions"] == 1
        assert run.stats["dirty_evictions"] == 1

    def test_miss_traffic_accounting_charges_fills(self):
        plain = ReferenceOracle("conventional", TINY).run([write(1, 0x00, 1)])
        charged = ReferenceOracle(
            "conventional", TINY, count_miss_traffic=True
        ).run([write(1, 0x00, 1)])
        assert charged.counts["rmw_operations"] == 1
        assert plain.counts["rmw_operations"] == 0
        charged_rows = charged.events["row_reads"] + charged.events["row_writes"]
        plain_rows = plain.events["row_reads"] + plain.events["row_writes"]
        assert charged_rows > plain_rows
