"""Ablation — counting miss traffic (fills + dirty evictions).

The paper's evaluation counts request-level array accesses only.  This
bench turns on fill/eviction accounting: fills (each an RMW) add equal
traffic to every technique, so reductions dilute — noticeably for our
synthetic footprints, which miss more than real SPEC would on a 64 KB
L1 — but every benchmark keeps a solidly positive reduction and the
technique ordering is unchanged, supporting the paper's choice to
report request-level counts.
"""

from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY
from repro.sim.simulator import run_simulation
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

from conftest import BENCH_ACCESSES, run_once

BENCHMARKS = ("bwaves", "mcf", "gcc", "libquantum", "gamess")


def _ablation() -> FigureResult:
    rows = []
    deltas = []
    for name in BENCHMARKS:
        trace = materialize(generate_trace(get_profile(name), BENCH_ACCESSES))
        plain = {}
        charged = {}
        for technique in ("rmw", "wg", "wg_rb"):
            plain[technique] = run_simulation(
                trace, technique, BASELINE_GEOMETRY
            ).array_accesses
            charged[technique] = run_simulation(
                trace, technique, BASELINE_GEOMETRY, count_miss_traffic=True
            ).array_accesses
        reduction_plain = 1 - plain["wg_rb"] / plain["rmw"]
        reduction_charged = 1 - charged["wg_rb"] / charged["rmw"]
        deltas.append(abs(reduction_plain - reduction_charged))
        rows.append(
            (name, 100 * reduction_plain, 100 * reduction_charged)
        )
    return FigureResult(
        figure_id="ablation_miss_traffic",
        title="Ablation: WG+RB reduction without/with miss-traffic accounting (%)",
        headers=("benchmark", "requests only", "incl. fills/evictions"),
        rows=rows,
        summary={"mean_abs_delta_pct": 100 * sum(deltas) / len(deltas)},
    )


def test_ablation_miss_traffic(benchmark, report):
    result = run_once(benchmark, _ablation)
    report(result)
    # Conclusions stable: reductions dilute but stay clearly positive
    # and the per-benchmark ordering is preserved.
    assert result.summary["mean_abs_delta_pct"] < 20.0
    plain = [row[1] for row in result.rows]
    charged = [row[2] for row in result.rows]
    assert all(value > 5.0 for value in charged)
    assert sorted(range(len(plain)), key=plain.__getitem__) == sorted(
        range(len(charged)), key=charged.__getitem__
    )
