"""Hot-path throughput benchmark — emits ``BENCH_hotpath.json``.

Standalone script (not a pytest benchmark)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --out BENCH_hotpath.json

The JSON report carries the per-technique results plus an
``environment`` fingerprint (commit, Python, CPU model/count, hostname)
and a UTC timestamp, so an archived snapshot is interpretable long
after the runner that produced it is gone.

The static floors here are deliberately conservative (shared CI runners
are noisy; the script should only trip on a structural regression — a
technique falling off its fast path — not on scheduler jitter).  The CI
perf-smoke job now gates through ``repro-8t perf compare`` instead,
which ratchets these same floors upward against a rolling bench-history
baseline; this script remains the simple zero-history entry point.
Every run also cross-checks that both engines produce identical event
logs, so it doubles as an end-to-end equivalence test.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cache.config import BASELINE_GEOMETRY
from repro.engine.bench import bench_report, run_hotpath_bench
from repro.obs.perf import FALLBACK_SPEEDUP_FLOORS, environment_fingerprint, utc_timestamp

#: Minimum acceptable batched/scalar speedup per technique.  Structural
#: floors, not performance targets — see the module docstring.  These
#: are the same fallback floors ``repro-8t perf compare`` ratchets up
#: from once the bench-history ledger has enough samples.
SPEEDUP_FLOORS = dict(FALLBACK_SPEEDUP_FLOORS)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="bwaves")
    parser.add_argument("--accesses", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", default="BENCH_hotpath.json", help="report output path"
    )
    parser.add_argument(
        "--engine",
        action="append",
        dest="engines",
        choices=["scalar", "batched", "columnar"],
        help="engine tier to measure (repeatable); scalar and batched "
        "are always timed, '--engine columnar' adds the columnar tier "
        "(needs NumPy; skipped with a warning when absent)",
    )
    parser.add_argument(
        "--no-floors",
        action="store_true",
        help="measure only; never fail on a speedup regression",
    )
    args = parser.parse_args(argv)

    engines = {"scalar", "batched"}
    engines.update(args.engines or ())
    if "columnar" in engines:
        from repro.engine.columnar import HAVE_NUMPY

        if not HAVE_NUMPY:
            print(
                "warning: --engine columnar requested but NumPy is not "
                "installed (pip install repro-8t[columnar]); skipping "
                "the columnar tier",
                file=sys.stderr,
            )
            engines.discard("columnar")

    results = run_hotpath_bench(
        accesses=args.accesses,
        benchmark=args.benchmark,
        seed=args.seed,
        repeats=args.repeats,
        engines=sorted(engines),
    )
    floors = None if args.no_floors else SPEEDUP_FLOORS
    report = bench_report(
        results,
        args.benchmark,
        BASELINE_GEOMETRY,
        floors=floors,
        environment=environment_fingerprint(),
        timestamp=utc_timestamp(),
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for result in results:
        line = (
            f"{result.technique:<14} scalar {result.scalar_aps:>12,.0f}/s   "
            f"batched {result.batched_aps:>12,.0f}/s   "
            f"speedup {result.speedup:.2f}x"
        )
        if result.columnar_seconds is not None:
            line += (
                f"   columnar {result.columnar_aps:>12,.0f}/s   "
                f"col/batched {result.columnar_speedup:.2f}x"
            )
        print(line)
    print(f"wrote {args.out}")
    if report["regressions"]:
        for regression in report["regressions"]:
            print(
                f"REGRESSION: {regression['technique']} speedup "
                f"{regression['speedup']:.2f}x is below the "
                f"{regression['floor']:.2f}x floor",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
