"""Hot-path throughput benchmark — emits ``BENCH_hotpath.json``.

Standalone script (not a pytest benchmark): the CI perf-smoke job runs
it directly, uploads the JSON artifact, and fails the build when any
technique's batched/scalar speedup drops below its pinned floor::

    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --out BENCH_hotpath.json

The floors are deliberately conservative relative to what the batched
engine achieves on a quiet developer machine (roughly 4x for
conventional/rmw and 3x for wg/wg_rb): shared CI runners are noisy, and
the job should only trip on a structural regression — a technique
falling off its fast path — not on scheduler jitter.  Every run also
cross-checks that both engines produce identical event logs, so this
doubles as an end-to-end equivalence test.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cache.config import BASELINE_GEOMETRY
from repro.engine.bench import bench_report, run_hotpath_bench

#: Minimum acceptable batched/scalar speedup per technique.  Structural
#: floors, not performance targets — see the module docstring.
SPEEDUP_FLOORS = {
    "conventional": 2.0,
    "rmw": 2.0,
    "wg": 1.4,
    "wg_rb": 1.4,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmark", default="bwaves")
    parser.add_argument("--accesses", type=int, default=200_000)
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", default="BENCH_hotpath.json", help="report output path"
    )
    parser.add_argument(
        "--no-floors",
        action="store_true",
        help="measure only; never fail on a speedup regression",
    )
    args = parser.parse_args(argv)

    results = run_hotpath_bench(
        accesses=args.accesses,
        benchmark=args.benchmark,
        seed=args.seed,
        repeats=args.repeats,
    )
    floors = None if args.no_floors else SPEEDUP_FLOORS
    report = bench_report(
        results, args.benchmark, BASELINE_GEOMETRY, floors=floors
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for result in results:
        print(
            f"{result.technique:<14} scalar {result.scalar_aps:>12,.0f}/s   "
            f"batched {result.batched_aps:>12,.0f}/s   "
            f"speedup {result.speedup:.2f}x"
        )
    print(f"wrote {args.out}")
    if report["regressions"]:
        for regression in report["regressions"]:
            print(
                f"REGRESSION: {regression['technique']} speedup "
                f"{regression['speedup']:.2f}x is below the "
                f"{regression['floor']:.2f}x floor",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
