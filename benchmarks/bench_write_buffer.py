"""Design-point comparison — WG vs a coalescing write buffer at equal
storage.

At the baseline geometry, WG's Set-Buffer is 128 B (one set).  A plain
coalescing write buffer with 4 x 32 B block entries spends the same
latch budget.  The trade is structural: the write buffer's four
independent block entries give it *reach* (it tracks scattered writes
WG's single set cannot), while WG's row pre-image makes drains
single-access and silent stores free.

Measured outcome — honestly mixed, and informative: WG wins clearly on
the write-intensive streaming codes the paper targets (bwaves, wrf:
silent elision dominates), the write buffer wins on scattered-write
integer codes (mcf, gcc: reach dominates), and WG+RB's read bypass
recovers most of the gap on average.  The techniques are
complementary, not redundant — and WG's win region is exactly where
the RMW problem is worst (Figure 3's write-heavy benchmarks).
"""

from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY
from repro.sim.simulator import run_simulation
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

from conftest import BENCH_ACCESSES, run_once

BENCHMARKS = ("bwaves", "wrf", "gcc", "mcf", "gamess", "hmmer")
#: 4 block entries == one Set-Buffer of latches at 64KB/4-way/32B.
EQUAL_STORAGE_ENTRIES = 4


def _compare() -> FigureResult:
    rows = []
    sums = {"wg": 0.0, "wg_rb": 0.0, "wb": 0.0}
    per_benchmark = {}
    for name in BENCHMARKS:
        trace = materialize(generate_trace(get_profile(name), BENCH_ACCESSES))
        rmw = run_simulation(trace, "rmw", BASELINE_GEOMETRY).array_accesses
        wg = run_simulation(trace, "wg", BASELINE_GEOMETRY).array_accesses
        wgrb = run_simulation(trace, "wg_rb", BASELINE_GEOMETRY).array_accesses
        wb = run_simulation(
            trace,
            "write_buffer",
            BASELINE_GEOMETRY,
            entries=EQUAL_STORAGE_ENTRIES,
        ).array_accesses
        reductions = {
            "wg": 1 - wg / rmw,
            "wg_rb": 1 - wgrb / rmw,
            "wb": 1 - wb / rmw,
        }
        per_benchmark[name] = reductions
        for key in sums:
            sums[key] += reductions[key]
        rows.append(
            (
                name,
                100 * reductions["wg"],
                100 * reductions["wg_rb"],
                100 * reductions["wb"],
            )
        )
    count = len(BENCHMARKS)
    rows.append(
        ("AVG",)
        + tuple(100 * sums[key] / count for key in ("wg", "wg_rb", "wb"))
    )
    return FigureResult(
        figure_id="write_buffer",
        title=(
            "Design point: reduction vs RMW (%) — WG family vs equal-"
            f"storage coalescing write buffer ({EQUAL_STORAGE_ENTRIES} "
            "block entries)"
        ),
        headers=("benchmark", "WG", "WG+RB", "write buffer"),
        rows=rows,
        summary={
            "mean_wg_pct": 100 * sums["wg"] / count,
            "mean_wgrb_pct": 100 * sums["wg_rb"] / count,
            "mean_write_buffer_pct": 100 * sums["wb"] / count,
            "bwaves_wg_minus_wb": 100
            * (per_benchmark["bwaves"]["wg"] - per_benchmark["bwaves"]["wb"]),
            "mcf_wb_minus_wg": 100
            * (per_benchmark["mcf"]["wb"] - per_benchmark["mcf"]["wg"]),
        },
    )


def test_write_buffer_comparison(benchmark, report):
    result = run_once(benchmark, _compare)
    report(result)
    # Both mechanisms are real: double-digit average reductions.
    assert result.summary["mean_write_buffer_pct"] > 10.0
    assert result.summary["mean_wg_pct"] > 10.0
    # WG wins where the paper's problem lives (write-intensive
    # streaming with silent stores)...
    assert result.summary["bwaves_wg_minus_wb"] > 3.0
    # ...the write buffer's reach wins on scattered-write codes...
    assert result.summary["mcf_wb_minus_wg"] > 3.0
    # ...and WG+RB closes most of the average gap.
    assert (
        result.summary["mean_wgrb_pct"]
        > result.summary["mean_write_buffer_pct"] - 2.0
    )
