"""Figure 9 — the headline result: access-frequency reduction vs RMW.

Paper (64 KB / 4-way / 32 B): WG 27 % and WG+RB 33 % on average;
bwaves tops the suite at 47 % for WG; WG+RB wins on every benchmark.
"""

from repro.analysis.reductions import figure9_access_reduction

from conftest import BENCH_ACCESSES, run_once


def test_fig9_access_reduction(benchmark, report):
    result = run_once(
        benchmark, figure9_access_reduction, accesses=BENCH_ACCESSES
    )
    report(result)
    assert 18.0 <= result.summary["mean_wg_pct"] <= 34.0
    assert 25.0 <= result.summary["mean_wgrb_pct"] <= 41.0
    assert 40.0 <= result.summary["max_wg_pct"] <= 53.0
    # WG+RB strictly better in every benchmark row.
    for row in result.rows:
        assert row[2] >= row[1], row
