"""Related-work comparison — WG/WG+RB vs Chang [2] and Park [11].

Puts the paper's Section 2 discussion on a quantitative footing across
three axes on the same traces:

* array accesses (the paper's Figure 9 metric),
* mean read latency from the port-contention model (Park's banked RMW
  recovers concurrency but not access count),
* ECC + buffer area overhead (Chang's word-granular writes eliminate
  RMW entirely but force multi-bit ECC: ~21.9 % check-bit overhead vs
  12.5 % for interleaved SEC-DED).

A notable emergent result: WG's access reduction lands in the same band
as eliminating RMW outright (Chang) and can edge past it, because
silent-write elimination removes writes that even a no-RMW array must
perform — while keeping SEC-DED-friendly interleaving.
"""

from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY
from repro.perf.timing import TimingSimulator
from repro.power.area import AreaModel
from repro.sim.simulator import run_simulation
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

from conftest import BENCH_ACCESSES, run_once

BENCHMARKS = ("bwaves", "gcc", "mcf", "hmmer")
TECHNIQUES = ("rmw", "rmw_local", "word_write", "pulse_assist", "wg", "wg_rb")


def _compare() -> FigureResult:
    area = AreaModel(node_nm=45)
    rows = []
    totals = {technique: 0.0 for technique in TECHNIQUES}
    latency_totals = {technique: 0.0 for technique in TECHNIQUES}
    for name in BENCHMARKS:
        trace = materialize(generate_trace(get_profile(name), BENCH_ACCESSES))
        rmw_accesses = run_simulation(trace, "rmw", BASELINE_GEOMETRY).array_accesses
        for technique in TECHNIQUES:
            result = run_simulation(trace, technique, BASELINE_GEOMETRY)
            reduction = 1 - result.array_accesses / rmw_accesses
            totals[technique] += reduction
            perf = TimingSimulator(technique, BASELINE_GEOMETRY).run(trace)
            latency_totals[technique] += perf.mean_read_latency
            rows.append(
                (
                    f"{name}/{technique}",
                    100 * reduction,
                    perf.mean_read_latency,
                )
            )
    count = len(BENCHMARKS)
    summary = {
        f"mean_reduction_{technique}": 100 * totals[technique] / count
        for technique in TECHNIQUES
    }
    summary.update(
        {
            f"mean_latency_{technique}": latency_totals[technique] / count
            for technique in TECHNIQUES
        }
    )
    summary["ecc_overhead_secded_pct"] = 100 * area.ecc_overhead(
        BASELINE_GEOMETRY, "secded"
    )
    summary["ecc_overhead_multibit_pct"] = 100 * area.ecc_overhead(
        BASELINE_GEOMETRY, "multi_bit"
    )
    return FigureResult(
        figure_id="related_work",
        title=(
            "Related work: reduction vs RMW (%) and mean read latency "
            "(cycles) per benchmark/technique"
        ),
        headers=("benchmark/technique", "reduction %", "read latency"),
        rows=rows,
        summary=summary,
    )


def test_related_work_comparison(benchmark, report):
    result = run_once(benchmark, _compare)
    report(result)
    # Park: same access count as RMW (reduction ~0) but better latency.
    assert abs(result.summary["mean_reduction_rmw_local"]) < 1e-6
    assert (
        result.summary["mean_latency_rmw_local"]
        <= result.summary["mean_latency_rmw"]
    )
    # Chang: eliminates the RMW tax at the access level — landing in
    # the same band as WG.  (WG can even edge it out: silent-write
    # elimination removes accesses that a no-RMW array still makes.)
    assert result.summary["mean_reduction_word_write"] > 20.0
    assert (
        abs(
            result.summary["mean_reduction_word_write"]
            - result.summary["mean_reduction_wg"]
        )
        < 8.0
    )
    # ...and it pays nearly double the ECC storage.
    assert result.summary["ecc_overhead_multibit_pct"] > 1.7 * result.summary[
        "ecc_overhead_secded_pct"
    ]
    # WG+RB remains the best RMW-compatible (interleaved) technique.
    assert (
        result.summary["mean_reduction_wg_rb"]
        > result.summary["mean_reduction_wg"]
        > 0.0
    )
