"""Endgame — total cache energy across the paper's argument chain.

One table pricing the introduction's pitch: a 6T cache stuck at its
Vmin, an 8T cache at its (much lower) Vmin paying the RMW tax, and the
8T+WG+RB configuration the paper argues for.  Dynamic energy comes from
the event logs at each floor voltage; leakage is integrated over the
timing model's elapsed cycles at the floor frequency.
"""

from repro.analysis.dvfs_energy import dvfs_energy_endgame

from conftest import BENCH_ACCESSES, run_once

BENCHMARKS = ("bwaves", "wrf", "lbm", "gcc", "mcf", "gamess", "sphinx3")


def test_dvfs_energy_endgame(benchmark, report):
    result = run_once(
        benchmark,
        dvfs_energy_endgame,
        accesses=max(4000, BENCH_ACCESSES // 2),
        benchmarks=BENCHMARKS,
    )
    report(result)
    # Full ordering: WG+RB < RMW < 6T on mean total energy.
    assert (
        result.summary["mean_8t_wgrb_nj"]
        < result.summary["mean_8t_rmw_nj"]
        < result.summary["mean_6t_nj"]
    )
    # Voltage scaling + WG+RB together halve (or better) the 6T energy.
    assert result.summary["wgrb_vs_6t_saving_pct"] > 45.0
    # And WG+RB recovers a solid share of the RMW tax at low voltage.
    assert result.summary["wgrb_vs_rmw_saving_pct"] > 20.0
