"""Ablation — seed sensitivity of the headline metric.

The paper could not repeat Pin runs ("Since Pin simulations are not
repeatable, we run all evaluations and techniques in one run").  Our
traces are deterministic per seed, so we can put error bars on the
Figure 9 averages: this bench runs the campaign across seeds and
asserts the mean reduction moves by at most a few points.
"""

from repro.analysis.result import FigureResult
from repro.sim.experiment import ExperimentConfig
from repro.sim.stability import seed_stability

from conftest import BENCH_ACCESSES, run_once

SEEDS = (2012, 7, 1234, 99)
BENCHMARKS = ("bwaves", "lbm", "gcc", "mcf", "gamess", "hmmer")


def _stability() -> FigureResult:
    config = ExperimentConfig(
        benchmarks=BENCHMARKS,
        techniques=("rmw", "wg", "wg_rb"),
        accesses_per_benchmark=max(4000, BENCH_ACCESSES // 2),
    )
    results = seed_stability(config, seeds=SEEDS)
    rows = []
    for technique, stat in results.items():
        rows.append(
            (
                technique,
                100 * stat.mean,
                100 * stat.std,
                100 * stat.spread,
            )
        )
    return FigureResult(
        figure_id="ablation_seeds",
        title=(
            f"Ablation: Figure 9 mean reduction across {len(SEEDS)} seeds (%)"
        ),
        headers=("technique", "mean", "std", "spread"),
        rows=rows,
        summary={
            f"{technique}_spread_pct": 100 * stat.spread
            for technique, stat in results.items()
        },
    )


def test_ablation_seed_stability(benchmark, report):
    result = run_once(benchmark, _stability)
    report(result)
    assert result.summary["wg_spread_pct"] < 5.0
    assert result.summary["wg_rb_spread_pct"] < 5.0
