"""Figure 10 — sensitivity to block size (32 KB cache, 64 B blocks).

Paper: reductions improve to 29 % (WG) and 37 % (WG+RB) because bigger
blocks raise the Set-Buffer hit rate.
"""

from repro.analysis.reductions import figure10_block_size, figure9_access_reduction

from conftest import BENCH_ACCESSES, run_once


def test_fig10_block_size(benchmark, report):
    result = run_once(benchmark, figure10_block_size, accesses=BENCH_ACCESSES)
    report(result)
    baseline = figure9_access_reduction(accesses=BENCH_ACCESSES)
    # Larger blocks help both techniques (the paper's stated mechanism).
    assert result.summary["mean_wg_pct"] > baseline.summary["mean_wg_pct"]
    assert result.summary["mean_wgrb_pct"] > baseline.summary["mean_wgrb_pct"]
