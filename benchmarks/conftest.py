"""Shared plumbing for the figure-reproduction benchmarks.

Every benchmark reproduces one of the paper's figures/tables, times the
reproduction via pytest-benchmark, prints the figure as a text table
(visible with ``pytest benchmarks/ --benchmark-only -s``) and writes it
to ``benchmarks/results/<figure_id>.txt`` plus a CSV next to it.

Scale knob: set ``REPRO_BENCH_ACCESSES`` (default 12000) to trade
precision for runtime; the paper's qualitative results are stable from
a few thousand accesses per benchmark.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.export import figure_to_csv
from repro.analysis.result import FigureResult

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "12000"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print a reproduced figure and persist it to disk."""

    def _report(result: FigureResult) -> FigureResult:
        text = result.render()
        print()
        print(text)
        (results_dir / f"{result.figure_id.replace('.', '_')}.txt").write_text(
            text + "\n"
        )
        figure_to_csv(
            result, results_dir / f"{result.figure_id.replace('.', '_')}.csv"
        )
        return result

    return _report


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a full-figure reproduction exactly once.

    Campaign-scale reproductions take seconds; pedantic single-round
    timing keeps the harness honest without multiplying runtime.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
