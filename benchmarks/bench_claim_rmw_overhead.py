"""Section 1 claim — RMW's access-frequency overhead.

Paper: RMW raises cache access frequency by more than 32 % on average,
with a 47 % maximum.
"""

from repro.analysis.rmw_overhead import claim_rmw_overhead

from conftest import BENCH_ACCESSES, run_once


def test_claim_rmw_overhead(benchmark, report):
    result = run_once(benchmark, claim_rmw_overhead, accesses=BENCH_ACCESSES)
    report(result)
    assert 26.0 <= result.summary["mean_overhead_pct"] <= 42.0
    assert 42.0 <= result.summary["max_overhead_pct"] <= 55.0
