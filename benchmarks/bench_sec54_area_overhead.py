"""Section 5.4 — Set-Buffer / Tag-Buffer area overhead.

Paper: the Set-Buffer is one cache set (128 B baseline, <0.2 % of the
cache) and the Tag-Buffer is under 150 bits at 48-bit addresses.
"""

from repro.analysis.area import section54_area
from repro.cache.config import BASELINE_GEOMETRY, CacheGeometry

from conftest import run_once

GEOMETRIES = (
    BASELINE_GEOMETRY,
    CacheGeometry(32 * 1024, 4, 64),
    CacheGeometry(32 * 1024, 4, 32),
    CacheGeometry(128 * 1024, 4, 32),
)


def test_sec54_area_overhead(benchmark, report):
    result = run_once(benchmark, section54_area, geometries=GEOMETRIES)
    report(result)
    assert result.summary["set_buffer_overhead_pct"] < 0.2
    assert result.summary["tag_buffer_bits"] < 150.0
