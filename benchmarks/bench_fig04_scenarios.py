"""Figure 4 — consecutive same-set scenario breakdown (RR/RW/WW/WR).

Paper: 27 % of consecutive accesses are same-set; RR and WW dominate;
WW peaks at 24 % for bwaves.
"""

from repro.analysis.scenarios import figure4_scenarios

from conftest import BENCH_ACCESSES, run_once


def test_fig4_scenarios(benchmark, report):
    result = run_once(benchmark, figure4_scenarios, accesses=BENCH_ACCESSES)
    report(result)
    by_name = {row[0]: row for row in result.rows}
    # bwaves WW share leads the suite (paper: 24 %).
    ww_shares = {name: row[3] for name, row in by_name.items() if name != "AVG"}
    top3 = sorted(ww_shares, key=ww_shares.get, reverse=True)[:3]
    assert "bwaves" in top3
    assert result.summary["mean_same_set_pct"] > 20.0
