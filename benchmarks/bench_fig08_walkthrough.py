"""Figure 8 — the paper's worked request-stream example.

Replays R_a W_b W_b R_b R_b W_b W_a(silent) R_b R_a through all four
techniques and reports the array-access counts (RMW 13, WG 9, WG+RB 5,
conventional 9).
"""

from repro.analysis.result import FigureResult
from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheGeometry
from repro.core.registry import CONTROLLER_NAMES, make_controller
from repro.trace.record import AccessType, MemoryAccess

from conftest import run_once

SET_A = 0x00
SET_B = 0x20


def _stream():
    def R(i, addr):
        return MemoryAccess(icount=i, kind=AccessType.READ, address=addr)

    def W(i, addr, value):
        return MemoryAccess(
            icount=i, kind=AccessType.WRITE, address=addr, value=value
        )

    return [
        R(0, SET_A), W(1, SET_B, 11), W(2, SET_B, 22), R(3, SET_B),
        R(4, SET_B), W(5, SET_B, 33), W(6, SET_A, 0), R(7, SET_B), R(8, SET_A),
    ]


def _walkthrough() -> FigureResult:
    geometry = CacheGeometry(512, 2, 32)
    rows = []
    counts = {}
    for technique in CONTROLLER_NAMES:
        controller = make_controller(technique, SetAssociativeCache(geometry))
        controller.run(_stream())
        counts[technique] = controller.array_accesses
        rows.append((technique, controller.array_accesses))
    return FigureResult(
        figure_id="fig8",
        title="Figure 8: array accesses for the paper's example stream",
        headers=("technique", "array accesses"),
        rows=rows,
        summary={name: float(value) for name, value in counts.items()},
        paper_values={"rmw": 13.0, "wg": 9.0, "wg_rb": 5.0},
    )


def test_fig8_walkthrough(benchmark, report):
    result = run_once(benchmark, _walkthrough)
    report(result)
    assert result.summary["rmw"] == 13.0
    assert result.summary["wg"] == 9.0
    assert result.summary["wg_rb"] == 5.0
