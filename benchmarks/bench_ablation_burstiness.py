"""Ablation — how workload burstiness drives Write Grouping.

DESIGN.md decision 1: addresses are synthesised with real spatial
structure so geometry effects emerge.  This bench sweeps the burst
length of a controlled profile and shows the WW share and WG's benefit
rising together — the mechanism behind Figure 4 vs Figure 9.
"""

from repro.analysis.result import FigureResult
from repro.cache.address import AddressMapper
from repro.cache.config import BASELINE_GEOMETRY
from repro.sim.simulator import run_simulation
from repro.trace.stats import collect_statistics
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.profile import StreamSpec, WorkloadProfile

from conftest import BENCH_ACCESSES, run_once

BURSTS = (1.0, 2.0, 4.0, 8.0)


def _profile(burst: float) -> WorkloadProfile:
    return WorkloadProfile(
        name=f"burst-{burst}",
        read_frequency=0.26,
        write_frequency=0.14,
        silent_fraction=0.4,
        burst_mean=burst,
        type_persistence=0.7,
        streams=(
            StreamSpec("sequential", weight=3.0, region_kib=1024),
            StreamSpec("random", weight=1.0, region_kib=1024),
        ),
    )


def _ablation() -> FigureResult:
    mapper = AddressMapper(BASELINE_GEOMETRY)
    rows = []
    reductions = []
    for burst in BURSTS:
        trace = materialize(generate_trace(_profile(burst), BENCH_ACCESSES))
        stats = collect_statistics(trace, mapper.set_index)
        rmw = run_simulation(trace, "rmw", BASELINE_GEOMETRY)
        wg = run_simulation(trace, "wg", BASELINE_GEOMETRY)
        reduction = 1 - wg.array_accesses / rmw.array_accesses
        reductions.append(reduction)
        rows.append(
            (
                f"burst={burst:g}",
                100 * stats.scenarios.share("WW"),
                100 * stats.scenarios.same_set_share,
                100 * reduction,
            )
        )
    return FigureResult(
        figure_id="ablation_burst",
        title="Ablation: burst length vs WW share and WG reduction",
        headers=("profile", "WW %", "same-set %", "WG reduction %"),
        rows=rows,
        summary={
            "reduction_at_burst1": 100 * reductions[0],
            "reduction_at_burst8": 100 * reductions[-1],
        },
    )


def test_ablation_burstiness(benchmark, report):
    result = run_once(benchmark, _ablation)
    report(result)
    # Monotone: more burstiness, more grouping benefit.
    reductions = [row[3] for row in result.rows]
    assert reductions == sorted(reductions)
    assert (
        result.summary["reduction_at_burst8"]
        > result.summary["reduction_at_burst1"] + 5.0
    )
