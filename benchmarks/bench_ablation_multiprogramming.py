"""Ablation — Write Grouping under multiprogramming.

The paper evaluates single-program traces; a deployed L1-D context
switches.  This ablation time-slices four benchmarks through one cache
and sweeps the scheduling quantum.  Expected (and measured) shape: WG's
grouping windows are tens of instructions long, far shorter than any
realistic quantum, so reductions are essentially flat until quanta
shrink to absurdly small sizes — only then does Set-Buffer thrash bite.
"""

from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY
from repro.sim.simulator import run_simulation
from repro.workload.generator import generate_trace
from repro.workload.mixes import merge_traces
from repro.workload.spec2006 import get_profile

from conftest import BENCH_ACCESSES, run_once

PROGRAMS = ("bwaves", "gcc", "hmmer", "mcf")
QUANTA = (100_000, 10_000, 1_000, 100, 10)


def _ablation() -> FigureResult:
    per_program = max(2000, BENCH_ACCESSES // 2)
    traces = [
        generate_trace(get_profile(name), per_program, seed=11)
        for name in PROGRAMS
    ]
    rows = []
    reductions = {}
    for quantum in QUANTA:
        merged = merge_traces(traces, quantum_instructions=quantum)
        rmw = run_simulation(merged, "rmw", BASELINE_GEOMETRY)
        wg = run_simulation(merged, "wg", BASELINE_GEOMETRY)
        wgrb = run_simulation(merged, "wg_rb", BASELINE_GEOMETRY)
        wg_reduction = 1 - wg.array_accesses / rmw.array_accesses
        wgrb_reduction = 1 - wgrb.array_accesses / rmw.array_accesses
        reductions[quantum] = wg_reduction
        rows.append(
            (
                f"quantum={quantum}",
                100 * wg_reduction,
                100 * wgrb_reduction,
            )
        )
    return FigureResult(
        figure_id="ablation_multiprogramming",
        title=(
            "Ablation: WG/WG+RB reduction vs scheduling quantum "
            f"({'+'.join(PROGRAMS)} time-sliced, %)"
        ),
        headers=("mix", "WG", "WG+RB"),
        rows=rows,
        summary={
            "reduction_at_100k": 100 * reductions[100_000],
            "reduction_at_1k": 100 * reductions[1_000],
            "reduction_at_10": 100 * reductions[10],
        },
    )


def test_ablation_multiprogramming(benchmark, report):
    result = run_once(benchmark, _ablation)
    report(result)
    # Realistic quanta: negligible degradation (within 3 points).
    assert (
        abs(
            result.summary["reduction_at_100k"]
            - result.summary["reduction_at_1k"]
        )
        < 3.0
    )
    # Pathological 10-instruction quanta finally hurt, but WG still wins.
    assert result.summary["reduction_at_10"] > 5.0
    assert (
        result.summary["reduction_at_10"]
        < result.summary["reduction_at_100k"]
    )
