"""Figure 5 — silent write frequency.

Paper: suite average above 42 %, bwaves at 77 %.
"""

from repro.analysis.silent import figure5_silent_writes

from conftest import BENCH_ACCESSES, run_once


def test_fig5_silent_writes(benchmark, report):
    result = run_once(benchmark, figure5_silent_writes, accesses=BENCH_ACCESSES)
    report(result)
    assert 38.0 <= result.summary["mean_silent_pct"] <= 52.0
    assert abs(result.summary["bwaves_silent_pct"] - 77.0) < 5.0
