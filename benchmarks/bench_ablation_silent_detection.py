"""Ablation — WG with and without silent-write detection.

Separates WG's two mechanisms (grouping vs silent-write elimination).
Figure 5 says 42 % of writes are silent, so detection should carry a
substantial share of the reduction, most visibly on bwaves/wrf/lbm.
"""

from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY
from repro.sim.simulator import run_simulation
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

from conftest import BENCH_ACCESSES, run_once

BENCHMARKS = ("bwaves", "wrf", "lbm", "gcc", "mcf", "gamess")


def _ablation() -> FigureResult:
    rows = []
    deltas = []
    for name in BENCHMARKS:
        trace = materialize(
            generate_trace(get_profile(name), BENCH_ACCESSES)
        )
        rmw = run_simulation(trace, "rmw", BASELINE_GEOMETRY)
        with_detection = run_simulation(trace, "wg", BASELINE_GEOMETRY)
        without_detection = run_simulation(
            trace, "wg", BASELINE_GEOMETRY, detect_silent_writes=False
        )
        reduction_on = 1 - with_detection.array_accesses / rmw.array_accesses
        reduction_off = 1 - without_detection.array_accesses / rmw.array_accesses
        deltas.append(reduction_on - reduction_off)
        rows.append((name, 100 * reduction_on, 100 * reduction_off))
    mean_delta = 100 * sum(deltas) / len(deltas)
    return FigureResult(
        figure_id="ablation_silent",
        title="Ablation: WG reduction with/without silent-write detection (%)",
        headers=("benchmark", "WG", "WG (no silent detect)"),
        rows=rows,
        summary={"mean_detection_gain_pct": mean_delta},
    )


def test_ablation_silent_detection(benchmark, report):
    result = run_once(benchmark, _ablation)
    report(result)
    # Detection must help, and every row must be no worse with it on.
    assert result.summary["mean_detection_gain_pct"] > 1.0
    for row in result.rows:
        assert row[1] >= row[2] - 1e-9, row
