"""Section 5.5 — power and performance directions, quantified.

Paper (qualitative): both techniques cut power; WG+RB improves read
latency because the Set-Buffer is faster than the array and the read
port is freer.
"""

from repro.analysis.power_perf import section55_power_performance

from conftest import BENCH_ACCESSES, run_once


def test_sec55_power_performance(benchmark, report):
    result = run_once(
        benchmark,
        section55_power_performance,
        accesses=max(4000, BENCH_ACCESSES // 2),
    )
    report(result)
    assert result.summary["mean_wg_energy_saving_pct"] > 5.0
    assert result.summary["mean_wgrb_energy_saving_pct"] >= (
        result.summary["mean_wg_energy_saving_pct"]
    )
    assert (
        result.summary["mean_wgrb_read_latency"]
        < result.summary["mean_rmw_read_latency"]
    )
