"""Figure 3 — read/write access frequency per benchmark.

Paper: averages 26 % reads / 14 % writes per executed instruction;
bwaves exceeds 22 % writes.
"""

from repro.analysis.frequency import figure3_access_frequency

from conftest import BENCH_ACCESSES, run_once


def test_fig3_access_frequency(benchmark, report):
    result = run_once(
        benchmark, figure3_access_frequency, accesses=BENCH_ACCESSES
    )
    report(result)
    assert 22.0 <= result.summary["mean_read_pct"] <= 31.0
    assert 11.0 <= result.summary["mean_write_pct"] <= 18.0
