"""Figure 11 — sensitivity to cache size (32 KB vs 128 KB, 32 B blocks).

Paper: essentially flat — WG 26.9 %→26.6 %, WG+RB 32.6 %→32.1 %.
"""

from repro.analysis.reductions import figure11_cache_size

from conftest import BENCH_ACCESSES, run_once


def test_fig11_cache_size(benchmark, report):
    result = run_once(benchmark, figure11_cache_size, accesses=BENCH_ACCESSES)
    report(result)
    # The paper's point is insensitivity: within a couple of points.
    assert abs(
        result.summary["wg_32k_pct"] - result.summary["wg_128k_pct"]
    ) < 3.0
    assert abs(
        result.summary["wgrb_32k_pct"] - result.summary["wgrb_128k_pct"]
    ) < 3.0
