"""Micro-benchmarks of the SRAM array substrate itself.

Times raw row reads, row writes and RMW sequences at the baseline array
shape (512 rows x 16 words), and checks the event accounting stays
exact under load.  These are real pytest-benchmark timings (multiple
rounds), unlike the one-shot figure reproductions.
"""

from repro.sram.array import SRAMArray
from repro.sram.geometry import ArrayGeometry


def _array() -> SRAMArray:
    return SRAMArray(ArrayGeometry(rows=512, words_per_row=16))


def test_bench_row_reads(benchmark):
    array = _array()

    def work():
        for row in range(512):
            array.read_row(row)

    benchmark(work)
    assert array.events.row_reads >= 512


def test_bench_rmw(benchmark):
    array = _array()

    def work():
        for row in range(512):
            array.read_modify_write(row, {row % 16: row})

    benchmark(work)
    assert array.events.rmw_operations >= 512
    assert array.events.row_reads == array.events.row_writes


def test_bench_word_reads_via_mux(benchmark):
    array = _array()

    def work():
        for row in range(512):
            array.read_words(row, [row % 16])

    benchmark(work)
    assert array.events.words_routed >= 512
