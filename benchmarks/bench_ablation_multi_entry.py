"""Ablation — generalising the Set-Buffer to N entries.

The paper uses a single (Tag-Buffer, Set-Buffer) pair.  This ablation
measures the headroom from a small fully-associative pool of buffered
sets — the natural extension the design implies — and its diminishing
returns.
"""

from repro.analysis.result import FigureResult
from repro.cache.config import BASELINE_GEOMETRY
from repro.sim.simulator import run_simulation
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

from conftest import BENCH_ACCESSES, run_once

BENCHMARKS = ("bwaves", "gcc", "mcf", "hmmer", "povray")
ENTRY_COUNTS = (1, 2, 4, 8)


def _ablation() -> FigureResult:
    rows = []
    means = {entries: [] for entries in ENTRY_COUNTS}
    for name in BENCHMARKS:
        trace = materialize(generate_trace(get_profile(name), BENCH_ACCESSES))
        rmw = run_simulation(trace, "rmw", BASELINE_GEOMETRY)
        row = [name]
        for entries in ENTRY_COUNTS:
            result = run_simulation(
                trace, "wg_rb", BASELINE_GEOMETRY, entries=entries
            )
            reduction = 1 - result.array_accesses / rmw.array_accesses
            means[entries].append(reduction)
            row.append(100 * reduction)
        rows.append(tuple(row))
    summary = {
        f"mean_entries_{entries}": 100 * sum(values) / len(values)
        for entries, values in means.items()
    }
    return FigureResult(
        figure_id="ablation_entries",
        title="Ablation: WG+RB reduction vs Set-Buffer entry count (%)",
        headers=("benchmark",) + tuple(f"{e} entries" for e in ENTRY_COUNTS),
        rows=rows,
        summary=summary,
    )


def test_ablation_multi_entry(benchmark, report):
    result = run_once(benchmark, _ablation)
    report(result)
    # More entries never hurt, and returns diminish.
    e1 = result.summary["mean_entries_1"]
    e2 = result.summary["mean_entries_2"]
    e8 = result.summary["mean_entries_8"]
    assert e2 >= e1
    assert e8 >= e2
    assert (e2 - e1) >= (e8 - e2) / 4  # front-loaded benefit
