"""Premise check — interleaving + SEC-DED vs supply voltage.

Quantifies the paper's Section 1/2 reliability premise: strikes upset
wider cell bursts at low Vdd; bit interleaving spreads them into
single-bit (correctable) errors per word.  This is the reason the
column-selection problem — and hence RMW, and hence WG — exists.
"""

from repro.analysis.reliability import reliability_vs_voltage

from conftest import run_once


def test_reliability_vs_voltage(benchmark, report):
    result = run_once(benchmark, reliability_vs_voltage, strikes=20_000)
    report(result)
    # Interleaving keeps 400 mV operation viable (sub-1% uncorrectable)
    # while the flat layout degrades by an order of magnitude more.
    assert result.summary["interleaved_uncorrectable_400mv"] < 2.0
    assert (
        result.summary["flat_uncorrectable_400mv"]
        > 10 * result.summary["interleaved_uncorrectable_400mv"]
    )
    # And the flat layout gets worse as voltage drops.
    assert (
        result.summary["flat_uncorrectable_400mv"]
        > result.summary["flat_uncorrectable_1000mv"]
    )