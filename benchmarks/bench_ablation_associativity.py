"""Ablation — associativity sweep (the sensitivity axis the paper skips).

Figures 10/11 vary block and cache size; associativity is the third
axis.  A priori it could matter: one Set-Buffer entry covers
``associativity x block`` bytes, so higher associativity widens the
Tag-Buffer's reach (at the cost of a proportionally larger buffer and
wider write-back rows).

Measured shape: essentially **flat** (35.4 % -> 35.6 % from 1-way to
16-way).  The benefit is dominated by same-*block* write reuse —
consecutive blocks map to different sets, so widening the set rarely
captures extra groups.  Together with Figure 11 this means the paper's
conclusion is robust across the entire cache-organisation space: only
block size (Figure 10) moves the needle.
"""

from repro.analysis.result import FigureResult
from repro.cache.config import CacheGeometry
from repro.sim.simulator import run_simulation
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

from conftest import BENCH_ACCESSES, run_once

BENCHMARKS = ("bwaves", "gcc", "hmmer", "gamess")
ASSOCIATIVITIES = (1, 2, 4, 8, 16)


def _ablation() -> FigureResult:
    rows = []
    means = {ways: [] for ways in ASSOCIATIVITIES}
    for name in BENCHMARKS:
        trace = materialize(generate_trace(get_profile(name), BENCH_ACCESSES))
        row = [name]
        for ways in ASSOCIATIVITIES:
            geometry = CacheGeometry(64 * 1024, ways, 32)
            rmw = run_simulation(trace, "rmw", geometry).array_accesses
            wgrb = run_simulation(trace, "wg_rb", geometry).array_accesses
            reduction = 1 - wgrb / rmw
            means[ways].append(reduction)
            row.append(100 * reduction)
        rows.append(tuple(row))
    rows.append(
        ("AVG",)
        + tuple(
            100 * sum(values) / len(values) for values in means.values()
        )
    )
    return FigureResult(
        figure_id="ablation_associativity",
        title=(
            "Ablation: WG+RB reduction vs associativity "
            "(64KB, 32B blocks, %)"
        ),
        headers=("benchmark",) + tuple(f"{w}-way" for w in ASSOCIATIVITIES),
        rows=rows,
        summary={
            f"mean_{ways}way": 100 * sum(values) / len(values)
            for ways, values in means.items()
        },
    )


def test_ablation_associativity(benchmark, report):
    result = run_once(benchmark, _ablation)
    report(result)
    # Monotone non-decreasing mean benefit with associativity.
    means = [result.summary[f"mean_{w}way"] for w in ASSOCIATIVITIES]
    for smaller, larger in zip(means, means[1:]):
        assert larger >= smaller - 0.5  # allow sampling jitter
    # Direct-mapped already keeps most of the benefit.
    assert means[0] > 0.6 * means[2]
    # Returns diminish: 8->16 gains less than 1->4.
    assert (means[4] - means[3]) <= (means[2] - means[0]) + 0.5