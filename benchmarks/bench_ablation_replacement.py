"""Ablation — replacement-policy sensitivity.

The paper fixes LRU.  Since the techniques operate above the hit/miss
layer (and miss traffic is uncounted by default), the reductions should
be nearly identical under FIFO/random/PLRU — shown here.
"""

from repro.analysis.result import FigureResult
from repro.cache.cache import SetAssociativeCache
from repro.cache.config import BASELINE_GEOMETRY
from repro.core.registry import make_controller
from repro.trace.stream import materialize
from repro.workload.generator import generate_trace
from repro.workload.spec2006 import get_profile

from conftest import BENCH_ACCESSES, run_once

POLICIES = ("lru", "fifo", "random", "plru")
BENCHMARKS = ("bwaves", "gcc", "mcf")


def _reduction(trace, policy: str) -> float:
    accesses = {}
    for technique in ("rmw", "wg_rb"):
        cache = SetAssociativeCache(BASELINE_GEOMETRY, replacement=policy)
        controller = make_controller(technique, cache)
        controller.run(trace)
        accesses[technique] = controller.array_accesses
    return 1 - accesses["wg_rb"] / accesses["rmw"]


def _ablation() -> FigureResult:
    rows = []
    spreads = []
    for name in BENCHMARKS:
        trace = materialize(generate_trace(get_profile(name), BENCH_ACCESSES))
        reductions = [_reduction(trace, policy) for policy in POLICIES]
        spreads.append(max(reductions) - min(reductions))
        rows.append((name,) + tuple(100 * r for r in reductions))
    return FigureResult(
        figure_id="ablation_replacement",
        title="Ablation: WG+RB reduction under different replacement policies (%)",
        headers=("benchmark",) + POLICIES,
        rows=rows,
        summary={"max_spread_pct": 100 * max(spreads)},
    )


def test_ablation_replacement(benchmark, report):
    result = run_once(benchmark, _ablation)
    report(result)
    assert result.summary["max_spread_pct"] < 5.0
