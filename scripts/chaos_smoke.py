"""Chaos smoke: a campaign survives crashes and store corruption.

Not part of the library — the CI chaos gate (see `.github/workflows/
ci.yml`, job `chaos-smoke`).  It runs the same small campaign three
ways and demands bit-identical rows every time:

1. **Clean sequential** — the reference result.
2. **Chaotic parallel** — supervised workers with injected crashes and
   transient faults (`REPRO_FAULTS`), writing a `--result-cache`.
3. **Poisoned warm rerun** — the store is damaged with one corruptor
   per validation layer (torn entry, bad CRC, version skew); the rerun
   must quarantine and recompute the damage, serve the rest from the
   store, and still match the reference.

Artifacts (health reports, store stats, the quarantine directory) land
in `--out` for upload on failure.  Exit 0 on success, 1 on any
divergence or health-accounting violation.

Run: PYTHONPATH=src python scripts/chaos_smoke.py [--out DIR]
"""

import argparse
import dataclasses
import json
import shutil
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faultinject import (  # noqa: E402
    FaultSpec,
    corrupt_entry_crc,
    inject,
    skew_entry_code,
    tear_entry,
)
from repro.sim.campaign import run_campaign  # noqa: E402
from repro.sim.checkpoint import serialize_row  # noqa: E402
from repro.sim.experiment import ExperimentConfig  # noqa: E402
from repro.sim.parallel import run_campaign_parallel  # noqa: E402
from repro.sim.resilience import RetryPolicy  # noqa: E402
from repro.store import ResultStore  # noqa: E402

BENCHMARKS = ("bwaves", "gcc", "mcf", "milc")
CORRUPTORS = (tear_entry, corrupt_entry_crc, skew_entry_code)

_failures = []


def check(ok: bool, what: str) -> None:
    print(("ok   " if ok else "FAIL ") + what)
    if not ok:
        _failures.append(what)


def rows_of(result) -> dict:
    return {row.benchmark: serialize_row(row) for row in result.rows}


def dump(out: Path, name: str, payload: dict) -> None:
    (out / name).write_text(json.dumps(payload, indent=2, sort_keys=True))


def health_doc(result) -> dict:
    doc = dataclasses.asdict(result.health)
    doc["consistent"] = result.health.consistent
    doc["failed_rows"] = [f.describe() for f in result.failed_rows]
    return doc


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="chaos-artifacts", metavar="DIR")
    parser.add_argument("--accesses", type=int, default=2_000)
    parser.add_argument("--processes", type=int, default=2)
    args = parser.parse_args()

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    cache = out / "result-cache"
    config = ExperimentConfig(
        benchmarks=BENCHMARKS,
        techniques=("conventional", "wg"),
        accesses_per_benchmark=args.accesses,
        seed=2012,
    )
    retry = RetryPolicy(
        max_attempts=3,
        base_delay_s=0.01,
        max_delay_s=0.05,
        worker_timeout_s=120.0,
        heartbeat_interval_s=2.0,
    )

    print("== phase 1: clean sequential reference ==")
    reference = run_campaign(config, retry=RetryPolicy.none())
    expected = rows_of(reference)
    dump(out, "health-reference.json", health_doc(reference))

    print("== phase 2: chaotic parallel run, cold store ==")
    faults = (
        FaultSpec(kind="crash", benchmark="gcc", until_attempt=1),
        FaultSpec(kind="transient", benchmark="mcf", until_attempt=1),
    )
    with inject(*faults):
        chaotic = run_campaign_parallel(
            config,
            processes=args.processes,
            retry=retry,
            result_cache=cache,
        )
    dump(out, "health-chaotic.json", health_doc(chaotic))
    check(rows_of(chaotic) == expected, "chaotic rows == clean reference")
    check(chaotic.health.consistent, "chaotic health identity holds")
    check(not chaotic.failed_rows, "every benchmark healed via retry")

    print("== phase 3: corrupt the store, warm rerun ==")
    entries = sorted(ResultStore(cache).objects_dir.rglob("*.json"))
    check(len(entries) >= len(BENCHMARKS), "store holds the campaign rows")
    for corruptor, path in zip(CORRUPTORS, entries):
        corruptor(path)
        print(f"     corrupted {path.name} via {corruptor.__name__}")
    rerun = run_campaign(config, retry=retry, result_cache=cache)
    store = ResultStore(cache)
    dump(out, "health-rerun.json", health_doc(rerun))
    dump(out, "store-stats.json", store.stats())
    if store.quarantine_dir.is_dir():
        shutil.copytree(
            store.quarantine_dir, out / "quarantine", dirs_exist_ok=True
        )

    check(rows_of(rerun) == expected, "poisoned warm rerun == clean reference")
    check(rerun.health.consistent, "rerun health identity holds")
    check(
        rerun.health.healed == len(CORRUPTORS),
        f"rerun healed exactly {len(CORRUPTORS)} corrupted entries "
        f"(got {rerun.health.healed})",
    )
    check(
        rerun.health.cached == rerun.health.total - len(CORRUPTORS),
        "undamaged rows all served from the store",
    )
    verify = store.verify()
    check(not verify["corrupt"], "store verifies clean after self-healing")

    if _failures:
        print(f"\nchaos smoke: {len(_failures)} FAILURE(S); see {out}/")
        return 1
    print(f"\nchaos smoke: OK (artifacts in {out}/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
