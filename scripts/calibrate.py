"""Calibration helper: print per-benchmark stats vs paper targets.

Not part of the library — a development tool for tuning the SPEC2006
profile knobs.  Run: python scripts/calibrate.py [accesses]
"""

import sys

from repro import BASELINE_GEOMETRY, compare_techniques, generate_trace
from repro.cache import AddressMapper
from repro.trace import collect_statistics
from repro.workload.spec2006 import SPEC2006_PROFILES

N = int(sys.argv[1]) if len(sys.argv) > 1 else 30_000


def main() -> None:
    mapper = AddressMapper(BASELINE_GEOMETRY)
    header = (
        f"{'bench':<12}{'rf':>6}{'wf':>6}{'sil':>6}{'same':>6}"
        f"{'WW':>6}{'RR':>6}{'ovh':>7}{'WG':>7}{'WG+RB':>7}"
    )
    print(header)
    sums = [0.0] * 9
    for name, profile in sorted(SPEC2006_PROFILES.items()):
        trace = generate_trace(profile, N)
        st = collect_statistics(trace, mapper.set_index)
        cmp = compare_techniques(trace, BASELINE_GEOMETRY)
        row = [
            st.read_frequency,
            st.write_frequency,
            st.silent_write_fraction,
            st.scenarios.same_set_share,
            st.scenarios.share("WW"),
            st.scenarios.share("RR"),
            cmp.rmw_overhead,
            cmp.access_reduction("wg"),
            cmp.access_reduction("wg_rb"),
        ]
        for i, v in enumerate(row):
            sums[i] += v
        print(
            f"{name:<12}" + "".join(
                f"{v:>6.2f}" if i < 6 else f"{v:>7.3f}" for i, v in enumerate(row)
            )
        )
    n = len(SPEC2006_PROFILES)
    print(
        f"{'AVG':<12}" + "".join(
            f"{s / n:>6.2f}" if i < 6 else f"{s / n:>7.3f}"
            for i, s in enumerate(sums)
        )
    )


if __name__ == "__main__":
    main()
